"""The write-ahead intent journal.

Crash safety for a deferred-maintenance warehouse rests on two pieces:
an **atomic checkpoint** (``save_database`` writes a temp file and
``os.replace``\\ s it, so the snapshot on disk is always entirely pre-op
or entirely post-op) and this **intent journal**, an fsync'd SQLite file
sitting next to the snapshot that records what operation was *about* to
run before any state mutates.

Each journal record carries:

* ``kind`` — ``"txn"``, ``"refresh"``, ``"propagate"``,
  ``"partial_refresh"``, ``"refresh_all"``, or ``"ddl"``;
* ``view`` — the target view, when the operation has one;
* ``token`` — an optional client-supplied idempotency token for user
  transactions (exactly-once replay: a committed token is never
  re-applied);
* ``status`` — ``intent`` → ``committed`` / ``aborted``;
* ``payload`` — JSON: the **pre-operation digests** of every table (the
  recovery oracle uses them to classify the on-disk snapshot as pre- or
  post-op), the log **watermark** (recorded log tuples at intent time),
  and — for user transactions — the fully evaluated per-table
  ``(delete, insert)`` **delta bags**, which make the operation
  replayable from the journal alone.

Durability: the journal connection runs with ``PRAGMA
synchronous=FULL``, so every ``begin``/``commit_op`` is fsync'd before
the caller proceeds — the write-ahead property the recovery protocol
depends on.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro import obs
from repro.algebra.bag import Bag
from repro.errors import RecoveryError
from repro.storage.database import Database
from repro.storage.persistence import RETRY_POLICY, with_retry

__all__ = [
    "IntentJournal",
    "OpIntent",
    "bag_digest",
    "table_digests",
    "journal_path",
    "serialize_bag",
    "deserialize_bag",
]

_TABLE = "__journal__"

#: Journal record lifecycle.
INTENT = "intent"
COMMITTED = "committed"
ABORTED = "aborted"


def journal_path(snapshot_path: str | Path) -> Path:
    """The journal file co-located with a snapshot file."""
    snapshot_path = Path(snapshot_path)
    return snapshot_path.with_name(snapshot_path.name + ".journal")


# ----------------------------------------------------------------------
# Digests and delta serialization
# ----------------------------------------------------------------------


def bag_digest(bag: Bag) -> str:
    """A stable content digest of a bag (rows with multiplicities)."""
    hasher = hashlib.sha256()
    for row, count in sorted(bag.items(), key=lambda item: repr(item[0])):
        hasher.update(repr(row).encode())
        hasher.update(b"\x00")
        hasher.update(str(count).encode())
        hasher.update(b"\x01")
    return hasher.hexdigest()


def table_digests(db: Database, tables: Iterable[str] | None = None) -> dict[str, str]:
    """Digest of every (or each named) table in ``db``."""
    names = db.table_names() if tables is None else tuple(tables)
    return {name: bag_digest(db[name]) for name in names}


def serialize_bag(bag: Bag) -> list[list[Any]]:
    """A JSON-safe encoding of a bag: ``[[*row, count], ...]``."""
    return [[*row, count] for row, count in sorted(bag.items(), key=lambda item: repr(item[0]))]


def deserialize_bag(encoded: Iterable[Iterable[Any]]) -> Bag:
    """Inverse of :func:`serialize_bag` (JSON lists become row tuples)."""
    counts: dict[tuple, int] = {}
    for entry in encoded:
        *values, count = entry
        row = tuple(values)
        counts[row] = counts.get(row, 0) + int(count)
    return Bag.from_counts(counts)


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OpIntent:
    """One journal record."""

    op_id: int
    kind: str
    view: str | None
    token: str | None
    status: str
    payload: dict[str, Any]

    @property
    def pre_digests(self) -> dict[str, str]:
        return dict(self.payload.get("pre_digests", {}))

    @property
    def watermark(self) -> int | None:
        return self.payload.get("watermark")

    def describe(self) -> str:
        target = f" on view {self.view!r}" if self.view else ""
        watermark = self.watermark
        extra = f", log watermark {watermark}" if watermark is not None else ""
        return f"op #{self.op_id} {self.kind}{target} ({self.status}{extra})"


class IntentJournal:
    """An fsync'd, SQLite-backed write-ahead journal of maintenance intents."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        # The shared retry policy (jittered backoff + deadline): opening
        # the journal races checkpoint writers and concurrent recoveries
        # for the same file, so connect/DDL must absorb lock contention.
        self._conn = with_retry(lambda: sqlite3.connect(self.path), policy=RETRY_POLICY)
        self._conn.execute("PRAGMA synchronous=FULL")
        with_retry(self._create, policy=RETRY_POLICY)

    def _create(self) -> None:
        with self._conn:
            self._conn.execute(
                f"CREATE TABLE IF NOT EXISTS {_TABLE} ("
                "  op_id INTEGER PRIMARY KEY AUTOINCREMENT,"
                "  kind TEXT NOT NULL,"
                "  view TEXT,"
                "  token TEXT,"
                "  status TEXT NOT NULL,"
                "  payload TEXT NOT NULL)"
            )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> IntentJournal:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def begin(
        self,
        kind: str,
        *,
        view: str | None = None,
        token: str | None = None,
        payload: Mapping[str, Any] | None = None,
    ) -> int:
        """Durably record the intent to run an operation; returns its id.

        Refuses to start a new intent while another is pending — a
        pending intent means a crash happened and recovery has not run.
        """
        pending = self.pending()
        if pending is not None:
            raise RecoveryError(
                f"journal {self.path} has a pending intent ({pending.describe()}); "
                "run recovery before issuing new operations"
            )
        if token is not None and self.has_committed(token):
            raise RecoveryError(f"token {token!r} was already committed; refusing duplicate intent")
        encoded = json.dumps(dict(payload or {}), sort_keys=True)

        def insert() -> int:
            with self._conn:
                cursor = self._conn.execute(
                    f"INSERT INTO {_TABLE} (kind, view, token, status, payload) VALUES (?, ?, ?, ?, ?)",
                    (kind, view, token, INTENT, encoded),
                )
            return int(cursor.lastrowid)

        op_id = with_retry(insert)
        obs.metric_inc("journal_fsyncs")
        return op_id

    def _set_status(self, op_id: int, status: str) -> None:
        def update() -> None:
            with self._conn:
                cursor = self._conn.execute(
                    f"UPDATE {_TABLE} SET status = ? WHERE op_id = ? AND status = ?",
                    (status, op_id, INTENT),
                )
                if cursor.rowcount != 1:
                    raise RecoveryError(f"journal op #{op_id} is not pending; cannot mark it {status}")

        with_retry(update)
        obs.metric_inc("journal_fsyncs")

    def commit_op(self, op_id: int) -> None:
        """Durably mark a pending intent as completed."""
        self._set_status(op_id, COMMITTED)

    def abort_op(self, op_id: int) -> None:
        """Durably mark a pending intent as rolled back."""
        self._set_status(op_id, ABORTED)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _row_to_intent(self, row: tuple) -> OpIntent:
        op_id, kind, view, token, status, payload = row
        return OpIntent(int(op_id), kind, view, token, status, json.loads(payload))

    def records(self) -> list[OpIntent]:
        """All journal records, oldest first."""
        rows = with_retry(
            lambda: self._conn.execute(
                f"SELECT op_id, kind, view, token, status, payload FROM {_TABLE} ORDER BY op_id"
            ).fetchall()
        )
        return [self._row_to_intent(row) for row in rows]

    def pending(self) -> OpIntent | None:
        """The in-flight intent a crash left behind, if any."""
        rows = with_retry(
            lambda: self._conn.execute(
                f"SELECT op_id, kind, view, token, status, payload FROM {_TABLE} "
                "WHERE status = ? ORDER BY op_id DESC LIMIT 1",
                (INTENT,),
            ).fetchall()
        )
        return self._row_to_intent(rows[0]) if rows else None

    def has_committed(self, token: str) -> bool:
        """Whether a client token was already applied (exactly-once replay)."""
        rows = with_retry(
            lambda: self._conn.execute(
                f"SELECT 1 FROM {_TABLE} WHERE token = ? AND status = ? LIMIT 1",
                (token, COMMITTED),
            ).fetchall()
        )
        return bool(rows)
