"""The crash-safe warehouse: journaled ops over an atomic checkpoint.

:class:`DurableWarehouse` wraps a :class:`~repro.warehouse.ViewManager`
bound to a snapshot file and makes every state-changing operation follow
the write-ahead protocol::

    intent journaled (fsync)  →  op runs in memory  →
    atomic checkpoint (temp file + os.replace)  →  intent committed

A crash at *any* instant leaves the disk in one of exactly three
states, all of which :func:`repro.robustness.recovery.recover` resolves:

* no pending intent — nothing was in flight; the snapshot is consistent;
* pending intent + pre-op snapshot — the operation never reached disk;
  recovery **rolls it forward** from the journal payload (user
  transactions carry their fully evaluated delta bags; maintenance
  operations re-run from the snapshot's surviving logs/differentials —
  the paper's refresh/propagate idempotence), or **rolls it back** when
  the intent is not replayable (DDL);
* pending intent + post-op snapshot — the checkpoint landed but the
  commit mark didn't; recovery verifies the invariants and marks the
  intent committed.

User transactions accept an optional idempotency ``token``; a token the
journal has already committed is skipped, so a client retrying after a
crash gets exactly-once semantics.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from pathlib import Path
from typing import Any

from repro import obs
from repro.algebra.bag import Bag, Row
from repro.algebra.expr import Expr
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import RecoveryError
from repro.robustness.faults import fault_point
from repro.robustness.journal import (
    IntentJournal,
    journal_path,
    serialize_bag,
    table_digests,
)
from repro.warehouse.manager import ViewManager
from repro.warehouse.persistence import load_warehouse, save_warehouse

__all__ = ["DurableWarehouse", "DurableTransaction", "intent_payload_tables"]


def intent_payload_tables(db) -> frozenset[str]:
    """The tables whose digests every journal intent payload carries.

    This is the *coverage seam* of the write-ahead protocol: recovery
    can only verify or roll back tables digested in an intent's
    ``pre_digests``, so the concurrency analyzer's RVM605 check holds
    every maintenance operation's inferred write set against exactly
    this set — and the dynamic sanitizer diffs version stamps around
    each journaled action against the same set.  Narrowing it (the
    seeded ``omitted_journal_table`` mutation) is caught by both.
    """
    return frozenset(db.table_names())


class DurableTransaction:
    """Fluent transaction builder that commits through the journal."""

    def __init__(self, warehouse: DurableWarehouse, token: str | None) -> None:
        self._warehouse = warehouse
        self._token = token
        self._txn = UserTransaction(warehouse.db)

    def insert(self, table: str, rows: Iterable[Row] | Bag) -> DurableTransaction:
        self._txn.insert(table, rows)
        return self

    def delete(self, table: str, rows: Iterable[Row] | Bag) -> DurableTransaction:
        self._txn.delete(table, rows)
        return self

    def insert_query(self, table: str, expr: Expr) -> DurableTransaction:
        self._txn.insert_query(table, expr)
        return self

    def delete_query(self, table: str, expr: Expr) -> DurableTransaction:
        self._txn.delete_query(table, expr)
        return self

    def run(self) -> bool:
        """Execute journaled; False when the token was already committed."""
        return self._warehouse.execute(self._txn, token=self._token)


class DurableWarehouse:
    """A :class:`ViewManager` whose every mutation survives a crash."""

    def __init__(
        self,
        path: str | Path,
        *,
        exec_mode: str | None = None,
        governed: bool = False,
        governor_opts: dict | None = None,
        _manager: ViewManager | None = None,
        _skip_baseline: bool = False,
    ) -> None:
        self.path = Path(path)
        if _manager is None:
            if self.path.exists():
                raise RecoveryError(
                    f"snapshot {self.path} already exists; use DurableWarehouse.open() to resume it"
                )
            _manager = ViewManager(exec_mode=exec_mode)
        self.manager = _manager
        self.db = self.manager.db
        if governed:
            self.db.enable_governor(**(governor_opts or {}))
        self.db.journaled = True
        self.db.durable_origin = self.path
        self.journal = IntentJournal(journal_path(self.path))
        pending = self.journal.pending()
        if pending is not None:
            self.journal.close()
            raise RecoveryError(
                f"journal has a pending intent ({pending.describe()}); "
                f"run `python -m repro recover {self.path}` (or recovery.recover) first"
            )
        if not _skip_baseline and not self.path.exists():
            # Establish a baseline snapshot so recovery always has a
            # well-defined pre-state, even for a crash in the first op.
            self._checkpoint()

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        auto_recover: bool = True,
        exec_mode: str | None = None,
        governed: bool = False,
        governor_opts: dict | None = None,
    ) -> DurableWarehouse:
        """Resume a durable warehouse from its snapshot (+ journal).

        With ``auto_recover`` (the default) any interrupted operation is
        resolved first, exactly as ``python -m repro recover`` would.
        ``exec_mode`` and ``governed`` re-establish the runtime engine
        configuration — the snapshot file stores neither, so a caller
        that ran a vectorized governed warehouse must say so again here
        to resume on the same engine.
        """
        path = Path(path)
        if auto_recover:
            from repro.robustness.recovery import recover

            recover(path)
        manager = load_warehouse(
            path, exec_mode=exec_mode, governed=governed, governor_opts=governor_opts
        )
        return cls(path, _manager=manager, _skip_baseline=True)

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> DurableWarehouse:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The write-ahead protocol
    # ------------------------------------------------------------------

    def _checkpoint(self) -> None:
        save_warehouse(self.manager, self.path)

    def checkpoint(self) -> None:
        """Force a snapshot of the current state (not itself journaled)."""
        self._checkpoint()

    def _run_journaled(
        self,
        kind: str,
        action: Callable[[], Any],
        *,
        view: str | None = None,
        token: str | None = None,
        payload: dict[str, Any] | None = None,
    ) -> bool:
        fault_point("crash-before-journal")
        if token is not None and self.journal.has_committed(token):
            return False
        full_payload = dict(payload or {})
        full_payload.setdefault("pre_digests", table_digests(self.db, intent_payload_tables(self.db)))
        with obs.span("journal_op", kind=kind, view=view or "", counter=self.manager.counter):
            op_id = self.journal.begin(kind, view=view, token=token, payload=full_payload)
            fault_point("crash-after-journal")
            sanitizer = obs.active_sanitizer()
            if sanitizer is not None:
                stamps = {name: self.db.version_of(name) for name in self.db.table_names()}
            action()
            if sanitizer is not None:
                # Dynamic RVM605: every *pre-existing* table the action
                # wrote (version-stamp diff) must be digested in the
                # intent.  Tables the action itself created have no
                # pre-state for recovery to verify or restore.
                written = {
                    name
                    for name in self.db.table_names()
                    if name in stamps and self.db.version_of(name) != stamps[name]
                }
                sanitizer.check_journal_payload(
                    kind, written, frozenset(full_payload.get("pre_digests", {}))
                )
            with obs.span("checkpoint", path=str(self.path)):
                self._checkpoint()
            fault_point("crash-after-checkpoint")
            with obs.span("journal_commit", op_id=op_id):
                self.journal.commit_op(op_id)
            fault_point("crash-after-commit")
            # The checkpoint just committed contains the current shared-log
            # cursors; any future replay starts from it, so entries every
            # cursor has passed become prunable exactly now.
            self.manager.commit_log_watermarks()
        return True

    def _watermark(self, names: Iterable[str]) -> int:
        total = 0
        groups: dict[int, Any] = {}
        for name in names:
            scenario = self.manager.scenario(name)
            log = getattr(scenario, "log", None)
            if log is not None:
                total += log.recorded_changes()
            group = getattr(scenario, "group", None)
            if group is not None:
                groups[id(group)] = group
        for group in groups.values():
            total += group.log_size()
        return total

    # ------------------------------------------------------------------
    # Catalog (journaled as non-replayable intents: rolled back on crash)
    # ------------------------------------------------------------------

    def create_table(self, name: str, attrs: Iterable[str], *, rows: Iterable[Row] = ()) -> None:
        self._run_journaled("ddl", lambda: self.manager.create_table(name, attrs, rows=rows))

    def load(self, name: str, rows: Iterable[Row]) -> None:
        rows = list(rows)
        self._run_journaled("ddl", lambda: self.manager.load(name, rows))

    def define_view(self, name: str, definition: str | ViewDefinition | Expr, **options: Any) -> None:
        self._run_journaled("ddl", lambda: self.manager.define_view(name, definition, **options), view=name)

    def drop_view(self, name: str) -> None:
        self._run_journaled("ddl", lambda: self.manager.drop_view(name), view=name)

    # ------------------------------------------------------------------
    # Transactions (journaled with evaluated deltas: rolled forward)
    # ------------------------------------------------------------------

    def transaction(self, *, token: str | None = None) -> DurableTransaction:
        return DurableTransaction(self, token)

    def execute(self, txn: UserTransaction, *, token: str | None = None) -> bool:
        """Run a user transaction under the write-ahead protocol.

        The transaction's delete/insert expressions are evaluated against
        the pre-state *once*, journaled as literal delta bags (making the
        intent replayable from the journal alone), and applied as a
        literal transaction — so a recovery replay is bit-identical to
        the original application.

        Returns ``False`` without doing anything when ``token`` was
        already committed (a client retry of an applied transaction).
        """
        deltas: dict[str, dict[str, list[list[Any]]]] = {}
        literal = UserTransaction(self.db)
        for name in sorted(txn.tables):
            delete = self.db.evaluate(txn.delete_expr(name))
            insert = self.db.evaluate(txn.insert_expr(name))
            deltas[name] = {"delete": serialize_bag(delete), "insert": serialize_bag(insert)}
            if delete:
                literal.delete(name, delete)
            if insert:
                literal.insert(name, insert)
        return self._run_journaled(
            "txn",
            lambda: self.manager.execute(literal),
            token=token,
            payload={"deltas": deltas, "pre_digests": table_digests(self.db, intent_payload_tables(self.db))},
        )

    def execute_sql(self, script: str, *, token: str | None = None) -> bool:
        from repro.sqlfront.compiler import script_to_transaction

        txn = UserTransaction(self.db)
        script_to_transaction(script, self.db, txn)
        return self.execute(txn, token=token)

    # ------------------------------------------------------------------
    # Maintenance (journaled with watermark: re-run to completion)
    # ------------------------------------------------------------------

    def refresh(self, name: str) -> None:
        self._run_journaled(
            "refresh",
            lambda: self.manager.refresh(name),
            view=name,
            payload={"watermark": self._watermark([name]), "pre_digests": table_digests(self.db, intent_payload_tables(self.db))},
        )

    def refresh_all(self) -> None:
        self._run_journaled(
            "refresh_all",
            self.manager.refresh_all,
            payload={"watermark": self._watermark(self.views()), "pre_digests": table_digests(self.db, intent_payload_tables(self.db))},
        )

    def refresh_group(
        self,
        names: Iterable[str] | None = None,
        *,
        parallel: bool = False,
        max_workers: int | None = None,
        compact: bool = True,
    ) -> None:
        """Group refresh under the write-ahead protocol.

        Journaled as one intent for the whole epoch: a crash anywhere in
        the group (including between two views' patches) is rolled
        forward by re-running the group refresh from the pre-op snapshot,
        whose logs and cursors recovery never prunes past (see
        :meth:`~repro.warehouse.manager.ViewManager.commit_log_watermarks`).
        """
        members = list(names) if names is not None else list(self.views())
        self._run_journaled(
            "refresh_group",
            lambda: self.manager.refresh_group(
                members, parallel=parallel, max_workers=max_workers, compact=compact
            ),
            payload={
                "views": members,
                "compact": compact,
                "watermark": self._watermark(members),
                "pre_digests": table_digests(self.db, intent_payload_tables(self.db)),
            },
        )

    def propagate(self, name: str) -> None:
        self._run_journaled(
            "propagate",
            lambda: self.manager.propagate(name),
            view=name,
            payload={"watermark": self._watermark([name]), "pre_digests": table_digests(self.db, intent_payload_tables(self.db))},
        )

    def partial_refresh(self, name: str) -> None:
        self._run_journaled(
            "partial_refresh",
            lambda: self.manager.partial_refresh(name),
            view=name,
            payload={"watermark": self._watermark([name]), "pre_digests": table_digests(self.db, intent_payload_tables(self.db))},
        )

    # ------------------------------------------------------------------
    # Reads and introspection (not journaled)
    # ------------------------------------------------------------------

    def query(self, name: str) -> Bag:
        return self.manager.query(name)

    def query_fresh(self, name: str) -> Bag:
        self.refresh(name)
        return self.manager.query(name)

    def sql(self, query: str) -> Bag:
        return self.manager.sql(query)

    def views(self) -> tuple[str, ...]:
        return self.manager.views()

    def scenario(self, name: str):
        return self.manager.scenario(name)

    def is_stale(self, name: str) -> bool:
        return self.manager.is_stale(name)

    def check_invariants(self) -> None:
        self.manager.check_invariants()
