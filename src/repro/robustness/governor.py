"""The engine governor: a graceful-degradation ladder over the four engines.

The execution tiers (:mod:`repro.exec`) trade robustness for speed: the
interpreted oracle touches nothing but Python dicts, while the sqlite
pushdown tier leans on a live SQLite connection that can refuse service
transiently (``database is locked``, ``disk I/O error``) or durably.  A
deferred-maintenance warehouse cannot let a backend hiccup surface as a
failed refresh — the whole point of deferral is that maintenance runs at
*our* chosen moment, so it is the maintenance machinery's job to absorb
backend trouble and degrade, not the client's job to retry.

The :class:`EngineGovernor` wraps every evaluation a
:class:`~repro.storage.database.Database` performs (both
``Database.evaluate`` and the transaction executor's right-hand sides)
in a fallback ladder ordered fastest-first::

    sqlite  →  vectorized  →  compiled  →  interpreted

anchored at the database's configured ``exec_mode`` (a ``vectorized``
database ladders ``vectorized → compiled → interpreted``, and so on).
All non-floor tiers are strategies over the database's *single* executor
chain — a :class:`~repro.exec.pushdown.PushdownExecutor` IS a
:class:`~repro.exec.vectorized.VectorizedExecutor` IS an
:class:`~repro.exec.executor.Executor`, so the tiers share one plan
cache, one table-batch cache, and one set of maintained hash indexes;
demotion never duplicates listener state, it just enters the chain at a
lower method.

Per evaluation, the governor:

1. runs the highest healthy tier under the shared
   :data:`~repro.storage.persistence.RETRY_POLICY` — transient backend
   errors (as judged by the policy's classifier) are retried with
   jittered exponential backoff under a total-deadline cap;
2. on retry exhaustion or a permanent ``sqlite3.Error``, **trips that
   tier's circuit breaker** and falls to the next tier — the client
   sees a correct answer from the lower tier, never the error
   (``engine_demotions`` counts it; an ``engine_demotion`` span traces
   it);
3. while a breaker is **open**, the tier is skipped outright for
   ``cooldown_ops`` evaluations (no per-call retry storm against a
   down backend);
4. after the cooldown the breaker goes **half-open** and the next
   evaluation runs a *digest-cross-checked probe*: the suspect tier is
   first healed (the sqlite tier resyncs its mirror —
   :meth:`~repro.storage.sqlite_backend.SQLiteMirror.resync`), then
   evaluates the live expression, and its result digest must match the
   next healthy tier's before the breaker closes again
   (``engine_repromotions``).  A probe that errors or mismatches
   re-opens the breaker for another cooldown, and the client still
   gets the reference tier's answer.

Injected crashes (:class:`~repro.robustness.faults.InjectedCrash`)
derive from ``BaseException`` and are never absorbed — the governor
handles *backend* failure, not simulated process death; that is the
recovery layer's jurisdiction (:mod:`repro.robustness.recovery`, whose
post-crash audit calls :func:`heal_engine_state` below).

Genuine user errors (unknown tables, schema violations —
:class:`~repro.errors.ReproError`) propagate untouched: every tier
would fail identically, and demoting over them would mask bugs.
"""

from __future__ import annotations

import random
import sqlite3
import time
from typing import Callable

from repro import obs
from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.algebra.evaluation import evaluate as interpret
from repro.algebra.expr import Expr
from repro.exec import COMPILED, INTERPRETED, SQLITE, VECTORIZED, Executor
from repro.exec.vectorized import VectorizedExecutor
from repro.robustness.faults import fault_point
from repro.storage.persistence import RETRY_POLICY, RetryPolicy
from repro.storage.sqlite_backend import mirror_digest

__all__ = [
    "CircuitBreaker",
    "EngineGovernor",
    "GOVERNOR_LADDERS",
    "heal_engine_state",
]

#: The degradation ladder anchored at each configured execution mode.
GOVERNOR_LADDERS: dict[str, tuple[str, ...]] = {
    SQLITE: (SQLITE, VECTORIZED, COMPILED, INTERPRETED),
    VECTORIZED: (VECTORIZED, COMPILED, INTERPRETED),
    COMPILED: (COMPILED, INTERPRETED),
    INTERPRETED: (INTERPRETED,),
}

#: Evaluations an open breaker skips before probing for re-promotion.
#: Counted in operations, not wall time, so chaos tests are
#: deterministic and an idle warehouse never probes behind the
#: client's back.
DEFAULT_COOLDOWN_OPS = 32


class CircuitBreaker:
    """A per-tier breaker: ``closed → open → half-open → closed``.

    ``closed``: the tier runs normally.  ``open``: the tier is skipped
    for ``cooldown_ops`` gate checks.  ``half-open``: the next gate
    check asks for a probe; a successful cross-checked probe closes the
    breaker, a failed one re-opens it for a fresh cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    __slots__ = ("cooldown_ops", "state", "trips", "_remaining")

    def __init__(self, cooldown_ops: int = DEFAULT_COOLDOWN_OPS) -> None:
        if cooldown_ops < 1:
            raise ValueError("cooldown_ops must be at least 1")
        self.cooldown_ops = cooldown_ops
        self.state = self.CLOSED
        self.trips = 0
        self._remaining = 0

    def trip(self) -> None:
        """Open (or re-open) the breaker for a fresh cooldown."""
        self.state = self.OPEN
        self.trips += 1
        self._remaining = self.cooldown_ops

    def close(self) -> None:
        self.state = self.CLOSED
        self._remaining = 0

    def allow(self) -> str:
        """Gate one evaluation: ``"run"`` | ``"skip"`` | ``"probe"``."""
        if self.state == self.CLOSED:
            return "run"
        if self.state == self.OPEN:
            self._remaining -= 1
            if self._remaining > 0:
                return "skip"
            self.state = self.HALF_OPEN
        return "probe"


class EngineGovernor:
    """Routes one database's evaluations down the degradation ladder."""

    def __init__(
        self,
        database,
        *,
        policy: RetryPolicy | None = None,
        cooldown_ops: int = DEFAULT_COOLDOWN_OPS,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._db = database
        self.ladder = GOVERNOR_LADDERS[database.exec_mode]
        #: One breaker per demotable tier; the interpreted floor has
        #: none — it must always answer, and it has no backend to fail.
        self.breakers = {tier: CircuitBreaker(cooldown_ops) for tier in self.ladder[:-1]}
        self._policy = policy if policy is not None else RETRY_POLICY
        self._sleep = sleep
        # One jitter source for the governor's lifetime: letting the
        # policy build a fresh OS-seeded Random per evaluation would
        # put an entropy syscall on the happy path of every query.
        self._rng = random.Random()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def active_tier(self) -> str:
        """The highest tier a call right now would attempt (no side effects)."""
        for tier in self.ladder:
            breaker = self.breakers.get(tier)
            if breaker is None or breaker.state != CircuitBreaker.OPEN:
                return tier
        return self.ladder[-1]

    def snapshot(self) -> dict:
        """Breaker states and trip counts, for the CLI and tests."""
        return {
            "mode": self._db.exec_mode,
            "active_tier": self.active_tier(),
            "breakers": {
                tier: {"state": breaker.state, "trips": breaker.trips}
                for tier, breaker in self.breakers.items()
            },
        }

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        expr: Expr,
        *,
        counter: CostCounter | None = None,
        memo: dict | None = None,
    ) -> Bag:
        """Evaluate ``expr`` on the highest healthy tier; never let a
        backend error reach the caller.

        ``memo`` is the caller's interpreter memo (a transaction passes
        one scoped to its pre-state) — the governed interpreted tier must
        share work across a transaction's right-hand sides exactly like
        the ungoverned path, or the governor would change tuple-op
        accounting (the ``--governor-guard`` gate pins this down).
        """
        return self._evaluate_from(0, expr, counter, memo)

    def _evaluate_from(
        self, start: int, expr: Expr, counter: CostCounter | None, memo: dict | None
    ) -> Bag:
        ladder = self.ladder
        for position in range(start, len(ladder)):
            tier = ladder[position]
            breaker = self.breakers.get(tier)
            if breaker is None:
                return self._run_tier(tier, expr, counter, memo)
            gate = breaker.allow()
            if gate == "skip":
                continue
            if gate == "probe":
                return self._probe(position, expr, counter, memo)
            try:
                return self._policy.run(
                    lambda: self._run_tier(tier, expr, counter, memo),
                    sleep=self._sleep,
                    rng=self._rng,
                )
            except sqlite3.Error as exc:
                self._demote(position, exc)
        return self._run_tier(ladder[-1], expr, counter, memo)

    def _run_tier(
        self, tier: str, expr: Expr, counter: CostCounter | None, memo: dict | None = None
    ) -> Bag:
        """Evaluate on one specific tier of the shared executor chain.

        The unbound-method calls are deliberate: ``Executor.evaluate``
        runs the compiled tuple-at-a-time path and
        ``VectorizedExecutor.evaluate`` the columnar path *on the same
        executor instance*, so every tier sees the one plan cache and
        the one set of write-listener-maintained caches.
        """
        if tier == INTERPRETED:
            return interpret(expr, self._db.state, counter=counter, memo=memo)
        executor = self._db.executor
        if tier == SQLITE:
            return executor.evaluate(expr, counter=counter)
        if tier == VECTORIZED:
            return VectorizedExecutor.evaluate(executor, expr, counter=counter)
        return Executor.evaluate(executor, expr, counter=counter)

    # ------------------------------------------------------------------
    # Demotion / re-promotion
    # ------------------------------------------------------------------

    def _demote(self, position: int, exc: BaseException) -> None:
        tier = self.ladder[position]
        fallback = self.ladder[position + 1]
        self.breakers[tier].trip()
        obs.metric_inc("engine_demotions")
        with obs.span(
            "engine_demotion", tier=tier, fallback=fallback, error=type(exc).__name__
        ):
            pass

    def _probe(
        self, position: int, expr: Expr, counter: CostCounter | None, memo: dict | None
    ) -> Bag:
        """The half-open cross-check: heal, re-run, compare digests.

        The reference answer is computed first, from the remainder of
        the ladder — so whatever the probe does, the caller gets a
        healthy tier's result.  The suspect tier is then healed (the
        sqlite tier resyncs exactly its diverged mirror tables) and
        asked for the same expression; only a digest match re-closes
        the breaker.  Digests go through
        :func:`~repro.storage.sqlite_backend.mirror_digest`, so
        SQLite's bool→int round trip cannot fake a divergence.
        """
        tier = self.ladder[position]
        breaker = self.breakers[tier]
        reference = self._evaluate_from(position + 1, expr, counter, memo)
        try:
            with obs.span("governor_probe", tier=tier):
                fault_point("flaky-governor-probe")
                self._heal_tier(tier)
                candidate = self._run_tier(tier, expr, counter, memo)
        except sqlite3.Error:
            breaker.trip()
            obs.metric_inc("governor_probe_failures")
            return reference
        if mirror_digest(candidate) != mirror_digest(reference):
            breaker.trip()
            obs.metric_inc("governor_probe_failures")
            return reference
        breaker.close()
        obs.metric_inc("engine_repromotions")
        return reference

    def _heal_tier(self, tier: str) -> None:
        if tier == SQLITE:
            mirror = getattr(self._db.executor, "mirror", None)
            if mirror is not None:
                mirror.resync(self._db)


def heal_engine_state(db) -> dict[str, list[str]]:
    """Validate and repair all engine-derived state against the tables.

    Crash recovery's last step: hash indexes are drained and audited
    bucket-for-bucket (:meth:`~repro.exec.indexes.IndexManager.verify`,
    rebuilding any an interrupted maintenance step corrupted), and a
    pushdown executor's SQLite mirror is digest-compared per table and
    resynced where diverged.  Derived state that was never built (the
    common case right after a fresh load) audits clean for free.
    Returns ``{"indexes": [...], "mirror": [...]}`` naming what was
    healed.
    """
    healed = {"indexes": db.indexes.verify(db.state), "mirror": []}
    executor = db._executor
    mirror = getattr(executor, "mirror", None) if executor is not None else None
    if mirror is not None:
        healed["mirror"] = mirror.resync(db)
    return healed
