"""Quickstart: define a materialized view, defer its maintenance, refresh it.

This walks the paper's running example (Section 1.1): a ``sales`` /
``customer`` warehouse with a join view of sales to high-value
customers, maintained under the combined (``INV_C``) scenario.

Run:  python examples/quickstart.py
"""

from repro import ViewManager

VIEW_SQL = """
CREATE VIEW V (custId, name, score, itemNo, quantity) AS
SELECT c.custId, c.name, c.score, s.itemNo, s.quantity
FROM customer c, sales s
WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'
"""

# Manifest for `python -m repro lint examples/quickstart.py`.
LINT_SCHEMA = """
CREATE TABLE customer (custId, name, address, score);
CREATE TABLE sales (custId, itemNo, quantity, salesPrice)
"""
LINT_QUERIES = {"V": VIEW_SQL}


def main() -> None:
    manager = ViewManager()

    # 1. Base tables -----------------------------------------------------
    manager.create_table("customer", ["custId", "name", "address", "score"])
    manager.create_table("sales", ["custId", "itemNo", "quantity", "salesPrice"])
    manager.load(
        "customer",
        [
            (1, "ann", "1 Main St", "High"),
            (2, "bob", "2 Oak Ave", "Low"),
            (3, "cat", "3 Elm Rd", "High"),
        ],
    )
    manager.load(
        "sales",
        [
            (1, 101, 2, 19.99),
            (2, 102, 1, 5.00),
            (3, 103, 0, 7.50),  # zero quantity: filtered out by the view
        ],
    )

    # 2. A materialized view with deferred maintenance -------------------
    manager.define_view("V", VIEW_SQL, scenario="combined")
    print("view after materialization:")
    for row in sorted(manager.query("V")):
        print("   ", row)

    # 3. Updates only touch the log — the view stays stale ---------------
    manager.transaction().insert(
        "sales", [(1, 104, 5, 3.25), (3, 105, 1, 42.00)]
    ).delete("sales", [(1, 101, 2, 19.99)]).run()

    print("\nafter a transaction, the view is stale:", manager.is_stale("V"))
    print("stale view still serves the old rows:")
    for row in sorted(manager.query("V")):
        print("   ", row)

    # 4. Propagate (no view lock), then partial refresh (minimal lock) ---
    manager.propagate("V")
    manager.partial_refresh("V")
    print("\nafter propagate + partial refresh:")
    for row in sorted(manager.query("V")):
        print("   ", row)
    print("consistent again:", not manager.is_stale("V"))

    # 5. Accounting ------------------------------------------------------
    print(f"\ntotal maintenance tuple-ops: {manager.counter.tuples_out}")
    print(f"view downtime (wall seconds): {manager.downtime_seconds('V'):.6f}")


if __name__ == "__main__":
    main()
