"""Tour of the Section 7 future-work extensions, implemented.

1. **Shared sequenced log** — per-transaction logging cost independent
   of how many views are maintained.
2. **Query-scoped refresh** — make just the slice of the view a query
   needs fresh, leaving cold differentials pending.
3. **Reader-blocking simulation** — how much do refresh critical
   sections delay concurrent readers under different policies?

Run:  python examples/extensions_tour.py
"""

from repro.algebra.predicates import Comparison, attr, const
from repro.core import CombinedScenario, UserTransaction, ViewDefinition
from repro.extensions import (
    AggregateScenario,
    AggregateSpec,
    AggregateView,
    BlockingSimulation,
    SharedLogScenario,
    scoped_query,
)
from repro.storage.database import Database

# Manifest for `python -m repro lint examples/extensions_tour.py`.  The
# tour builds its views programmatically; the equivalent SQL is linted.
LINT_SCHEMA = "CREATE TABLE orders (id, region)"
LINT_QUERIES = {
    "V": "SELECT id, region FROM orders",
    "east_slice": "SELECT id, region FROM orders WHERE region = 'east'",
}


def shared_log_demo() -> None:
    print("1. shared sequenced log: cost per transaction vs number of views")
    for view_count in (1, 4, 16):
        db = Database()
        db.create_table("orders", ["id", "region"], rows=[(1, "east"), (2, "west")])
        scenario = SharedLogScenario(db)
        for index in range(view_count):
            scenario.add_view(ViewDefinition(f"V{index}", db.ref("orders")))
        before = scenario.counter.tuples_out
        scenario.execute(UserTransaction(db).insert("orders", [(3, "east")]))
        cost = scenario.counter.tuples_out - before
        print(f"   {view_count:>2} views -> {cost} tuple-ops per transaction")
    print("   (a per-view log would scale linearly with the view count)\n")


def scoped_refresh_demo() -> None:
    print("2. query-scoped refresh: freshen only the 'east' slice")
    db = Database()
    db.create_table("orders", ["id", "region"], rows=[(1, "east"), (2, "west")])
    scenario = CombinedScenario(db, ViewDefinition("V", db.ref("orders")))
    scenario.install()
    scenario.execute(
        UserTransaction(db).insert("orders", [(3, "east"), (4, "west"), (5, "west")])
    )
    east = Comparison("=", attr("region"), const("east"))
    fresh_east = scoped_query(scenario, east)
    print("   fresh east slice:", sorted(fresh_east))
    stale_view = scenario.read_view()
    print("   west rows still pending:", (4, "west") not in stale_view)
    scenario.check_invariant()
    print("   scenario invariant still holds: True\n")


def blocking_demo() -> None:
    print("3. reader blocking: one big nightly lock vs many tiny ones")
    sim = lambda: BlockingSimulation(reader_rate=2.0, horizon=86_400.0, seed=9)
    nightly = sim().run([(43_200.0, 120.0)])  # one 2-minute lock at noon
    hourly = sim().run([(3_600.0 * h, 0.5) for h in range(1, 24)])  # 24 x 0.5 s
    print(
        f"   nightly big refresh : {nightly.blocked:>4} readers blocked, "
        f"max wait {nightly.max_wait():6.1f}s"
    )
    print(
        f"   tiny partial locks  : {hourly.blocked:>4} readers blocked, "
        f"max wait {hourly.max_wait():6.1f}s"
    )
    print("   (Policy 2's precomputed differentials are the tiny-lock case)")


def aggregate_demo() -> None:
    print("\n4. incremental aggregates: revenue per region, maintained from deltas")
    db = Database()
    db.create_table(
        "orders", ["region", "amount"], rows=[("east", 10), ("east", 5), ("west", 7)]
    )
    view = AggregateView(
        "revenue",
        ViewDefinition("base", db.ref("orders")),
        group_by=("region",),
        aggregates=(AggregateSpec("count"), AggregateSpec("sum", "amount")),
    )
    scenario = AggregateScenario(db, view)
    scenario.install()
    print("   initial:", sorted(scenario.read_view()))
    scenario.execute(
        UserTransaction(db).insert("orders", [("east", 100)]).delete("orders", [("west", 7)])
    )
    scenario.refresh()
    print("   after a transaction + refresh:", sorted(scenario.read_view()))
    print("   consistent with recomputation:", scenario.is_consistent())


if __name__ == "__main__":
    shared_log_demo()
    scoped_refresh_demo()
    blocking_demo()
    aggregate_demo()
