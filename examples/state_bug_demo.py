"""The *state bug* (Section 1.2), reproduced and fixed.

Prior incremental-maintenance algorithms assume their delta queries run
in the **pre-update** state.  Deferred maintenance evaluates them after
the base tables changed — and silently produces wrong answers.  This
demo replays the paper's Examples 1.2 and 1.3 side by side with the
paper's post-update algorithm (Section 4), which is exact.

Run:  python examples/state_bug_demo.py
"""

from repro.algebra.expr import Monus
from repro.baselines.preupdate_bug import buggy_post_update_refresh
from repro.core import BaseLogScenario, UserTransaction, ViewDefinition
from repro.sqlfront import sql_to_view
from repro.storage.database import Database

# Manifest for `python -m repro lint examples/state_bug_demo.py`.  The
# SQL itself is clean; the linter's state-bug detector flags this file
# because it (deliberately) exercises the pre-update baseline.
LINT_SCHEMA = "CREATE TABLE R (A, B);\nCREATE TABLE S (B, C)"
LINT_QUERIES = {"U": "CREATE VIEW U (A) AS SELECT r.A FROM R r, S s WHERE r.B = s.B"}


def show(label, bag):
    rows = ", ".join(f"{row}" for row in sorted(bag))
    print(f"  {label:<28} {{{rows}}}")


def example_1_2() -> None:
    print("Example 1.2 — join view with duplicates")
    print("  U(A) = SELECT r.A FROM R r, S s WHERE r.B = s.B")
    db = Database()
    db.create_table("R", ["A", "B"], rows=[("a1", "b1")])
    db.create_table("S", ["B", "C"], rows=[("b1", "c1")])
    view = sql_to_view("CREATE VIEW U (A) AS SELECT r.A FROM R r, S s WHERE r.B = s.B", db)
    scenario = BaseLogScenario(db, view)
    scenario.install()
    show("MU before:", db[view.mv_table])

    txn = UserTransaction(db).insert("R", [("a1", "b2")]).insert("S", [("b2", "c2")])
    scenario.execute(txn)
    print("  transaction: insert (a1,b2) into R, (b2,c2) into S")

    buggy = buggy_post_update_refresh(scenario.log, db, view.query, view.mv_table)
    scenario.refresh()
    show("correct MU (post-update):", db[view.mv_table])
    show("buggy MU (pre-update eqs):", buggy)
    extra = len(buggy) - len(db[view.mv_table])
    print(f"  → the buggy refresh has {extra} phantom duplicate row(s)\n")


def example_1_3() -> None:
    print("Example 1.3 — monus view, a deleted tuple survives")
    print("  U = R - S;  R = {a,b,c}, S = {c,d}")
    db = Database()
    db.create_table("R", ["x"], rows=[("a",), ("b",), ("c",)])
    db.create_table("S", ["x"], rows=[("c",), ("d",)])
    view = ViewDefinition("U", Monus(db.ref("R"), db.ref("S")))
    scenario = BaseLogScenario(db, view)
    scenario.install()
    show("MU before:", db[view.mv_table])

    txn = UserTransaction(db).delete("R", [("b",)]).insert("S", [("b",)])
    scenario.execute(txn)
    print("  transaction: move (b,) from R into S")

    buggy = buggy_post_update_refresh(scenario.log, db, view.query, view.mv_table)
    scenario.refresh()
    show("correct MU (post-update):", db[view.mv_table])
    show("buggy MU (pre-update eqs):", buggy)
    print("  → the buggy refresh keeps the deleted tuple ('b',)!\n")


if __name__ == "__main__":
    example_1_2()
    example_1_3()
