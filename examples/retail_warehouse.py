"""Example 5.4 — a 24-hour retail warehouse day under four policies.

Point-of-sale transactions stream into ``sales`` all day.  The analysts'
view ``V`` is refreshed once per "day" (m = 24 ticks); the combined
scenario propagates hourly (k = 1).  We compare:

* base-log scenario with a nightly refresh (``refresh_BL``),
* combined scenario, Policy 1 (propagate hourly, full nightly refresh),
* combined scenario, Policy 2 (propagate hourly, nightly *partial*
  refresh — minimal downtime, view at most one hour stale),
* full recomputation as the naive baseline.

The table printed at the end shows the paper's Section 5.3 claims:
per-transaction overhead is log-only for BL and combined, and Policy 2
achieves the smallest exclusive-lock work on the view by orders of
magnitude.

Run:  python examples/retail_warehouse.py
"""

from repro.baselines.recompute import RecomputeScenario
from repro.bench.report import format_table
from repro.core import (
    BaseLogScenario,
    CombinedScenario,
    MaintenanceDriver,
    PeriodicRefresh,
    Policy1,
    Policy2,
)
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.workloads.retail import (
    CUSTOMER_ATTRS,
    SALES_ATTRS,
    VIEW_SQL,
    RetailConfig,
    RetailWorkload,
)

# Manifest for `python -m repro lint examples/retail_warehouse.py`.
LINT_SCHEMA = (
    f"CREATE TABLE customer ({', '.join(CUSTOMER_ATTRS)});\n"
    f"CREATE TABLE sales ({', '.join(SALES_ATTRS)})"
)
LINT_QUERIES = {"V": VIEW_SQL}

HORIZON = 24  # "hours"
TXNS_PER_TICK = 5


def run_day(label, scenario_cls, policy, **scenario_kwargs):
    config = RetailConfig(customers=150, initial_sales=3000, txn_inserts=12, seed=96)
    workload = RetailWorkload(config)
    db = Database()
    workload.setup_database(db)
    view = sql_to_view(VIEW_SQL, db)
    scenario = scenario_cls(db, view, **scenario_kwargs)
    scenario.install()
    driver = MaintenanceDriver(scenario, policy)
    schedule = workload.schedule(db, horizon=HORIZON, txns_per_tick=TXNS_PER_TICK)
    stats = driver.run(schedule, horizon=HORIZON, query_every=6)
    mv = view.mv_table
    return {
        "setup": label,
        "per_txn_ops": stats.transaction_cost // stats.transactions,
        "propagate_ops": stats.propagate_cost,
        "lock_ops_total": scenario.ledger.downtime_tuple_ops(mv),
        "lock_ops_worst": scenario.ledger.max_section_tuple_ops(mv),
        "max_staleness_h": stats.max_staleness(),
        "consistent": scenario.is_consistent(),
    }


def main() -> None:
    rows = [
        run_day("recompute nightly", RecomputeScenario, PeriodicRefresh(m=HORIZON)),
        run_day("base log nightly", BaseLogScenario, PeriodicRefresh(m=HORIZON)),
        run_day("combined, Policy 1 (k=1)", CombinedScenario, Policy1(k=1, m=HORIZON)),
        run_day("combined, Policy 2 (k=1)", CombinedScenario, Policy2(k=1, m=HORIZON)),
    ]
    print("Example 5.4 — one simulated day, m=24, k=1")
    print(format_table(rows))
    print(
        "\nReading the table: 'lock_ops_worst' is the view's worst-case"
        "\ndowntime (exclusive-lock work).  Policy 2 pays only the"
        "\nprecomputed-differential application; the base-log scenario"
        "\ncomputes a full day of incremental changes under the lock."
    )


if __name__ == "__main__":
    main()
