"""Seeded concurrency mutation: A view overlapping a refresh group is registered outside it.

Two structurally identical views are defined - one in the shared-log
group, one standalone - so group refresh can never share the delta
evaluation the overlap makes possible. Caught as RVM501.

Run:  python examples/mutations/overlapping_view_demo.py
Lint: python -m repro lint --concurrency examples/mutations/overlapping_view_demo.py
"""

#: Consumed by ``repro lint --concurrency`` and the mutation harness.
CONCURRENCY_MUTATION = "overlapping_view"


def main() -> int:
    from repro.analysis.mutations import run_mutation

    report = run_mutation(CONCURRENCY_MUTATION)
    print(f"mutation {CONCURRENCY_MUTATION!r}: {len(report)} finding(s)")
    print(report.format())
    # A mutation fixture is healthy when the analyzer *catches* it.
    return 0 if len(report) else 1


if __name__ == "__main__":
    raise SystemExit(main())
