"""Seeded concurrency mutation: Journal intents stop digesting the reader-visible MV tables.

`intent_payload_tables` is patched to exclude MV tables, so a crash
during refresh would leave recovery unable to verify or roll back
the view materialization. Caught statically (every operation's
inferred writes must be covered by the payload seam) and dynamically
(version-stamp diff around each journaled action) as RVM605.

Run:  python examples/mutations/omitted_journal_table_demo.py
Lint: python -m repro lint --concurrency examples/mutations/omitted_journal_table_demo.py
"""

#: Consumed by ``repro lint --concurrency`` and the mutation harness.
CONCURRENCY_MUTATION = "omitted_journal_table"


def main() -> int:
    from repro.analysis.mutations import run_mutation

    report = run_mutation(CONCURRENCY_MUTATION)
    print(f"mutation {CONCURRENCY_MUTATION!r}: {len(report)} finding(s)")
    print(report.format())
    # A mutation fixture is healthy when the analyzer *catches* it.
    return 0 if len(report) else 1


if __name__ == "__main__":
    raise SystemExit(main())
