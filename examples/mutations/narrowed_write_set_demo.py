"""Seeded concurrency mutation: A group task declares its log writes but forgets the MV table.

`BaseLogScenario._group_writes` is patched to drop the MV table, so
conflict batching would let another task touch it concurrently. The
analyzer compares the declaration against the independently inferred
footprint (compiled delta plans + apply-plan structure) and flags the
narrowing as RVM604.

Run:  python examples/mutations/narrowed_write_set_demo.py
Lint: python -m repro lint --concurrency examples/mutations/narrowed_write_set_demo.py
"""

#: Consumed by ``repro lint --concurrency`` and the mutation harness.
CONCURRENCY_MUTATION = "narrowed_write_set"


def main() -> int:
    from repro.analysis.mutations import run_mutation

    report = run_mutation(CONCURRENCY_MUTATION)
    print(f"mutation {CONCURRENCY_MUTATION!r}: {len(report)} finding(s)")
    print(report.format())
    # A mutation fixture is healthy when the analyzer *catches* it.
    return 0 if len(report) else 1


if __name__ == "__main__":
    raise SystemExit(main())
