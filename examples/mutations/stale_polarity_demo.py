"""Seeded concurrency mutation: The log substitution reads with pre-update polarity (Section 1.2).

`Log.substitution` is patched to swap the (D, A) components per
table - the classic state bug. Caught as RVM301 (polarity check)
plus a companion RVM601: the locked apply installs deltas computed
against a pre-update image the lock never covered.

Run:  python examples/mutations/stale_polarity_demo.py
Lint: python -m repro lint --concurrency examples/mutations/stale_polarity_demo.py
"""

#: Consumed by ``repro lint --concurrency`` and the mutation harness.
CONCURRENCY_MUTATION = "stale_polarity"


def main() -> int:
    from repro.analysis.mutations import run_mutation

    report = run_mutation(CONCURRENCY_MUTATION)
    print(f"mutation {CONCURRENCY_MUTATION!r}: {len(report)} finding(s)")
    print(report.format())
    # A mutation fixture is healthy when the analyzer *catches* it.
    return 0 if len(report) else 1


if __name__ == "__main__":
    raise SystemExit(main())
