"""Seeded concurrency mutation: The group scheduler emits its conflict-ordered batches reversed.

A dependent refresh pair (downstream reads the MV table upstream
writes) must keep registration order across batches; with the batch
list reversed, the schedule edge and the registration edge for the
conflicting pair close a lock-order cycle. Caught as RVM603.

Run:  python examples/mutations/swapped_batch_order_demo.py
Lint: python -m repro lint --concurrency examples/mutations/swapped_batch_order_demo.py
"""

#: Consumed by ``repro lint --concurrency`` and the mutation harness.
CONCURRENCY_MUTATION = "swapped_batch_order"


def main() -> int:
    from repro.analysis.mutations import run_mutation

    report = run_mutation(CONCURRENCY_MUTATION)
    print(f"mutation {CONCURRENCY_MUTATION!r}: {len(report)} finding(s)")
    print(report.format())
    # A mutation fixture is healthy when the analyzer *catches* it.
    return 0 if len(report) else 1


if __name__ == "__main__":
    raise SystemExit(main())
