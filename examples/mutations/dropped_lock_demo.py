"""Seeded concurrency mutation: Refresh runs without the view's exclusive lock.

Both the lock acquisition (`Scenario._refresh_lock`) and its static
declaration (`_refresh_lock_resources`) are patched away, so `refresh`
reads and patches the `MV` table with no critical section around it.
Caught statically as RVM601 (unlocked MV read) + RVM602 (unlocked MV
write), and dynamically by the lockset sanitizer: the candidate
lockset of the MV table is empty at first access.

Run:  python examples/mutations/dropped_lock_demo.py
Lint: python -m repro lint --concurrency examples/mutations/dropped_lock_demo.py
"""

#: Consumed by ``repro lint --concurrency`` and the mutation harness.
CONCURRENCY_MUTATION = "dropped_lock"


def main() -> int:
    from repro.analysis.mutations import run_mutation

    report = run_mutation(CONCURRENCY_MUTATION)
    print(f"mutation {CONCURRENCY_MUTATION!r}: {len(report)} finding(s)")
    print(report.format())
    # A mutation fixture is healthy when the analyzer *catches* it.
    return 0 if len(report) else 1


if __name__ == "__main__":
    raise SystemExit(main())
