"""Order-fulfillment warehouse: three views, one update stream.

A second domain beyond retail: ``orders`` and ``lineitems`` with
multi-table transactions (placing an order writes both tables; a
cancellation deletes from both).  Three materialized views with
different shapes — a join, a DISTINCT projection, and a difference
(EXCEPT) view — are maintained together; every user transaction extends
all three views' logs in a single simultaneous step.

The EXCEPT view (`empty_orders`) is the shape where pre-update
incremental equations silently fail when deferred (Example 1.3); here it
tracks placements and cancellations exactly.

Run:  python examples/order_fulfillment.py
"""

from repro.warehouse import ViewManager
from repro.workloads.orders import (
    EMPTY_ORDERS_SQL,
    LINEITEMS_ATTRS,
    OPEN_ORDER_LINES_SQL,
    ORDER_IDS_SQL,
    ORDERS_ATTRS,
    OrdersConfig,
    OrdersWorkload,
)

# Manifest for `python -m repro lint examples/order_fulfillment.py`.
LINT_SCHEMA = (
    f"CREATE TABLE orders ({', '.join(ORDERS_ATTRS)});\n"
    f"CREATE TABLE lineitems ({', '.join(LINEITEMS_ATTRS)})"
)
LINT_QUERIES = {
    "open_order_lines": OPEN_ORDER_LINES_SQL,
    "order_ids": ORDER_IDS_SQL,
    "empty_orders": EMPTY_ORDERS_SQL,
    "spot_check": "SELECT DISTINCT orderId FROM orders EXCEPT SELECT DISTINCT orderId FROM lineitems",
}


def main() -> None:
    workload = OrdersWorkload(OrdersConfig(initial_orders=50, seed=42))
    manager = ViewManager()
    workload.setup_database(manager.db)

    manager.define_view("open_order_lines", OPEN_ORDER_LINES_SQL, scenario="combined")
    manager.define_view("order_ids", ORDER_IDS_SQL, scenario="combined")
    manager.define_view("empty_orders", EMPTY_ORDERS_SQL, scenario="combined")

    print("initial view sizes:")
    for name in manager.views():
        print(f"   {name:<17} {len(manager.query(name))} rows")

    print("\napplying 40 multi-table transactions (place/ship/cancel)…")
    for txn in workload.transactions(manager.db, 40):
        manager.execute(txn)
    manager.check_invariants()
    print("all three scenario invariants hold while stale.")

    stale = [name for name in manager.views() if manager.is_stale(name)]
    print(f"stale views: {sorted(stale)}")

    manager.refresh_all()
    print("\nafter refresh:")
    for name in manager.views():
        fresh = "fresh" if not manager.is_stale(name) else "STALE"
        print(f"   {name:<17} {len(manager.query(name))} rows ({fresh})")

    # Spot-check the EXCEPT view against direct recomputation.
    expected = manager.sql(
        "SELECT DISTINCT orderId FROM orders EXCEPT SELECT DISTINCT orderId FROM lineitems"
    )
    assert manager.query("empty_orders") == expected
    print("\nempty_orders matches direct recomputation — the state bug is avoided.")
    print(f"total maintenance tuple-ops: {manager.counter.tuples_out}")


if __name__ == "__main__":
    main()
