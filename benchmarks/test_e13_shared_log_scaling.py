"""E13 — extension: shared-log scaling with the number of views.

Section 7 asks how log information should be stored so per-transaction
work is "minimal, and independent of the number of views supported".
The per-view logs of ``makesafe_BL`` scale linearly with the view count;
the shared sequenced log (`repro.extensions.sharedlog`) appends once per
transaction regardless.

Sweep the number of maintained views over the same base table and
measure per-transaction tuple-ops under both designs.
"""

from benchmarks.common import ExperimentResult, write_report
from repro.core.scenarios import BaseLogScenario
from repro.core.views import ViewDefinition
from repro.extensions.sharedlog import SharedLogScenario
from repro.storage.database import Database
from repro.workloads.retail import RetailConfig, RetailWorkload

VIEW_COUNTS = (1, 2, 4, 8, 16)
TXNS = 30


def setup_db():
    config = RetailConfig(customers=80, initial_sales=800, txn_inserts=8, seed=5)
    workload = RetailWorkload(config)
    db = Database()
    workload.setup_database(db)
    return db, workload


def view_for(db, index: int) -> ViewDefinition:
    return ViewDefinition(f"V{index}", db.ref("sales"))


def per_view_logs_cost(views: int) -> int:
    db, workload = setup_db()
    scenarios = []
    for index in range(views):
        scenario = BaseLogScenario(db, view_for(db, index))
        scenario.install()
        scenarios.append(scenario)
    counter = scenarios[0].counter
    for scenario in scenarios[1:]:
        scenario.counter = counter
    before = counter.tuples_out
    for txn in workload.transactions(db, TXNS):
        from repro.core.plan import MaintenancePlan

        plan = MaintenancePlan(patches=txn.weakly_minimal().patches())
        for scenario in scenarios:
            plan = plan.merge(scenario.make_safe(txn))
        plan.execute(db, counter=counter)
    return (counter.tuples_out - before) // TXNS


def shared_log_cost(views: int) -> int:
    db, workload = setup_db()
    scenario = SharedLogScenario(db)
    for index in range(views):
        scenario.add_view(view_for(db, index))
    before = scenario.counter.tuples_out
    for txn in workload.transactions(db, TXNS):
        scenario.execute(txn)
    return (scenario.counter.tuples_out - before) // TXNS


def run_experiment():
    rows = []
    for views in VIEW_COUNTS:
        rows.append(
            {
                "views": views,
                "per_view_logs_ops": per_view_logs_cost(views),
                "shared_log_ops": shared_log_cost(views),
            }
        )
    return rows


def test_e13_shared_log_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E13", "per-transaction ops vs number of views: per-view vs shared log")
    for row in rows:
        result.add(**row)
    write_report(result)

    # Per-view logs grow with the view count...
    assert rows[-1]["per_view_logs_ops"] > 4 * rows[0]["per_view_logs_ops"]
    # ...while the shared log's per-transaction cost is flat.
    shared = [row["shared_log_ops"] for row in rows]
    assert max(shared) <= min(shared) + 2
