"""E15 — extension: query-scoped partial refresh (future work item 1).

Section 7 asks for "algorithms to refresh only those parts of a view
needed by a given query".  The `repro.extensions.scoped` implementation
applies only the differential rows a selection predicate needs.  Sweep
the hot-slice fraction of pending changes and compare the view's
lock-held work against a full partial refresh of the same backlog.

Expected shape: large savings when the needed slice is a small fraction
of the pending changes, with a crossover — the scoped path pays a
selection pass over the differentials, so refreshing everything through
it costs more than a plain partial refresh.
"""

from benchmarks.common import ExperimentResult, write_report
from repro.algebra.predicates import Comparison, attr, const
from repro.core.scenarios import CombinedScenario
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.extensions.scoped import scoped_partial_refresh
from repro.storage.database import Database

BACKLOG = 400
HOT_FRACTIONS = (0.01, 0.1, 0.5, 1.0)


def build(hot_fraction: float):
    db = Database()
    db.create_table("events", ["key", "value"], rows=[(index, 0) for index in range(100)])
    scenario = CombinedScenario(db, ViewDefinition("V", db.ref("events")))
    scenario.install()
    hot_count = int(BACKLOG * hot_fraction)
    rows = [(index, 1) for index in range(hot_count)] + [
        (10_000 + index, 1) for index in range(BACKLOG - hot_count)
    ]
    scenario.execute(UserTransaction(db).insert("events", rows))
    scenario.propagate()
    return db, scenario


HOT = Comparison("<", attr("key"), const(1000))


def run_experiment():
    rows = []
    for fraction in HOT_FRACTIONS:
        db, scoped = build(fraction)
        before = scoped.counter.tuples_out
        scoped_partial_refresh(scoped, HOT)
        scoped_ops = scoped.counter.tuples_out - before
        scoped.check_invariant()

        db_full, full = build(fraction)
        before = full.counter.tuples_out
        full.partial_refresh()
        full_ops = full.counter.tuples_out - before

        rows.append(
            {
                "hot_fraction": fraction,
                "scoped_lock_ops": scoped_ops,
                "full_lock_ops": full_ops,
                "saving": f"{(1 - scoped_ops / full_ops) * 100:.0f}%",
                "_scoped": scoped_ops,
                "_full": full_ops,
            }
        )
    return rows


def test_e15_scoped_refresh(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E15", "query-scoped vs full partial refresh (lock-held tuple ops)")
    for row in rows:
        result.add(**{key: value for key, value in row.items() if not key.startswith("_")})
    write_report(result)

    # Scoped work grows with the hot fraction…
    scoped_ops = [row["_scoped"] for row in rows]
    assert all(a <= b for a, b in zip(scoped_ops, scoped_ops[1:]))
    # …and wins decisively for small slices (the intended use case)…
    assert rows[0]["_scoped"] < rows[0]["_full"] * 0.6
    # …but pays a selection tax, so refreshing *everything* through the
    # scoped path costs more than a plain partial refresh: there is a
    # genuine crossover, which the report documents.
    assert rows[-1]["_scoped"] > rows[-1]["_full"]
