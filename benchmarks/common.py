"""Shared infrastructure for the experiment benchmarks (E1–E11).

Each experiment writes its report table to ``benchmarks/reports/`` so
``EXPERIMENTS.md`` can quote the measured output, and asserts the
paper's qualitative claims so regressions fail loudly.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.harness import ExperimentResult
from repro.core.policies import MaintenanceDriver, MaintenancePolicy
from repro.core.scenarios import Scenario
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

REPORTS_DIR = Path(__file__).parent / "reports"

__all__ = [
    "write_report",
    "retail_setup",
    "drive_retail",
    "ExperimentResult",
]


def write_report(result: ExperimentResult) -> str:
    """Persist the experiment's table and echo it to stdout."""
    REPORTS_DIR.mkdir(exist_ok=True)
    text = result.report()
    (REPORTS_DIR / f"{result.experiment}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def retail_setup(
    *,
    customers: int = 150,
    initial_sales: int = 3000,
    txn_inserts: int = 12,
    seed: int = 96,
    **config_overrides,
):
    """A retail database plus the Example 1.1 view definition."""
    config = RetailConfig(
        customers=customers,
        initial_sales=initial_sales,
        txn_inserts=txn_inserts,
        seed=seed,
        **config_overrides,
    )
    workload = RetailWorkload(config)
    db = Database()
    workload.setup_database(db)
    view = sql_to_view(VIEW_SQL, db)
    return db, view, workload


def drive_retail(
    scenario: Scenario,
    policy: MaintenancePolicy,
    workload: RetailWorkload,
    *,
    horizon: int = 24,
    txns_per_tick: int = 5,
) -> MaintenanceDriver:
    """Install the scenario and run a full simulated day."""
    scenario.install()
    driver = MaintenanceDriver(scenario, policy)
    schedule = workload.schedule(scenario.db, horizon=horizon, txns_per_tick=txns_per_tick)
    driver.run(schedule, horizon=horizon)
    return driver
