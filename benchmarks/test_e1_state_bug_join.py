"""E1 — Example 1.2: the state bug on a join view with duplicates.

Paper claim: the pre-update incremental query, evaluated post-update,
computes {[a1] x 4} where the correct answer is {[a1] x 2}.  Our
post-update algorithm is exact; the benchmark times both refresh paths.
"""

from benchmarks.common import ExperimentResult, write_report
from repro.baselines.preupdate_bug import buggy_post_update_refresh
from repro.core import BaseLogScenario, UserTransaction
from repro.sqlfront import sql_to_view
from repro.storage.database import Database


def build():
    db = Database()
    db.create_table("R", ["A", "B"], rows=[("a1", "b1")])
    db.create_table("S", ["B", "C"], rows=[("b1", "c1")])
    view = sql_to_view("CREATE VIEW U (A) AS SELECT r.A FROM R r, S s WHERE r.B = s.B", db)
    scenario = BaseLogScenario(db, view)
    scenario.install()
    scenario.execute(UserTransaction(db).insert("R", [("a1", "b2")]).insert("S", [("b2", "c2")]))
    return db, view, scenario


def test_e1_state_bug_join(benchmark):
    db, view, scenario = build()
    buggy = buggy_post_update_refresh(scenario.log, db, view.query, view.mv_table)

    def correct_refresh():
        snap = db.snapshot()
        scenario.refresh()
        refreshed = db[view.mv_table]
        db.restore(snap)
        return refreshed

    correct = benchmark(correct_refresh)

    truth = db.evaluate(view.query)
    result = ExperimentResult("E1", "Example 1.2 — join view, post- vs pre-update refresh")
    result.add(variant="ground truth Q(s)", a1_count=truth.multiplicity(("a1",)), total=len(truth))
    result.add(variant="post-update (ours)", a1_count=correct.multiplicity(("a1",)), total=len(correct))
    result.add(variant="pre-update-in-post (bug)", a1_count=buggy.multiplicity(("a1",)), total=len(buggy))
    write_report(result)

    # Paper's exact numbers: correct multiplicity 2, buggy multiplicity 4.
    assert correct == truth
    assert correct.multiplicity(("a1",)) == 2
    assert buggy.multiplicity(("a1",)) == 4
    assert buggy != truth
