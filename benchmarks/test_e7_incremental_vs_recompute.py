"""E7 — incremental refresh vs full recomputation: the crossover.

Paper claim (Section 3.3): "in most cases this incremental approach
will be much less expensive than recomputing Q from scratch".  The
incremental refresh cost scales with the *pending change volume* (the
log), while recomputation scales with the base tables; incremental wins
until the pending changes approach the table size, after which
recomputation catches up.

Sweep: pending insertions as a fraction of the initial ``sales`` table,
measuring the tuple-op cost of ``refresh_BL`` vs recompute on identical
databases.
"""

from benchmarks.common import ExperimentResult, retail_setup, write_report
from repro.baselines.recompute import RecomputeScenario
from repro.core.scenarios import BaseLogScenario

FRACTIONS = (0.01, 0.05, 0.25, 1.0, 3.0)
INITIAL_SALES = 1500


def refresh_cost(scenario_cls, pending: int, seed: int = 96) -> int:
    db, view, workload = retail_setup(initial_sales=INITIAL_SALES, txn_inserts=25, seed=seed)
    scenario = scenario_cls(db, view)
    scenario.install()
    applied = 0
    while applied < pending:
        scenario.execute(workload.next_transaction(db))
        applied += 25
    before = scenario.counter.tuples_out
    scenario.refresh()
    assert scenario.is_consistent()
    return scenario.counter.tuples_out - before


def run_experiment():
    rows = []
    for fraction in FRACTIONS:
        pending = int(INITIAL_SALES * fraction)
        incremental = refresh_cost(BaseLogScenario, pending)
        recompute = refresh_cost(RecomputeScenario, pending)
        rows.append(
            {
                "pending_fraction": fraction,
                "pending_rows": pending,
                "incremental_ops": incremental,
                "recompute_ops": recompute,
                "speedup": round(recompute / incremental, 2),
            }
        )
    return rows


def test_e7_incremental_vs_recompute(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E7", "refresh cost vs pending-change volume (tuple ops)")
    for row in rows:
        result.add(**row)
    write_report(result)

    # Incremental wins decisively at small pending volumes...
    assert rows[0]["speedup"] > 10
    assert rows[1]["speedup"] > 4
    # ...and the advantage monotonically erodes as pending volume grows.
    speedups = [row["speedup"] for row in rows]
    assert all(a >= b for a, b in zip(speedups, speedups[1:]))
    # By 3x table size in pending changes, recompute is competitive
    # (within ~3x, vs >10x at the small end).
    assert speedups[-1] < 3
