"""E9 — Remark 1: exactly when pre-update equations survive post-update.

Paper claim (Section 4.2): for SPJ views *without self-joins* updated by
a *single-table* weakly minimal transaction, the pre-update incremental
equations happen to evaluate correctly in the post-update state; relax
either restriction and counterexamples appear.

Grid: {SPJ, self-join, monus} views x {single-table, multi-table}
updates, comparing the buggy baseline's refresh against ground truth on
randomized instances.
"""

from benchmarks.common import ExperimentResult, write_report
from repro.algebra.expr import Monus
from repro.baselines.preupdate_bug import buggy_post_update_refresh
from repro.core import BaseLogScenario, UserTransaction, ViewDefinition
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.workloads.randgen import RandomExpressionGenerator

TRIALS = 20


def build_db(generator):
    db = Database()
    db.create_table("R", ["a", "b"], rows=[generator.row(2) for __ in range(8)])
    db.create_table("S", ["b", "c"], rows=[generator.row(2) for __ in range(8)])
    return db


def make_view(db, shape: str):
    if shape == "SPJ":
        return sql_to_view(
            "CREATE VIEW U (a, c) AS SELECT r.a, s.c FROM R r, S s WHERE r.b = s.b", db
        )
    if shape == "self-join":
        return sql_to_view(
            "CREATE VIEW U (x, y) AS SELECT r1.a, r2.a FROM R r1, R r2 WHERE r1.b = r2.b", db
        )
    if shape == "monus":
        return ViewDefinition(
            "U", Monus(db.ref("R").project(["a"]), db.ref("S").project(["c"], ["a"]))
        )
    raise ValueError(shape)


def make_txn(db, generator, update: str) -> UserTransaction:
    txn = UserTransaction(db)
    txn.insert("R", [generator.row(2) for __ in range(3)])
    if update == "multi-table":
        txn.insert("S", [generator.row(2) for __ in range(2)])
        txn.delete("S", generator.subbag_of(db["S"]))
    return txn


def run_cell(shape: str, update: str) -> int:
    """Number of trials where the buggy baseline got the wrong view."""
    wrong = 0
    for seed in range(TRIALS):
        generator = RandomExpressionGenerator(seed)
        db = build_db(generator)
        view = make_view(db, shape)
        scenario = BaseLogScenario(db, view)
        scenario.install()
        scenario.execute(make_txn(db, generator, update))
        buggy = buggy_post_update_refresh(scenario.log, db, view.query, view.mv_table)
        scenario.refresh()
        assert scenario.is_consistent()
        wrong += buggy != db[view.mv_table]
    return wrong


def run_experiment():
    rows = []
    for shape in ("SPJ", "self-join", "monus"):
        for update in ("single-table", "multi-table"):
            wrong = run_cell(shape, update)
            rows.append(
                {
                    "view_shape": shape,
                    "update": update,
                    "in_restricted_class": shape == "SPJ" and update == "single-table",
                    "wrong_refreshes": f"{wrong}/{TRIALS}",
                    "wrong_count": wrong,
                }
            )
    return rows


def test_e9_remark1_restrictions(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E9", "Remark 1 grid: pre-update equations evaluated post-update")
    for row in rows:
        result.add(**{key: value for key, value in row.items() if key != "wrong_count"})
    write_report(result)

    by_cell = {(row["view_shape"], row["update"]): row["wrong_count"] for row in rows}
    # Inside the restricted class the old equations are coincidentally safe...
    assert by_cell[("SPJ", "single-table")] == 0
    # ...and every relaxation produces real counterexamples.
    assert by_cell[("SPJ", "multi-table")] > 0
    assert by_cell[("self-join", "single-table")] > 0
    assert by_cell[("monus", "multi-table")] > 0
