"""E2 — Example 1.3: the state bug on a monus (difference) view.

Paper claim: after moving tuple [b] from R to S, the pre-update delete
query evaluates to the empty bag in the post-update state, leaving the
stale tuple [b] in MU.  The post-update algorithm removes it.
"""

from benchmarks.common import ExperimentResult, write_report
from repro.algebra.bag import Bag
from repro.algebra.expr import Monus
from repro.baselines.preupdate_bug import buggy_post_update_delta, buggy_post_update_refresh
from repro.core import BaseLogScenario, UserTransaction, ViewDefinition
from repro.storage.database import Database


def build():
    db = Database()
    db.create_table("R", ["x"], rows=[("a",), ("b",), ("c",)])
    db.create_table("S", ["x"], rows=[("c",), ("d",)])
    view = ViewDefinition("U", Monus(db.ref("R"), db.ref("S")))
    scenario = BaseLogScenario(db, view)
    scenario.install()
    scenario.execute(UserTransaction(db).delete("R", [("b",)]).insert("S", [("b",)]))
    return db, view, scenario


def test_e2_state_bug_monus(benchmark):
    db, view, scenario = build()
    buggy = buggy_post_update_refresh(scenario.log, db, view.query, view.mv_table)
    buggy_delete, __ = buggy_post_update_delta(scenario.log, db, view.query)
    buggy_delete_value = db.evaluate(buggy_delete)

    def correct_refresh():
        snap = db.snapshot()
        scenario.refresh()
        refreshed = db[view.mv_table]
        db.restore(snap)
        return refreshed

    correct = benchmark(correct_refresh)

    result = ExperimentResult("E2", "Example 1.3 — monus view, deleted tuple must not survive")
    result.add(variant="ground truth Q(s)", rows=sorted(db.evaluate(view.query)))
    result.add(variant="post-update (ours)", rows=sorted(correct))
    result.add(variant="pre-update-in-post (bug)", rows=sorted(buggy))
    write_report(result)

    # Paper's exact outcome: ∇MU evaluates to {} post-update, so the buggy
    # view keeps [b]; the correct view is {[a]}.
    assert buggy_delete_value == Bag.empty()
    assert correct == Bag([("a",)])
    assert buggy == Bag([("a",), ("b",)])
