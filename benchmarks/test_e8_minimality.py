"""E8 — weak vs strong minimality of the differential tables.

Paper claim (Sections 4.1 and 5.3): the algorithms are weakly minimal;
"one can minimize view downtime further by removing, from ∇MV and ΔMV,
tuples that exist in both" — i.e. strong minimality.  The gap widens
with *churn*: workloads that delete and re-insert the same rows.

Sweep churn (the fraction of each transaction that deletes rows it then
re-inserts), measuring differential-table volume and partial-refresh
downtime under both settings of ``strong_minimality``.
"""

from benchmarks.common import ExperimentResult, retail_setup, write_report
from repro.core.scenarios import CombinedScenario
from repro.core.transactions import UserTransaction

CHURN_LEVELS = (0.0, 0.5, 1.0)
ROUNDS = 20
BATCH = 10


def churn_stream(db, workload, churn: float, rounds: int):
    """Transactions that re-insert a ``churn`` fraction of their deletes."""
    import random

    rng = random.Random(17)
    live = sorted(db["sales"].support)
    for __ in range(rounds):
        txn = UserTransaction(db)
        victims = rng.sample(live, k=min(BATCH, len(live)))
        txn.delete("sales", victims)
        churned = victims[: int(len(victims) * churn)]
        fresh = [workload._sale_row() for __ in range(BATCH - len(churned))]
        txn.insert("sales", churned + fresh)
        yield txn


def run_variant(churn: float, strong: bool):
    db, view, workload = retail_setup(initial_sales=2000, seed=13)
    scenario = CombinedScenario(db, view, strong_minimality=strong)
    scenario.install()
    for txn in churn_stream(db, workload, churn, ROUNDS):
        scenario.execute(txn)
        scenario.propagate()
    dt_volume = len(db[view.dt_delete_table]) + len(db[view.dt_insert_table])
    before = scenario.counter.tuples_out
    scenario.partial_refresh()
    downtime = scenario.counter.tuples_out - before
    scenario.check_invariant()
    return dt_volume, downtime


def run_experiment():
    rows = []
    for churn in CHURN_LEVELS:
        weak_volume, weak_downtime = run_variant(churn, strong=False)
        strong_volume, strong_downtime = run_variant(churn, strong=True)
        rows.append(
            {
                "churn": churn,
                "dt_rows_weak": weak_volume,
                "dt_rows_strong": strong_volume,
                "downtime_weak": weak_downtime,
                "downtime_strong": strong_downtime,
            }
        )
    return rows


def test_e8_minimality(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E8", "weak vs strong minimality under churn (dt volume, refresh ops)")
    for row in rows:
        result.add(**row)
    write_report(result)

    # Strong minimality never stores more, and the saving grows with churn.
    for row in rows:
        assert row["dt_rows_strong"] <= row["dt_rows_weak"]
        assert row["downtime_strong"] <= row["downtime_weak"]
    zero = rows[0]
    full = rows[-1]
    weak_gap_zero = zero["dt_rows_weak"] - zero["dt_rows_strong"]
    weak_gap_full = full["dt_rows_weak"] - full["dt_rows_strong"]
    assert weak_gap_full > weak_gap_zero
    # At full churn the view barely changes: strong minimality's
    # differentials shrink dramatically versus weak's.
    assert full["dt_rows_strong"] < full["dt_rows_weak"] / 2
