"""E17 — extension: crash-recovery cost vs deferred log size.

The crash-safety layer (`repro.robustness`) rolls an interrupted
maintenance operation forward from the journal and the snapshot's
surviving logs.  The work that replay must redo is exactly the deferred
maintenance that was in flight — so recovery cost should track the *log
size at the crash*, which the maintenance policy controls:

* under **Policy 1** (refresh every k-th transaction, no propagation)
  the logs grow with the deferral depth, and so does the refresh that
  recovery re-runs;
* under **Policy 2** (propagate after every transaction) the logs are
  already folded into the differential tables when the crash hits, so
  the journaled refresh watermark stays at zero regardless of depth.

The experiment crashes a combined-scenario refresh at
``crash-mid-refresh`` after ``d`` deferred transactions and measures the
pending intent's log watermark and the recovery wall time.
"""

import time

import pytest

from benchmarks.common import ExperimentResult, write_report
from repro.robustness.durable import DurableWarehouse
from repro.robustness.faults import INJECTOR, InjectedCrash
from repro.robustness.journal import IntentJournal, journal_path
from repro.robustness.recovery import recover
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

DEFERRAL_DEPTHS = (2, 6, 12)
TXN_INSERTS = 20


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


def run_case(base_dir, policy, deferral):
    """Defer ``deferral`` txns under ``policy``, crash the refresh, recover."""
    config = RetailConfig(customers=60, items=30, initial_sales=600, txn_inserts=TXN_INSERTS, seed=96)
    workload = RetailWorkload(config)
    path = base_dir / f"{policy.replace(' ', '_')}_{deferral}.db"
    warehouse = DurableWarehouse(path)
    warehouse.create_table("customer", ("custId", "name", "address", "score"))
    warehouse.load("customer", workload.customer_rows())
    warehouse.create_table("sales", ("custId", "itemNo", "quantity", "salesPrice"))
    warehouse.load("sales", workload.initial_sales_rows())
    warehouse.define_view("V", VIEW_SQL, scenario="combined")
    for __ in range(deferral):
        rows = [workload._sale_row() for __ in range(TXN_INSERTS)]
        warehouse.transaction().insert("sales", rows).run()
        if policy == "Policy 2":
            warehouse.propagate("V")

    INJECTOR.arm("crash-mid-refresh")
    with pytest.raises(InjectedCrash):
        warehouse.refresh("V")
    INJECTOR.reset()
    warehouse.close()

    with IntentJournal(journal_path(path)) as journal:
        watermark = journal.pending().watermark
    started = time.perf_counter()
    report = recover(path)
    recovery_ms = (time.perf_counter() - started) * 1000
    assert report.action == "rolled_forward" and report.green, report.format()
    return {
        "policy": policy,
        "deferred txns": deferral,
        "log watermark": watermark,
        "recovery": "rolled_forward",
        "recovery_ms": round(recovery_ms, 1),
    }


def run_experiment(base_dir):
    rows = []
    for depth in DEFERRAL_DEPTHS:
        rows.append(run_case(base_dir, "Policy 1", depth))
    for depth in DEFERRAL_DEPTHS:
        rows.append(run_case(base_dir, "Policy 2", depth))
    return rows


def test_e17_crash_recovery(benchmark, tmp_path):
    rows = benchmark.pedantic(run_experiment, args=(tmp_path,), rounds=1, iterations=1)
    result = ExperimentResult("E17", "crash-recovery replay work vs deferred log size")
    for row in rows:
        result.add(**row)
    write_report(result)

    by_case = {(row["policy"], row["deferred txns"]): row for row in rows}
    # Policy 1: the journaled refresh watermark — the log replay must
    # re-read — grows strictly with the deferral depth.
    watermarks = [by_case[("Policy 1", depth)]["log watermark"] for depth in DEFERRAL_DEPTHS]
    assert watermarks == sorted(watermarks) and watermarks[0] < watermarks[-1]
    assert watermarks[-1] >= DEFERRAL_DEPTHS[-1] * TXN_INSERTS
    # Policy 2: propagation already drained the logs into the
    # differential tables — the crashed refresh has nothing deferred to
    # re-read, independent of depth.
    for depth in DEFERRAL_DEPTHS:
        assert by_case[("Policy 2", depth)]["log watermark"] == 0
