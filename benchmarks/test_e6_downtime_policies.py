"""E6 — view downtime under the Section 5.3 policies (Example 5.4).

Paper claims:

* Policy 2 has the *least* downtime: partial refresh merely applies
  precomputed differential tables.
* Policy 1's refresh is far below the plain base-log scenario's, since
  propagation already did most of the incremental work (the log holds
  at most k hours of changes instead of a day's worth).
* Policy 2's view is at most k time units out of date after a refresh.
* Smaller k shrinks the refresh-time gap further (sweep over k).
"""

from benchmarks.common import ExperimentResult, drive_retail, retail_setup, write_report
from repro.baselines.recompute import RecomputeScenario
from repro.core.policies import PeriodicRefresh, Policy1, Policy2
from repro.core.scenarios import BaseLogScenario, CombinedScenario

HORIZON = 24  # one day, m = 24
TXNS_PER_TICK = 5


def run_one(label, scenario_cls, policy, seed=96):
    db, view, workload = retail_setup(seed=seed)
    scenario = scenario_cls(db, view)
    driver = drive_retail(scenario, policy, workload, horizon=HORIZON, txns_per_tick=TXNS_PER_TICK)
    mv = view.mv_table
    return {
        "policy": label,
        "lock_ops_worst": scenario.ledger.max_section_tuple_ops(mv),
        "lock_ops_total": scenario.ledger.downtime_tuple_ops(mv),
        "lock_sections": scenario.ledger.section_count(mv),
        "offlock_propagate_ops": driver.stats.propagate_cost,
        "consistent_at_eod": scenario.is_consistent(),
    }


def run_experiment():
    rows = [
        run_one("recompute @ m=24", RecomputeScenario, PeriodicRefresh(m=HORIZON)),
        run_one("refresh_BL @ m=24", BaseLogScenario, PeriodicRefresh(m=HORIZON)),
    ]
    for k in (1, 2, 4, 8):
        rows.append(run_one(f"Policy 1, k={k}", CombinedScenario, Policy1(k=k, m=HORIZON)))
    for k in (1, 2, 4, 8):
        rows.append(run_one(f"Policy 2, k={k}", CombinedScenario, Policy2(k=k, m=HORIZON)))
    return rows


def staleness_run():
    """Policy 2 staleness bound: queries right after each partial refresh."""
    db, view, workload = retail_setup()
    scenario = CombinedScenario(db, view)
    scenario.install()
    from repro.core.policies import MaintenanceDriver

    driver = MaintenanceDriver(scenario, Policy2(k=2, m=6))
    for tick, txns in workload.schedule(db, horizon=24, txns_per_tick=2):
        driver.tick(txns)
        if driver.now % 6 == 0:
            driver.query()
    return driver.stats.max_staleness()


def test_e6_downtime_policies(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E6", "view downtime (exclusive-lock tuple ops), m=24, k swept")
    for row in rows:
        result.add(**row)
    write_report(result)

    by_policy = {row["policy"]: row for row in rows}
    recompute = by_policy["recompute @ m=24"]["lock_ops_worst"]
    base_log = by_policy["refresh_BL @ m=24"]["lock_ops_worst"]
    policy1_k1 = by_policy["Policy 1, k=1"]["lock_ops_worst"]
    policy2_k1 = by_policy["Policy 2, k=1"]["lock_ops_worst"]

    # The paper's ordering: Policy 2 ≪ Policy 1 < refresh_BL < recompute.
    assert policy2_k1 <= policy1_k1
    assert policy2_k1 < base_log / 5
    assert policy1_k1 < base_log / 2
    assert base_log < recompute
    # Larger k leaves more log work inside Policy 1's refresh.
    assert (
        by_policy["Policy 1, k=1"]["lock_ops_worst"]
        <= by_policy["Policy 1, k=8"]["lock_ops_worst"]
    )
    # Policy 2's downtime does not grow with k (it never computes deltas
    # under the lock).
    assert by_policy["Policy 2, k=8"]["lock_ops_worst"] <= policy2_k1 * 2

    # Staleness bound: with k=2, a query right after a partial refresh is
    # at most k ticks stale.
    assert staleness_run() <= 2
