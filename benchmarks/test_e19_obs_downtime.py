"""E19 — downtime/staleness accounting through the observability layer.

Where E6 measures downtime with the lock ledger's raw tuple-op counts,
E19 runs the same Policy 1 vs Policy 2 comparison through
:mod:`repro.obs` — per-view clocks that implement the Section 5.3 split
into *downtime* (exclusively locked for refresh) and *staleness* (how
out-of-date answers served meanwhile are, in wall-clock seconds AND
unpropagated log entries) — and checks that the observability layer
itself is free when disabled (tuple-op identity on an E7-shaped run).

Paper claims reproduced:

* At equal ``(k, m)``, Policy 2's per-refresh downtime (mean and worst
  exclusive-lock section) is below Policy 1's.
* Policy 2 trades that for bounded staleness: after a partial refresh
  the view is at most ``k`` ticks behind, and its residual
  unpropagated-entry count is nonzero when the refresh tick carries no
  propagate.
* Staleness is reported in both units (wall seconds and log entries).
"""

from benchmarks.common import ExperimentResult, write_report
from repro.bench.obs_bench import run_overhead_check, run_policy_comparison


def run_experiment():
    comparison = run_policy_comparison(smoke=False, k=2, m=7)
    overhead = run_overhead_check(smoke=True)
    return comparison, overhead


def test_e19_obs_downtime(benchmark):
    comparison, overhead = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    result = ExperimentResult(
        "E19", "downtime vs staleness via obs clocks, Policy 1 vs 2 at (k=2, m=7)"
    )
    for key in ("policy1", "policy2"):
        run = comparison[key]
        result.add(
            policy=run["policy"],
            mean_section_ops=run["downtime"]["mean_section_ops"],
            max_section_ops=run["downtime"]["max_section_ops"],
            lock_sections=run["downtime"]["lock_sections"],
            max_stale_entries=run["staleness"]["max_entries"],
            residual_entries=run["staleness"]["residual_entries_after_run"],
            ticks_behind_eod=run["staleness"]["ticks_behind_after_run"],
        )
    write_report(result)

    policy1, policy2 = comparison["policy1"], comparison["policy2"]

    # Section 5.3 ordering at equal (k, m): Policy 2 refreshes with less
    # work under the exclusive lock, per section and at worst.
    assert policy2["downtime"]["mean_section_ops"] < policy1["downtime"]["mean_section_ops"]
    assert policy2["downtime"]["max_section_ops"] < policy1["downtime"]["max_section_ops"]

    # ... trading a bounded-k staleness: the run ends on a partial
    # refresh with no same-tick propagate, so Policy 2 is behind — but
    # by at most k ticks — while Policy 1's closing refresh_C leaves
    # the view fully current.
    assert 0 < policy2["staleness"]["ticks_behind_after_run"] <= comparison["config"]["k"]
    assert policy2["staleness"]["residual_entries_after_run"] > 0
    assert policy1["staleness"]["ticks_behind_after_run"] == 0

    # Staleness is measured in BOTH units at every refresh sample.
    for run in (policy1, policy2):
        assert run["staleness"]["samples"], run["policy"]
        for sample in run["staleness"]["samples"]:
            assert set(sample) == {"wall_s", "entries"}

    # The clocks only exist because observability was on; being on must
    # never move the deterministic cost signal.
    assert overhead["tuple_ops_identical"], overhead
