"""E10 — end-to-end retail warehouse throughput (Section 1.1 motivation).

The motivating application: point-of-sale insertions stream in
continuously, and "it may be necessary to minimize the per-transaction
overhead imposed by view maintenance".  We measure wall-clock
transaction throughput of the whole stack — parser-produced view,
manager, maintenance — under immediate vs deferred maintenance, and the
end-of-day refresh wall time.
"""

import time

from benchmarks.common import ExperimentResult, write_report
from repro.warehouse import ViewManager
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

TXNS = 400


def run_day(scenario_name: str):
    config = RetailConfig(customers=150, initial_sales=3000, txn_inserts=10, seed=7)
    workload = RetailWorkload(config)
    manager = ViewManager()
    manager.create_table("customer", ["custId", "name", "address", "score"])
    manager.create_table("sales", ["custId", "itemNo", "quantity", "salesPrice"])
    manager.load("customer", workload.customer_rows())
    manager.load("sales", workload.initial_sales_rows())
    manager.define_view("V", VIEW_SQL, scenario=scenario_name)

    transactions = [workload.next_transaction(manager.db) for __ in range(TXNS)]
    ops_before = manager.counter.tuples_out
    started = time.perf_counter()
    for txn in transactions:
        manager.execute(txn)
    txn_seconds = time.perf_counter() - started
    ops_per_txn = (manager.counter.tuples_out - ops_before) // TXNS

    started = time.perf_counter()
    manager.refresh("V")
    refresh_seconds = time.perf_counter() - started
    assert not manager.is_stale("V")
    return {
        "scenario": scenario_name,
        "txns_per_second": round(TXNS / txn_seconds, 1),
        "ops_per_txn": ops_per_txn,
        "refresh_wall_ms": round(refresh_seconds * 1000, 2),
        "final_view_rows": len(manager.query("V")),
    }


def run_experiment():
    return [run_day("immediate"), run_day("diff_table"), run_day("base_log"), run_day("combined")]


def test_e10_retail_end_to_end(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E10", f"end-to-end retail day: {TXNS} transactions, full stack")
    for row in rows:
        result.add(**row)
    write_report(result)

    by_name = {row["scenario"]: row for row in rows}
    # All scenarios converge to the same view contents.
    assert len({row["final_view_rows"] for row in rows}) == 1
    # Deferred log-based maintenance does a small fraction of the
    # per-transaction work of immediate maintenance (deterministic ops;
    # wall-clock ratios on the Python engine are reported but noisy).
    assert by_name["combined"]["ops_per_txn"] * 3 < by_name["immediate"]["ops_per_txn"]
    assert by_name["base_log"]["ops_per_txn"] * 3 < by_name["immediate"]["ops_per_txn"]
    assert by_name["diff_table"]["ops_per_txn"] > by_name["combined"]["ops_per_txn"]
