"""E18 — extension: group refresh vs per-view refresh.

Section 7 leaves open how refresh work should scale when many views are
maintained together.  The group-refresh subsystem answers with three
layers — net-effect log compaction, an epoch-scoped delta cache keyed by
subplan fingerprints, and a dependency-aware scheduler — and this
experiment measures the payoff on the retail workload:

* refresh tuple-ops for one group epoch should be (nearly) independent
  of the view count when views share structure: the epoch's work scales
  with the number of *distinct* view structures, not with the number of
  registered views;
* the per-view baseline (each view refreshed in turn, no sharing) scales
  linearly, so the reduction at 16 shared-structure views must be ≥ 2×,
  with the delta cache doing the sharing (``delta_cache_hits > 0``);
* compaction empties the shared log down to the net change, and the
  group result stays bag-equal to the per-view oracle.

``repro.bench.group_bench`` runs the same sweep under both engines and
writes ``BENCH_group.json``; this experiment pins the interpreted engine
like E1–E16 (see ``conftest.py``) and asserts the qualitative claims.
"""

from benchmarks.common import ExperimentResult, write_report
from repro.bench.group_bench import run_e18
from repro.exec import INTERPRETED

VIEW_COUNTS = (4, 8, 16)


def test_e18_group_refresh_scales_with_distinct_structures():
    result = ExperimentResult(
        "E18_group_refresh",
        description="per-view refresh vs one group epoch (interpreted engine)",
    )
    points = {}
    for views in VIEW_COUNTS:
        point = run_e18(INTERPRETED, views)
        points[views] = point
        result.add(
            views=views,
            per_view_ops=point["per_view"]["ops"],
            group_ops=point["group"]["ops"],
            reduction=point["tuple_op_reduction"],
            cache_hits=point["group"]["delta_cache_hits"],
            log_rows_before=point["group"]["log_rows_before"],
            log_rows_after=point["group"]["log_rows_after"],
        )
    write_report(result)

    sixteen = points[16]
    # The headline acceptance claim: >= 2x refresh tuple-op reduction for
    # 16 shared-structure views, driven by cross-view delta sharing.
    assert sixteen["tuple_op_reduction"] >= 2.0, sixteen
    assert sixteen["group"]["delta_cache_hits"] > 0, sixteen

    # The per-view baseline scales linearly with the view count ...
    assert points[16]["per_view"]["ops"] >= 3 * points[4]["per_view"]["ops"]
    # ... while the group epoch's work is independent of it (all sweep
    # points share the same four distinct view structures).
    assert points[16]["group"]["ops"] == points[4]["group"]["ops"]

    # Compaction drains the consumed log down to (at most) the net change.
    for point in points.values():
        assert point["group"]["log_rows_after"] <= point["group"]["log_rows_before"]
