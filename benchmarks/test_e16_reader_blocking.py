"""E16 — extension: reader blocking under refresh policies (future work 3).

Section 7 closes with "what are the problems related to concurrency
control in the presence of materialized views?"  Using the measured
lock-section volumes from E6's policies and the blocking simulation of
`repro.extensions.concurrency`, quantify how many readers each policy
actually delays over a simulated day.
"""

from benchmarks.common import ExperimentResult, drive_retail, retail_setup, write_report
from repro.core.policies import PeriodicRefresh, Policy1, Policy2
from repro.core.scenarios import BaseLogScenario, CombinedScenario
from repro.extensions.concurrency import BlockingSimulation

HORIZON = 24
TXNS_PER_TICK = 5
SECONDS_PER_TICK = 3600.0
OPS_PER_SECOND = 10.0  # 1996-scale executor; conclusions are ordering-only
READER_RATE = 0.2  # readers per simulated second (~17k over the day)


def run_policy(label, scenario_cls, policy):
    db, view, workload = retail_setup()
    scenario = scenario_cls(db, view)
    drive_retail(scenario, policy, workload, horizon=HORIZON, txns_per_tick=TXNS_PER_TICK)
    sections = BlockingSimulation.sections_from_ledger(
        scenario.ledger,
        view.mv_table,
        interval=SECONDS_PER_TICK,
        ops_per_second=OPS_PER_SECOND,
    )
    simulation = BlockingSimulation(
        reader_rate=READER_RATE, horizon=HORIZON * SECONDS_PER_TICK, seed=11
    )
    stats = simulation.run(sections)
    return {
        "policy": label,
        "readers": stats.readers,
        "blocked": stats.blocked,
        "max_wait_s": round(stats.max_wait(), 2),
        "total_wait_s": round(stats.total_wait(), 2),
    }


def run_experiment():
    return [
        run_policy("refresh_BL nightly", BaseLogScenario, PeriodicRefresh(m=HORIZON)),
        run_policy("Policy 1, k=1", CombinedScenario, Policy1(k=1, m=HORIZON)),
        run_policy("Policy 2, k=1", CombinedScenario, Policy2(k=1, m=HORIZON)),
    ]


def test_e16_reader_blocking(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E16", "readers blocked by refresh locks over one simulated day")
    for row in rows:
        result.add(**row)
    write_report(result)

    by_policy = {row["policy"]: row for row in rows}
    # Same reader stream everywhere.
    assert len({row["readers"] for row in rows}) == 1
    # The downtime ordering translates directly into reader impact.
    assert (
        by_policy["Policy 2, k=1"]["total_wait_s"]
        <= by_policy["Policy 1, k=1"]["total_wait_s"]
        <= by_policy["refresh_BL nightly"]["total_wait_s"]
    )
    assert by_policy["Policy 2, k=1"]["max_wait_s"] < by_policy["refresh_BL nightly"]["max_wait_s"]
