"""E12 — ablation: empty-delta folding in the differential rewrite.

DESIGN.md calls out the folding of statically-empty deltas as a design
choice: a user transaction's deltas are literal bags, so an insert-only
transaction has a *statically empty* delete side.  Figure 2 emitted
verbatim still carries the full delete-side structure (cross products
and selections over provably-empty operands); the folding collapses it,
leaving incremental queries proportional to what actually changed.

Both variants are correct; the ablation quantifies expression size and
evaluation cost for immediate/differential-table maintenance, where the
pre-update deltas are computed on **every** transaction.  The standalone
optimizer (`repro.algebra.rewrite.optimize`) recovers the reduction
after the fact.
"""

from benchmarks.common import ExperimentResult, retail_setup, write_report
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.rewrite import optimize
from repro.core.differential import differentiate
from repro.core.timetravel import transaction_substitution


def build():
    db, view, workload = retail_setup(initial_sales=1500, txn_inserts=20, delete_fraction=0.0)
    txn = workload.next_transaction(db).weakly_minimal()  # insert-only
    eta = transaction_substitution(txn, db)
    return db, view, eta


def measure(db, view, eta, *, fold: bool, post_optimize: bool):
    delete, insert = differentiate(eta, view.query, fold_empty=fold)
    if post_optimize:
        delete, insert = optimize(delete), optimize(insert)
    counter = CostCounter()
    memo = {}
    delete_value = evaluate(delete, db.state, counter=counter, memo=memo)
    insert_value = evaluate(insert, db.state, counter=counter, memo=memo)
    return {
        "expr_nodes": delete.size() + insert.size(),
        "eval_ops": counter.tuples_out,
        "delta_rows": len(delete_value) + len(insert_value),
        "values": (delete_value, insert_value),
    }


def run_experiment():
    db, view, eta = build()
    folded = measure(db, view, eta, fold=True, post_optimize=False)
    raw = measure(db, view, eta, fold=False, post_optimize=False)
    recovered = measure(db, view, eta, fold=False, post_optimize=True)
    rows = [
        {"variant": "Figure 2 verbatim (no folding)", **_public(raw)},
        {"variant": "with empty folding (default)", **_public(folded)},
        {"variant": "verbatim + optimizer pass", **_public(recovered)},
    ]
    # All three compute identical deltas.
    assert folded["values"] == raw["values"] == recovered["values"]
    return rows


def _public(measurement):
    return {key: value for key, value in measurement.items() if key != "values"}


def test_e12_folding_ablation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E12", "ablation: empty-delta folding, insert-only pre-update deltas")
    for row in rows:
        result.add(**row)
    write_report(result)

    by_variant = {row["variant"]: row for row in rows}
    raw = by_variant["Figure 2 verbatim (no folding)"]
    folded = by_variant["with empty folding (default)"]
    recovered = by_variant["verbatim + optimizer pass"]
    # Folding shrinks both the expression and the evaluation work.
    assert folded["expr_nodes"] < raw["expr_nodes"]
    assert folded["eval_ops"] < raw["eval_ops"] / 2
    # The standalone optimizer recovers an equivalent reduction.
    assert recovered["eval_ops"] <= folded["eval_ops"] * 1.2
