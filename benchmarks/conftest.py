"""Pin the E1–E16 experiments to the interpreted engine.

The experiments reproduce the *paper's* cost model: their assertions
(per-transaction overhead ratios, refresh-vs-recompute speedups, scaling
slopes) are statements about the algorithms of Figure 3 under a plain
scan/join executor, and several would change shape under the compiled
engine — e.g. index-probe joins make full recomputation nearly as cheap
as incremental maintenance on small bases, collapsing the E7 speedup the
paper predicts.  Running them interpreted keeps E1–E16 an apples-to-
apples reproduction and a stable oracle.

The compiled engine's own numbers are measured separately by
``repro.bench.exec_bench`` (see ``BENCH_exec.json``), which runs the E7
and E13 workloads under *both* engines and reports the system-level win.
"""

import os

import pytest

from repro.exec import ENV_VAR, INTERPRETED


@pytest.fixture(autouse=True)
def _interpreted_engine(monkeypatch):
    monkeypatch.setenv(ENV_VAR, INTERPRETED)


os.environ.setdefault(ENV_VAR, INTERPRETED)
