"""E4 — Theorem 5 / Lemma 4: the Figure 3 algorithms meet their specs.

Over random views and random transaction streams, check for every
scenario that (i) ``makesafe`` preserves the scenario invariant after
every transaction, (ii) ``refresh`` reestablishes ``Q ≡ MV``, and
(iii) the minimality invariants hold throughout.  ``propagate_C`` and
``partial_refresh_C`` are checked against their own Hoare triples.
"""

from benchmarks.common import ExperimentResult, write_report
from repro.core import invariants
from repro.core.scenarios import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
)
from repro.core.timetravel import past_query
from repro.core.views import ViewDefinition
from repro.workloads.randgen import RandomExpressionGenerator

SCENARIOS = [ImmediateScenario, BaseLogScenario, DiffTableScenario, CombinedScenario]
STREAMS = 12
TXNS_PER_STREAM = 4


def run_stream(scenario_cls, seed: int) -> dict:
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    view = ViewDefinition("V", generator.query(db, depth=3))
    scenario = scenario_cls(db, view)
    scenario.install()
    violations = 0
    checks = 0
    for step in range(TXNS_PER_STREAM):
        scenario.execute(generator.transaction(db, allow_over_delete=True))
        checks += 1
        violations += not scenario.invariant_holds()
        if scenario_cls is CombinedScenario and step == 1:
            scenario.propagate()
            checks += 2
            violations += not invariants.diff_table_invariant(db, view)
            violations += not scenario.log.is_empty()
            scenario.partial_refresh()
            checks += 1
            past = db.evaluate(past_query(view.query, scenario.log))
            violations += past != scenario.read_view()
    scenario.refresh()
    checks += 1
    violations += not scenario.is_consistent()
    return {"checks": checks, "violations": violations}


def run_all():
    rows = []
    for scenario_cls in SCENARIOS:
        checks = violations = 0
        for seed in range(STREAMS):
            outcome = run_stream(scenario_cls, seed)
            checks += outcome["checks"]
            violations += outcome["violations"]
        rows.append({"scenario": scenario_cls.tag, "hoare_checks": checks, "violations": violations})
    return rows


def test_e4_scenario_correctness(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    result = ExperimentResult(
        "E4", f"Theorem 5 over {STREAMS} random streams x {TXNS_PER_STREAM} txns per scenario"
    )
    for row in rows:
        result.add(**row)
    write_report(result)
    assert all(row["violations"] == 0 for row in rows)
