"""E22 — online serving: snapshot reads vs synchronous refresh-then-read.

The Section 5.3 downtime claim, restated for a serving system: with
Policy 2 running behind snapshot publication, the exclusive lock refresh
takes on ``MV`` is never on the read path, so **reader-observable**
downtime is exactly zero — proven by lock-section thread attribution,
not wall-clock overlap — while the synchronous ``read_fresh`` arm (the
pre-snapshot serving model) acquires it on every read.  In exchange the
served view is stale by at most ``k`` ticks at each partial refresh and
``k + m`` overall, and every served read digests bit-identically to an
interpreted-oracle twin fed the byte-identical seeded schedule.

Paper claims reproduced:

* Reader-observable exclusive-lock downtime: zero when serving from
  snapshots, nonzero on the synchronous arm.
* Staleness bounded by the configured ``(k, m)``: at most ``k`` at each
  partial refresh, at most ``k + m`` between refreshes.
* Snapshot reads are bit-identical to the interpreted oracle, including
  under real reader/worker concurrency (isolation violations = 0).
"""

from benchmarks.common import ExperimentResult, write_report
from repro.bench.serve_bench import run_concurrent_isolation, run_serving_comparison


def run_experiment():
    serving = run_serving_comparison(smoke=False, k=2, m=7)
    concurrent = run_concurrent_isolation(smoke=True, k=2, m=7)
    return serving, concurrent


def test_e22_serving(benchmark):
    serving, concurrent = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    result = ExperimentResult(
        "E22", "online serving: snapshot reads vs synchronous, Policy 2 at (k=2, m=7)"
    )
    result.add(
        arm="serving",
        reader_lock_sections=serving["serving"]["reader_observable"]["lock_sections"],
        reader_lock_ops=serving["serving"]["reader_observable"]["lock_ops"],
        p50_read_latency_s=serving["serving"]["latency_s"]["p50_s"],
        p99_read_latency_s=serving["serving"]["latency_s"]["p99_s"],
        max_staleness_ticks=serving["serving"]["staleness_ticks"]["max"],
        post_refresh_staleness=serving["serving"]["staleness_ticks"]["post_refresh_max"],
        digest_mismatches=serving["serving"]["digests"]["mismatches"],
    )
    result.add(
        arm="synchronous",
        reader_lock_sections=serving["synchronous"]["reader_observable"]["lock_sections"],
        reader_lock_ops=serving["synchronous"]["reader_observable"]["lock_ops"],
        p99_read_latency_s=serving["synchronous"]["latency_s"]["p99_s"],
    )
    result.add(
        arm="concurrent",
        threaded_reads=concurrent["latency_s"]["reads"],
        isolation_violations=concurrent["isolation_violations"],
        reader_lock_sections=concurrent["reader_lock_sections"],
        distinct_states_observed=concurrent["distinct_states_observed"],
    )
    write_report(result)

    # Reader-observable downtime: zero when serving, nonzero synchronous.
    assert serving["serving"]["reader_observable"]["lock_sections"] == 0
    assert serving["serving"]["reader_observable"]["lock_ops"] == 0
    assert serving["synchronous"]["reader_observable"]["lock_sections"] > 0
    assert serving["synchronous"]["reader_observable"]["lock_ops"] > 0

    # Correctness: every served read digested identically to the oracle.
    assert serving["serving"]["digests"]["mismatches"] == 0
    assert serving["serving"]["digests"]["matches"] > 0

    # Staleness stays within Policy 2's bounds, in both forms.
    staleness = serving["serving"]["staleness_ticks"]
    assert staleness["post_refresh_max"] <= staleness["bound_post_refresh"]
    assert staleness["max"] <= staleness["bound_overall"]
    for flag, value in serving["ordering"].items():
        assert value, flag

    # Latency is *reported* (SLO gating lives in the regression gate,
    # which compares against the pinned baseline with CI headroom).
    assert serving["serving"]["latency_s"]["reads"] > 0
    assert serving["serving"]["latency_s"]["p99_s"] >= serving["serving"]["latency_s"]["p50_s"]

    # Under real concurrency: no reader saw a state outside the
    # legitimate prefix-state set, and none acquired an exclusive lock.
    assert concurrent["isolation_violations"] == 0
    assert concurrent["reader_lock_sections"] == 0
    assert concurrent["latency_s"]["reads"] > 0
