"""E3 — Theorem 2: mechanical validation of the Figure 2 algorithm.

Over randomized queries (all seven core operators, depth ≤ 5) and
randomized weakly minimal substitutions, check

    (a)  η(Q) ≡ (Q ∸ Del(η,Q)) ⊎ Add(η,Q)
    (b)  Del(η,Q) ⊆ Q

and report how many instances of each top-level operator were covered.
The benchmark times differentiation + evaluation of one batch.
"""

from benchmarks.common import ExperimentResult, write_report
from repro.algebra.evaluation import evaluate
from repro.core.differential import differentiate
from repro.workloads.randgen import RandomExpressionGenerator

TRIALS = 150


def check_one(seed: int):
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    query = generator.query(db, depth=5)
    eta = generator.substitution(db, weakly_minimal=True)
    delete, insert = differentiate(eta, query)
    new_value = evaluate(eta.apply(query), db.state)
    old_value = evaluate(query, db.state)
    delete_value = evaluate(delete, db.state)
    insert_value = evaluate(insert, db.state)
    theorem_a = new_value == old_value.monus(delete_value).union_all(insert_value)
    theorem_b = delete_value.issubbag(old_value)
    return type(query).__name__, theorem_a, theorem_b


def run_batch():
    per_operator: dict[str, int] = {}
    failures_a = failures_b = 0
    for seed in range(TRIALS):
        operator, theorem_a, theorem_b = check_one(seed)
        per_operator[operator] = per_operator.get(operator, 0) + 1
        failures_a += not theorem_a
        failures_b += not theorem_b
    return per_operator, failures_a, failures_b


def test_e3_differential_correctness(benchmark):
    per_operator, failures_a, failures_b = benchmark.pedantic(run_batch, rounds=1, iterations=1)

    result = ExperimentResult("E3", f"Theorem 2 over {TRIALS} random (Q, η, s) instances")
    for operator, count in sorted(per_operator.items()):
        result.add(top_level_operator=operator, instances=count, a_failures=0, b_failures=0)
    result.add(top_level_operator="TOTAL", instances=TRIALS, a_failures=failures_a, b_failures=failures_b)
    write_report(result)

    assert failures_a == 0
    assert failures_b == 0
    # The generator must actually exercise operator diversity.
    assert len(per_operator) >= 5
