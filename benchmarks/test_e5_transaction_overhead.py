"""E5 — per-transaction overhead across maintenance scenarios.

Paper claims (Sections 3.2–3.5):

* immediate (IM) and differential-table (DT) maintenance pay the
  incremental-query evaluation on *every* transaction;
* base-log (BL) and combined (C) maintenance only record changes —
  overhead close to running the transaction with no views at all;
* Hanson-style suspended updates additionally slow down every *query*
  against base tables.

We measure tuple-ops per transaction over a retail day, plus the
base-table query slowdown for Hanson.
"""

from benchmarks.common import ExperimentResult, drive_retail, retail_setup, write_report
from repro.baselines.hanson import HansonDifferentialFiles
from repro.baselines.recompute import RecomputeScenario
from repro.core.policies import OnDemandPolicy
from repro.core.scenarios import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
)

HORIZON = 24
TXNS_PER_TICK = 5


def measure_scenario(scenario_cls):
    db, view, workload = retail_setup()
    scenario = scenario_cls(db, view)
    driver = drive_retail(scenario, OnDemandPolicy(), workload, horizon=HORIZON, txns_per_tick=TXNS_PER_TICK)
    stats = driver.stats
    base_query_ratio = 1.0
    return {
        "scenario": scenario.tag,
        "txns": stats.transactions,
        "ops_per_txn": stats.transaction_cost // stats.transactions,
        "base_query_slowdown": round(base_query_ratio, 2),
    }


def measure_hanson():
    db, view, workload = retail_setup()
    system = HansonDifferentialFiles(db, view)
    system.install()
    count = 0
    cost_before = system.counter.tuples_out
    for txn in workload.transactions(db, HORIZON * TXNS_PER_TICK):
        system.execute(txn)
        count += 1
    per_txn = (system.counter.tuples_out - cost_before) // count
    return {
        "scenario": system.tag,
        "txns": count,
        "ops_per_txn": per_txn,
        "base_query_slowdown": round(system.query_cost_ratio("sales"), 2),
    }


def run_experiment():
    rows = [measure_scenario(cls) for cls in
            (RecomputeScenario, ImmediateScenario, BaseLogScenario, DiffTableScenario, CombinedScenario)]
    rows.append(measure_hanson())
    return rows


def test_e5_transaction_overhead(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E5", "per-transaction maintenance overhead (tuple ops), retail day")
    for row in rows:
        result.add(**row)
    write_report(result)

    by_tag = {row["scenario"]: row for row in rows}
    # Log-only scenarios are within a small factor of no-maintenance...
    assert by_tag["BL"]["ops_per_txn"] < 3 * by_tag["RC"]["ops_per_txn"]
    assert by_tag["C"]["ops_per_txn"] == by_tag["BL"]["ops_per_txn"]
    # ...while incremental-query-per-transaction scenarios pay much more.
    assert by_tag["IM"]["ops_per_txn"] > 5 * by_tag["BL"]["ops_per_txn"]
    assert by_tag["DT"]["ops_per_txn"] > 5 * by_tag["BL"]["ops_per_txn"]
    # Hanson's per-transaction cost is log-like, but base-table queries slow down.
    assert by_tag["HAN"]["base_query_slowdown"] > 1.0
    assert by_tag["BL"]["base_query_slowdown"] == 1.0
