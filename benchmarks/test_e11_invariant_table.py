"""E11 — Figure 1, mechanically: the invariant table under fault injection.

For each scenario we verify that (i) its own invariant holds in every
state reachable by ``makesafe``-extended transactions, and (ii) the
invariant *detects* corruption: injected faults (dropped log entries,
cleared differentials, corrupted MV) flip the check to false.  This
validates that the invariants are exactly the consistency statements
Figure 1 claims, not vacuous formulas.
"""

from benchmarks.common import ExperimentResult, write_report
from repro.algebra.bag import Bag
from repro.core.scenarios import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
)
from repro.core.views import ViewDefinition
from repro.workloads.randgen import RandomExpressionGenerator

SCENARIOS = [ImmediateScenario, BaseLogScenario, DiffTableScenario, CombinedScenario]
STREAMS = 8
TXNS = 4



def drop_log_entry(db, scenario):
    """Drop recorded insertions — but only count it as a fault when the
    drop actually changes ``PAST(L, Q)`` (an entry the view filters out
    is not semantic corruption, and the invariant rightly ignores it)."""
    from repro.core import naming
    from repro.core.timetravel import past_query

    past = past_query(scenario.view.query, scenario.log)
    before = db.evaluate(past)
    for table in scenario.log.tables:
        name = naming.log_insert_name(scenario.view.name, table)
        if db[name]:
            dropped = db[name]
            db.set_table(name, Bag.empty())
            if db.evaluate(past) != before:
                return True
            db.set_table(name, dropped)  # semantically invisible: revert
    return False


def clear_differentials(db, scenario):
    if db[scenario.view.dt_insert_table] or db[scenario.view.dt_delete_table]:
        db.set_table(scenario.view.dt_insert_table, Bag.empty())
        db.set_table(scenario.view.dt_delete_table, Bag.empty())
        return True
    return False


def run_scenario(scenario_cls):
    holds = 0
    checks = 0
    detected = 0
    injected = 0
    for seed in range(STREAMS):
        generator = RandomExpressionGenerator(seed)
        db = generator.database()
        scenario = scenario_cls(db, ViewDefinition("V", generator.query(db, depth=3)))
        scenario.install()
        for __ in range(TXNS):
            scenario.execute(generator.transaction(db, allow_over_delete=True))
            checks += 1
            holds += scenario.invariant_holds()
        if scenario_cls is CombinedScenario:
            scenario.propagate()
            checks += 1
            holds += scenario.invariant_holds()
        # Fault injection: corrupt MV (always possible).
        snap = db.snapshot()
        mv = db[scenario.view.mv_table]
        db.set_table(scenario.view.mv_table, mv.union_all(mv) if mv else Bag([(0,) * scenario.view.schema.arity]))
        injected += 1
        detected += not scenario.invariant_holds()
        db.restore(snap)
        # Scenario-specific faults.
        if scenario_cls in (BaseLogScenario, CombinedScenario):
            snap = db.snapshot()
            if drop_log_entry(db, scenario):
                injected += 1
                detected += not scenario.invariant_holds()
            db.restore(snap)
        if scenario_cls in (DiffTableScenario, CombinedScenario):
            snap = db.snapshot()
            if clear_differentials(db, scenario):
                injected += 1
                detected += not scenario.invariant_holds()
            db.restore(snap)
    return {
        "scenario": scenario_cls.tag,
        "reachable_states_ok": f"{holds}/{checks}",
        "faults_detected": f"{detected}/{injected}",
        "_ok": holds == checks,
        "_all_detected": detected == injected,
    }


def run_experiment():
    return [run_scenario(cls) for cls in SCENARIOS]


def test_e11_invariant_table(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E11", "Figure 1 invariants: reachable states + fault injection")
    for row in rows:
        result.add(**{key: value for key, value in row.items() if not key.startswith("_")})
    write_report(result)
    assert all(row["_ok"] for row in rows)
    assert all(row["_all_detected"] for row in rows)
