"""E14 — extension: incremental aggregate-view maintenance.

Example 1.1's footnote: "In practice, views with aggregation are more
likely."  The extension maintains COUNT/SUM views from the base query's
differential tables; this experiment verifies that (i) the incremental
aggregates exactly match recomputation across a retail day, and
(ii) aggregate refresh work is delta-proportional while recomputation
scales with the base-view size.
"""

from benchmarks.common import ExperimentResult, retail_setup, write_report
from repro.algebra.evaluation import CostCounter
from repro.extensions.aggregates import AggregateScenario, AggregateSpec, AggregateView
from repro.sqlfront import sql_to_view

BASE_SQL = """
CREATE VIEW hv AS
SELECT c.custId, s.quantity FROM customer c, sales s
WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'
"""


def build(initial_sales: int):
    db, __, workload = retail_setup(initial_sales=initial_sales, txn_inserts=10)
    base = sql_to_view(BASE_SQL, db)
    view = AggregateView(
        "qty_by_customer",
        base,
        group_by=("custId",),
        aggregates=(AggregateSpec("count"), AggregateSpec("sum", "quantity")),
    )
    scenario = AggregateScenario(db, view)
    scenario.install()
    return db, workload, scenario


def measure(initial_sales: int, txns: int):
    db, workload, scenario = build(initial_sales)
    for txn in workload.transactions(db, txns):
        scenario.execute(txn)
    scenario.propagate()
    before = scenario.counter.tuples_out
    scenario.partial_refresh()
    incremental_ops = scenario.counter.tuples_out - before

    probe = CostCounter()
    recompute_value = db.evaluate(scenario.view.base.query, counter=probe)
    recompute_ops = probe.tuples_out  # recomputation must rebuild the base join

    consistent = scenario.is_consistent()
    return {
        "base_rows": initial_sales,
        "txns": txns,
        "incremental_ops": incremental_ops,
        "recompute_ops": recompute_ops,
        "speedup": round(recompute_ops / max(incremental_ops, 1), 1),
        "exact": consistent,
    }


def run_experiment():
    return [
        measure(initial_sales=500, txns=5),
        measure(initial_sales=2000, txns=5),
        measure(initial_sales=8000, txns=5),
    ]


def test_e14_aggregate_views(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = ExperimentResult("E14", "aggregate views: incremental refresh vs recomputation")
    for row in rows:
        result.add(**row)
    write_report(result)

    # Exact at every scale.
    assert all(row["exact"] for row in rows)
    # Recomputation grows with base size; incremental work does not.
    incremental = [row["incremental_ops"] for row in rows]
    recompute = [row["recompute_ops"] for row in rows]
    assert recompute[-1] > 8 * recompute[0]
    assert incremental[-1] < incremental[0] * 3
    assert rows[-1]["speedup"] > rows[0]["speedup"]
