"""Unit tests for the Hanson-style suspended-updates baseline."""

from repro.algebra.bag import Bag
from repro.baselines.hanson import HansonDifferentialFiles
from repro.core.transactions import UserTransaction
from repro.sqlfront import sql_to_view
from repro.storage.database import Database


def make_system():
    db = Database()
    db.create_table("R", ["a", "b"], rows=[(1, 1), (2, 2)])
    db.create_table("S", ["b", "c"], rows=[(1, 10), (2, 20)])
    view = sql_to_view(
        "CREATE VIEW V (a, c) AS SELECT r.a, s.c FROM R r, S s WHERE r.b = s.b", db
    )
    system = HansonDifferentialFiles(db, view)
    system.install()
    return db, view, system


class TestInstall:
    def test_splits_tables(self):
        db, __, __sys = make_system()
        for name in ("__han_base__R", "__han_del__R", "__han_ins__R"):
            assert db.has_table(name)
            assert db.is_internal(name)

    def test_mv_materialized_from_bases(self):
        db, view, system = make_system()
        assert system.read_view() == Bag([(1, 10), (2, 20)])

    def test_install_idempotent(self):
        __, __view, system = make_system()
        system.install()


class TestVirtualTables:
    def test_virtual_reflects_suspended_updates(self):
        db, __, system = make_system()
        system.execute(UserTransaction(db).insert("R", [(3, 1)]).delete("R", [(2, 2)]))
        assert system.read_table("R") == Bag([(1, 1), (3, 1)])
        # The stored base is untouched.
        assert db["__han_base__R"] == Bag([(1, 1), (2, 2)])

    def test_real_table_stays_in_sync(self):
        db, __, system = make_system()
        system.execute(UserTransaction(db).insert("R", [(3, 1)]))
        assert db["R"] == system.read_table("R")

    def test_query_cost_ratio_exceeds_one_after_updates(self):
        db, __, system = make_system()
        system.execute(UserTransaction(db).insert("R", [(3, 1), (4, 1)]))
        assert system.query_cost_ratio("R") > 1.0


class TestRefresh:
    def test_refresh_applies_suspended_updates(self):
        db, view, system = make_system()
        system.execute(UserTransaction(db).insert("R", [(3, 1)]).delete("S", [(2, 20)]))
        assert not system.is_consistent()
        system.refresh()
        assert system.is_consistent()
        assert system.read_view() == db.evaluate(view.query)

    def test_refresh_absorbs_into_base(self):
        db, __, system = make_system()
        system.execute(UserTransaction(db).insert("R", [(3, 1)]))
        system.refresh()
        assert db["__han_base__R"] == db["R"]
        assert db["__han_del__R"] == Bag.empty()
        assert db["__han_ins__R"] == Bag.empty()

    def test_multiple_rounds(self):
        db, view, system = make_system()
        for step in range(3):
            system.execute(UserTransaction(db).insert("R", [(10 + step, 1)]))
            system.refresh()
            assert system.is_consistent()

    def test_churn_handled(self):
        db, view, system = make_system()
        system.execute(UserTransaction(db).delete("R", [(1, 1)]).insert("R", [(1, 1)]))
        system.refresh()
        assert system.is_consistent()

    def test_refresh_takes_lock(self):
        db, view, system = make_system()
        system.refresh()
        assert system.ledger.section_count(view.mv_table) == 1

    def test_self_join_view_correct(self):
        # Hanson's approach is immune to the state bug even on self-joins,
        # because the pre-update state is physically available.
        db = Database()
        db.create_table("T", ["a", "b"], rows=[(1, 1)])
        view = sql_to_view(
            "CREATE VIEW W (x, y) AS SELECT t1.a, t2.a FROM T t1, T t2 WHERE t1.b = t2.b", db
        )
        system = HansonDifferentialFiles(db, view)
        system.install()
        system.execute(UserTransaction(db).insert("T", [(2, 1)]))
        system.refresh()
        assert system.is_consistent()
        assert len(system.read_view()) == 4
