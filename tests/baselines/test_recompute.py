"""Unit tests for the full-recompute baseline."""

from repro.baselines.recompute import RecomputeScenario
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.storage.database import Database


def make_scenario():
    db = Database()
    db.create_table("R", ["a"], rows=[(1,), (2,)])
    scenario = RecomputeScenario(db, ViewDefinition("V", db.ref("R")))
    scenario.install()
    return scenario


class TestRecompute:
    def test_no_auxiliary_tables(self):
        scenario = make_scenario()
        assert scenario.db.internal_tables() == ("__mv__V",)

    def test_transactions_add_no_maintenance_work(self):
        scenario = make_scenario()
        txn = UserTransaction(scenario.db).insert("R", [(9,)])
        plan = scenario.make_safe(txn)
        assert plan.tables() == {"R"}

    def test_view_goes_stale(self):
        scenario = make_scenario()
        scenario.execute(UserTransaction(scenario.db).insert("R", [(9,)]))
        assert not scenario.is_consistent()

    def test_refresh_recomputes(self):
        scenario = make_scenario()
        scenario.execute(UserTransaction(scenario.db).insert("R", [(9,)]).delete("R", [(1,)]))
        scenario.refresh()
        assert scenario.is_consistent()

    def test_refresh_takes_lock(self):
        scenario = make_scenario()
        scenario.refresh()
        assert scenario.ledger.section_count("__mv__V") == 1

    def test_invariant_is_vacuous(self):
        scenario = make_scenario()
        scenario.execute(UserTransaction(scenario.db).insert("R", [(9,)]))
        assert scenario.invariant_holds()
