"""The state bug (Section 1.2) and Remark 1's restricted class."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.expr import Monus
from repro.baselines.preupdate_bug import buggy_post_update_delta, buggy_post_update_refresh
from repro.core.differential import post_update_delta
from repro.core.scenarios import BaseLogScenario
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.workloads.randgen import RandomExpressionGenerator


def example_1_2():
    """The join view of Example 1.2 (duplicate semantics)."""
    db = Database()
    db.create_table("R", ["A", "B"], rows=[("a1", "b1")])
    db.create_table("S", ["B", "C"], rows=[("b1", "c1")])
    view = sql_to_view("CREATE VIEW U (A) AS SELECT r.A FROM R r, S s WHERE r.B = s.B", db)
    scenario = BaseLogScenario(db, view)
    scenario.install()
    txn = UserTransaction(db).insert("R", [("a1", "b2")]).insert("S", [("b2", "c2")])
    scenario.execute(txn)
    return db, view, scenario


def example_1_3():
    """The monus view of Example 1.3."""
    db = Database()
    db.create_table("R", ["x"], rows=[("a",), ("b",), ("c",)])
    db.create_table("S", ["x"], rows=[("c",), ("d",)])
    view = ViewDefinition("U", Monus(db.ref("R"), db.ref("S")))
    scenario = BaseLogScenario(db, view)
    scenario.install()
    txn = UserTransaction(db).delete("R", [("b",)]).insert("S", [("b",)])
    scenario.execute(txn)
    return db, view, scenario


class TestExample12:
    """State bug on a join with duplicates: wrong multiplicities."""

    def test_correct_algorithm_is_exact(self):
        db, view, scenario = example_1_2()
        scenario.refresh()
        assert db[view.mv_table] == db.evaluate(view.query)
        # (a1,b2) joins both (b2,c2); (a1,b1) joins (b1,c1).
        assert db[view.mv_table] == Bag([("a1",), ("a1",)])

    def test_buggy_algorithm_overcounts(self):
        db, view, scenario = example_1_2()
        buggy = buggy_post_update_refresh(scenario.log, db, view.query, view.mv_table)
        correct = db.evaluate(view.query)
        assert buggy != correct
        # The ΔR ⋈ ΔS term is double counted post-update.
        assert buggy.multiplicity(("a1",)) > correct.multiplicity(("a1",))


class TestExample13:
    """State bug on monus: a deleted tuple survives."""

    def test_correct_algorithm_removes_b(self):
        db, view, scenario = example_1_3()
        scenario.refresh()
        assert db[view.mv_table] == Bag([("a",)])

    def test_buggy_algorithm_keeps_b(self):
        db, view, scenario = example_1_3()
        buggy = buggy_post_update_refresh(scenario.log, db, view.query, view.mv_table)
        assert ("b",) in buggy  # the incorrect tuple survives
        assert buggy == Bag([("a",), ("b",)])

    def test_buggy_delete_bag_is_empty(self):
        db, view, scenario = example_1_3()
        delete, __ = buggy_post_update_delta(scenario.log, db, view.query)
        assert db.evaluate(delete) == Bag.empty()


def _deltas_agree(db, view, scenario):
    correct_delete, correct_insert = post_update_delta(scenario.log, view.query)
    buggy_delete, buggy_insert = buggy_post_update_delta(scenario.log, db, view.query)
    mv = db[view.mv_table]
    correct = mv.monus(db.evaluate(correct_delete)).union_all(db.evaluate(correct_insert))
    buggy = mv.monus(db.evaluate(buggy_delete)).union_all(db.evaluate(buggy_insert))
    return correct == buggy


class TestRemark1:
    """Pre- and post-update algorithms coincide exactly on the
    restricted class: SPJ views without self-joins, single-table
    insert-only updates — and diverge once the restrictions are relaxed."""

    @pytest.mark.parametrize("seed", range(15))
    def test_restricted_class_agrees(self, seed):
        generator = RandomExpressionGenerator(seed)
        db = Database()
        db.create_table("R", ["a", "b"], rows=[generator.row(2) for __ in range(6)])
        db.create_table("S", ["b", "c"], rows=[generator.row(2) for __ in range(6)])
        view = sql_to_view(
            "CREATE VIEW U (a, c) AS SELECT r.a, s.c FROM R r, S s WHERE r.b = s.b",
            db,
        )
        scenario = BaseLogScenario(db, view)
        scenario.install()
        # single-table, insert-only transaction
        txn = UserTransaction(db).insert("R", [generator.row(2) for __ in range(3)])
        scenario.execute(txn)
        assert _deltas_agree(db, view, scenario)

    def test_multi_table_update_diverges(self):
        db, view, scenario = example_1_2()
        assert not _deltas_agree(db, view, scenario)

    def test_monus_view_diverges(self):
        db, view, scenario = example_1_3()
        assert not _deltas_agree(db, view, scenario)

    def test_self_join_diverges(self):
        db = Database()
        db.create_table("R", ["a", "b"], rows=[(1, 1)])
        view = sql_to_view(
            "CREATE VIEW U (x, y) AS SELECT r1.a, r2.a FROM R r1, R r2 WHERE r1.b = r2.b",
            db,
        )
        scenario = BaseLogScenario(db, view)
        scenario.install()
        scenario.execute(UserTransaction(db).insert("R", [(2, 1)]))
        assert not _deltas_agree(db, view, scenario)
