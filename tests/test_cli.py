"""Unit tests for the warehouse shell."""

import pytest

from repro.cli import WarehouseShell


@pytest.fixture
def shell():
    sh = WarehouseShell()
    sh.handle_line("CREATE TABLE t (a, b);")
    sh.handle_line("INSERT INTO t VALUES (1, 'x'), (2, 'y');")
    return sh


class TestSQL:
    def test_create_table(self):
        sh = WarehouseShell()
        assert "created" in sh.handle_line("CREATE TABLE t (a, b);")
        assert sh.manager.db.has_table("t")

    def test_insert_and_select(self, shell):
        output = shell.handle_line("SELECT a FROM t;")
        assert "2 rows" in output
        assert "1" in output

    def test_empty_result(self, shell):
        output = shell.handle_line("SELECT a FROM t WHERE a > 99;")
        assert output == "(empty)"

    def test_delete(self, shell):
        shell.handle_line("DELETE FROM t WHERE a = 1;")
        assert "1 row" in shell.handle_line("SELECT a FROM t;")

    def test_multiline_statement(self, shell):
        assert shell.handle_line("SELECT a") == ""
        assert shell.pending
        output = shell.handle_line("FROM t;")
        assert "2 rows" in output
        assert not shell.pending

    def test_create_view_and_maintenance(self, shell):
        assert "materialized" in shell.handle_line("CREATE VIEW V AS SELECT a FROM t;")
        shell.handle_line("INSERT INTO t VALUES (3, 'z');")
        assert shell.handle_line(".stale V") == "stale"
        assert "refreshed" in shell.handle_line(".refresh V")
        assert shell.handle_line(".stale V") == "fresh"

    def test_parse_error_reported(self, shell):
        output = shell.handle_line("SELEKT nope;")
        assert output.startswith("error:")

    def test_semantic_error_reported(self, shell):
        output = shell.handle_line("SELECT nope FROM t;")
        assert output.startswith("error:")

    def test_blank_lines_ignored(self, shell):
        assert shell.handle_line("") == ""
        assert shell.handle_line("   ") == ""


class TestDotCommands:
    def test_tables(self, shell):
        output = shell.handle_line(".tables")
        assert "t" in output
        assert "external" in output

    def test_views_empty(self, shell):
        assert shell.handle_line(".views") == "(no views)"

    def test_views_listing(self, shell):
        shell.handle_line("CREATE VIEW V AS SELECT a FROM t;")
        output = shell.handle_line(".views")
        assert "V" in output
        assert "C" in output  # combined scenario tag

    def test_scenario_switch(self, shell):
        assert "immediate" in shell.handle_line(".scenario immediate")
        shell.handle_line("CREATE VIEW V AS SELECT a FROM t;")
        shell.handle_line("INSERT INTO t VALUES (9, 'q');")
        assert shell.handle_line(".stale V") == "fresh"  # immediate: never stale

    def test_unknown_scenario(self, shell):
        assert "unknown scenario" in shell.handle_line(".scenario bogus")

    def test_propagate(self, shell):
        shell.handle_line("CREATE VIEW V AS SELECT a FROM t;")
        shell.handle_line("INSERT INTO t VALUES (9, 'q');")
        assert "propagated" in shell.handle_line(".propagate V")

    def test_stats(self, shell):
        shell.handle_line("CREATE VIEW V AS SELECT a FROM t;")
        output = shell.handle_line(".stats")
        assert "tuple ops" in output
        assert "view V" in output

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.handle_line(".bogus")

    def test_wrong_arguments(self, shell):
        assert "wrong arguments" in shell.handle_line(".refresh")

    def test_help(self, shell):
        assert ".save" in shell.handle_line(".help")

    def test_quit_raises_eof(self, shell):
        with pytest.raises(EOFError):
            shell.handle_line(".quit")

    def test_save_and_open(self, shell, tmp_path):
        path = tmp_path / "wh.db"
        assert "saved" in shell.handle_line(f".save {path}")
        fresh = WarehouseShell()
        assert "opened" in fresh.handle_line(f".open {path}")
        assert "2 rows" in fresh.handle_line("SELECT a FROM t;")

    def test_save_and_open_reattaches_views(self, shell, tmp_path):
        shell.handle_line("CREATE VIEW V AS SELECT a FROM t;")
        shell.handle_line("INSERT INTO t VALUES (3, 'z');")
        path = tmp_path / "wh.db"
        shell.handle_line(f".save {path}")
        fresh = WarehouseShell()
        out = fresh.handle_line(f".open {path}")
        assert "1 views reattached" in out
        assert fresh.handle_line(".stale V") == "stale"  # deferral survived
        fresh.handle_line(".refresh V")
        assert "3 rows" in fresh.handle_line("SELECT a FROM V;")

    def test_error_in_command_reported(self, shell):
        assert shell.handle_line(".refresh nope").startswith("error:")

    def test_plan_shows_log_deltas(self, shell):
        shell.handle_line("CREATE VIEW V AS SELECT a FROM t WHERE a > 0;")
        output = shell.handle_line(".plan V")
        assert "▼(L,Q)" in output
        assert "__log_del__V__t" in output

    def test_plan_for_immediate_view(self, shell):
        shell.handle_line(".scenario immediate")
        shell.handle_line("CREATE VIEW V AS SELECT a FROM t;")
        assert "no log-based refresh plan" in shell.handle_line(".plan V")

    def test_analyze_select_project_view(self, shell):
        shell.handle_line("CREATE VIEW V AS SELECT a FROM t WHERE a > 0;")
        output = shell.handle_line(".analyze V")
        assert "self-maintainable    : yes" in output
        assert "log only" in output

    def test_analyze_join_view(self, shell):
        shell.handle_line("CREATE TABLE u (a, c);")
        shell.handle_line("CREATE VIEW J AS SELECT t.b, u.c FROM t, u WHERE t.a = u.a;")
        output = shell.handle_line(".analyze J")
        assert "self-maintainable    : no" in output
        assert "'t'" in output and "'u'" in output


class TestScriptMode:
    def test_main_runs_script(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "setup.sql"
        script.write_text(
            "CREATE TABLE t (a);\n"
            "INSERT INTO t VALUES (1), (2);\n"
            "CREATE VIEW V AS SELECT a FROM t;\n"
            "INSERT INTO t VALUES (3);\n"
            ".refresh V\n"
            "SELECT a FROM V;\n"
        )
        assert main([str(script)]) == 0
        captured = capsys.readouterr().out
        assert "3 rows" in captured

    def test_run_stream_stops_on_quit(self, capsys):
        from repro.cli import run_stream
        import sys

        shell = WarehouseShell()
        run_stream(shell, ["CREATE TABLE t (a);", ".quit", "SELECT a FROM t;"], sys.stdout)
        captured = capsys.readouterr().out
        assert "created" in captured
        assert "row" not in captured  # nothing after .quit
