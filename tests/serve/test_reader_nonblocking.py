"""Readers never acquire view exclusive locks — proven by attribution.

The paper's downtime metric is the exclusive-lock window refresh holds
on ``MV``.  The serving claim is that readers are *never in* that
window.  Wall-clock overlap tests for this are inherently flaky, so the
proof here is deterministic: every :class:`~repro.storage.locks.LockSection`
records the thread that held it, and after hammering the server with
reader threads concurrent to a maintenance worker, **zero** sections may
be attributed to a reader thread.  The lockset sanitizer cross-checks
that the maintenance path itself stayed clean.
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.robustness.journal import bag_digest

from tests.serve.conftest import build_server

READERS = 6
TICKS = 12


def _hammer(server, workload, *, readers: int = READERS, ticks: int = TICKS):
    """Ticks the server while reader threads read continuously."""
    stop = threading.Event()
    reads = []
    errors = []

    def _reader(index: int) -> None:
        count = 0
        try:
            while not stop.is_set():
                if count % 7 == 6:
                    with server.pin() as handle:
                        first = server.read_at(handle, "V")
                        second = server.read_at(handle, "V")
                        assert first is second
                else:
                    server.read("V")
                count += 1
                time.sleep(0.0002)  # think time: don't starve the writer's GIL slice
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)
        reads.append(count)

    threads = [
        threading.Thread(target=_reader, args=(i,), name=f"reader-{i}", daemon=True)
        for i in range(readers)
    ]
    for thread in threads:
        thread.start()
    try:
        for _ in range(ticks):
            server.tick([workload.next_transaction(server.db)])
        assert server.wait_idle()
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
    assert not errors, errors
    return sum(reads)


def test_readers_acquire_zero_exclusive_lock_sections():
    server, workload = build_server(k=1, m=3)
    server.start_workers(1)
    try:
        total_reads = _hammer(server, workload)
    finally:
        server.stop_workers()

    # Maintenance ran and took exclusive sections -- on worker threads.
    maintenance = server.ledger.sections_for_thread("maintenance-worker")
    assert server.actions_run > 0
    assert maintenance, "maintenance must have held the MV exclusive lock"
    # The deterministic nonblocking proof: no section is attributed to
    # any reader thread, ever.
    assert server.reader_lock_sections("reader") == 0
    assert "reader" not in {
        name.split("-")[0] for name in server.ledger.acquiring_threads()
    }
    assert total_reads > 0


def test_reader_threads_absent_from_ledger_even_synchronously():
    """Without a pool, maintenance runs on the ticking thread -- still not readers."""
    server, workload = build_server(k=1, m=2)
    total_reads = _hammer(server, workload, readers=3, ticks=8)
    assert total_reads > 0
    assert server.reader_lock_sections("reader") == 0


def test_sanitizer_clean_over_serving_stack():
    """The lockset sanitizer finds nothing to report on the serving path."""
    server, workload = build_server(k=1, m=3)
    with obs.observed(tracer=False, metrics=False, accounting=False, sanitizer=True) as stack:
        server.start_workers(2)
        try:
            _hammer(server, workload, readers=4, ticks=8)
        finally:
            server.stop_workers()
        findings = list(stack.sanitizer.findings)
    assert findings == []


def test_read_fresh_is_the_counterexample():
    """The synchronous path DOES attribute lock sections to its caller."""
    server, workload = build_server(k=2, m=4)
    server.tick([workload.next_transaction(server.db)])
    result = {}

    def _sync_reader() -> None:
        result["digest"] = bag_digest(server.read_fresh("V"))

    thread = threading.Thread(target=_sync_reader, name="reader-sync", daemon=True)
    thread.start()
    thread.join(timeout=10.0)
    assert server.reader_lock_sections("reader-sync") > 0
    assert result["digest"] == bag_digest(server.read("V"))
