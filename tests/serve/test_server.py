"""ViewServer behavior: publication, clocks, durability, async, workers."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.policies import PeriodicRefresh, Policy1
from repro.errors import PolicyError, UnknownTableError
from repro.robustness.journal import bag_digest
from repro.serve import ServeConfig, ViewServer

from tests.serve.conftest import build_server


class TestPublication:
    def test_every_tick_publishes_a_new_snapshot(self):
        server, workload = build_server()
        first = server.current.snapshot_id
        server.tick([workload.next_transaction(server.db)])
        assert server.current.snapshot_id > first

    def test_maintenance_actions_publish_individually(self):
        """Readers see propagate and refresh as distinct snapshot versions."""
        server, workload = build_server(k=1, m=2)
        server.tick([workload.next_transaction(server.db)])
        after_tick_1 = server.current.snapshot_id
        # Tick 2 queues propagate AND partial_refresh; each action plus the
        # tick itself must publish, so the id advances by at least 3.
        server.tick([workload.next_transaction(server.db)])
        assert server.current.snapshot_id >= after_tick_1 + 3

    def test_pinned_snapshot_is_stable_across_writes(self):
        server, workload = build_server()
        with server.pin() as handle:
            before = bag_digest(server.read_at(handle, "V"))
            for _ in range(6):
                server.tick([workload.next_transaction(server.db)])
            assert bag_digest(server.read_at(handle, "V")) == before

    def test_superseded_snapshots_are_collected(self):
        server, workload = build_server()
        for _ in range(8):
            server.tick([workload.next_transaction(server.db)])
        stats = server.registry.stats()
        assert stats["live"] == 1  # only the served current cut
        assert stats["collected_total"] > 0

    def test_read_unknown_view_raises(self):
        server, _ = build_server()
        with pytest.raises(UnknownTableError):
            server.read("nope")
        with pytest.raises(UnknownTableError):
            server.staleness_ticks("nope")


class TestClocks:
    def test_staleness_follows_policy2_cadence(self):
        """mv_reflects/dt_reflects mirror MaintenanceDriver semantics."""
        server, workload = build_server(k=2, m=5)
        observed = {}
        for _ in range(10):
            server.tick([workload.next_transaction(server.db)])
            observed[server.now] = server.staleness_ticks("V")
        # Ticks 1..4: nothing has moved mv_reflects, staleness grows.
        assert observed[1] == 1 and observed[4] == 4
        # Tick 5: partial_refresh installs the delta table absorbed at the
        # tick-4 propagate, so the view reflects tick 4 -> staleness 1.
        assert observed[5] == 1
        # Tick 10: propagate and partial_refresh are both due; the fresh
        # propagate runs first, so the refresh absorbs tick 10 itself.
        assert observed[10] == 0

    def test_snapshot_reflects_stamp_tracks_mv(self):
        server, workload = build_server(k=2, m=5)
        for _ in range(5):
            server.tick([workload.next_transaction(server.db)])
        assert server.current.tick == 5
        assert server.current.reflects == 4  # partial_refresh absorbed tick 4

    def test_read_fresh_resets_staleness(self):
        server, workload = build_server(k=3, m=9)
        for _ in range(2):
            server.tick([workload.next_transaction(server.db)])
        assert server.staleness_ticks("V") == 2
        fresh = server.read_fresh("V")
        assert server.staleness_ticks("V") == 0
        assert bag_digest(server.read("V")) == bag_digest(fresh)

    def test_policy_override(self):
        server, workload = build_server(policy=PeriodicRefresh(m=1))
        for _ in range(3):
            ran = server.tick([workload.next_transaction(server.db)])
            assert ran == [("V", "refresh")]
            assert server.staleness_ticks("V") == 0

    def test_policy1_refresh_resets_both_clocks(self):
        server, workload = build_server(policy=Policy1(k=2, m=4))
        for _ in range(4):
            server.tick([workload.next_transaction(server.db)])
        assert server.staleness_ticks("V") == 0

    def test_unknown_action_rejected(self):
        server, _ = build_server()
        with pytest.raises(PolicyError):
            server._run_action("V", "defragment")


class TestCorrectness:
    def test_served_reads_match_interpreted_oracle(self):
        server, workload = build_server("compiled", k=2, m=5)
        oracle, oracle_workload = build_server("interpreted", k=2, m=5)
        for _ in range(10):
            server.tick([workload.next_transaction(server.db)])
            oracle.tick([oracle_workload.next_transaction(oracle.db)])
            assert bag_digest(server.read("V")) == bag_digest(oracle.read("V"))

    def test_run_with_schedule(self):
        server, workload = build_server()
        schedule = {1: [workload.next_transaction(server.db)]}
        server.run(4, schedule)
        assert server.now == 4


class TestWorkerPool:
    def test_workers_drain_queue_off_the_caller_thread(self):
        server, workload = build_server(k=1, m=3)
        server.start_workers(2)
        try:
            for _ in range(6):
                server.tick([workload.next_transaction(server.db)])
            assert server.wait_idle()
        finally:
            server.stop_workers()
        assert server.actions_run >= 6  # k=1: at least one action per tick

    def test_double_start_rejected(self):
        server, _ = build_server()
        server.start_workers()
        try:
            with pytest.raises(PolicyError):
                server.start_workers()
        finally:
            server.stop_workers()

    def test_stop_workers_drains_remainder(self):
        server, workload = build_server(k=1, m=3)
        pool = server.start_workers(1, poll_interval_s=60.0)
        # The worker sleeps for a minute unless kicked; queue work, then
        # make sure stop() still leaves the queue empty.
        pool.workers[0].kick()  # no-op: nothing queued yet
        for _ in range(2):
            server.tick([workload.next_transaction(server.db)])
        server.stop_workers()
        assert server.pending_maintenance() == 0

    def test_worker_equivalence_with_synchronous_drain(self):
        """Same schedule, with and without a pool: same final view."""
        threaded, workload_a = build_server(k=2, m=5)
        synchronous, workload_b = build_server(k=2, m=5)
        threaded.start_workers(2)
        try:
            for _ in range(10):
                threaded.tick([workload_a.next_transaction(threaded.db)])
                synchronous.tick([workload_b.next_transaction(synchronous.db)])
            assert threaded.wait_idle()
        finally:
            threaded.stop_workers()
        assert bag_digest(threaded.read("V")) == bag_digest(synchronous.read("V"))


class TestComposition:
    def test_durable_mode_journals_and_recovers(self, tmp_path):
        from repro.workloads.retail import VIEW_SQL, CUSTOMER_ATTRS, SALES_ATTRS, RetailConfig, RetailWorkload

        path = tmp_path / "serve.journal"
        workload = RetailWorkload(RetailConfig(customers=8, initial_sales=20, txn_inserts=3, seed=7))
        server = ViewServer(ServeConfig(k=1, m=2, durable_path=str(path)))
        server.create_table("customer", CUSTOMER_ATTRS, rows=workload.customer_rows())
        server.create_table("sales", SALES_ATTRS, rows=workload.initial_sales_rows())
        server.define_view("V", VIEW_SQL, scenario="combined")
        for _ in range(4):
            server.tick([workload.next_transaction(server.db)])
        expected = bag_digest(server.read("V"))

        from repro.robustness.durable import DurableWarehouse

        recovered = DurableWarehouse.open(str(path))
        assert bag_digest(recovered.query_fresh("V")) == expected

    def test_governed_mode_serves_identically(self):
        from repro.workloads.retail import (
            CUSTOMER_ATTRS,
            SALES_ATTRS,
            VIEW_SQL,
            RetailConfig,
            RetailWorkload,
        )

        def _arm(governed: bool) -> str:
            workload = RetailWorkload(
                RetailConfig(customers=8, initial_sales=20, txn_inserts=3, seed=7)
            )
            server = ViewServer(ServeConfig(k=2, m=3, governed=governed))
            server.create_table("customer", CUSTOMER_ATTRS, rows=workload.customer_rows())
            server.create_table("sales", SALES_ATTRS, rows=workload.initial_sales_rows())
            server.define_view("V", VIEW_SQL, scenario="combined")
            for _ in range(6):
                server.tick([workload.next_transaction(server.db)])
            return bag_digest(server.read("V"))

        assert _arm(True) == _arm(False)

    def test_async_read_matches_sync(self):
        server, workload = build_server()
        server.tick([workload.next_transaction(server.db)])

        async def _go():
            return await server.read_async("V")

        assert bag_digest(asyncio.run(_go())) == bag_digest(server.read("V"))

    def test_stats_shape(self):
        server, workload = build_server()
        server.tick([workload.next_transaction(server.db)])
        server.read("V")
        stats = server.stats()
        assert stats["now"] == 1
        assert stats["reads_served"] >= 1
        assert stats["pending_maintenance"] == 0
        assert "V" in stats["staleness_ticks"]
        assert stats["snapshots"]["live"] >= 1
