"""Snapshot handles and the pin registry: lifecycle, GC, torn-read safety."""

from __future__ import annotations

import threading

import pytest

from repro.algebra.bag import Bag
from repro.algebra.expr import Literal
from repro.errors import UnknownTableError
from repro.robustness.journal import bag_digest
from repro.serve import SnapshotRegistry
from repro.storage.database import Database


def _db(rows=((1, 10), (2, 20))) -> Database:
    db = Database()
    db.create_table("t", ("a", "b"), rows=rows)
    return db


class TestSnapshotHandle:
    def test_table_is_frozen_against_later_writes(self):
        db = _db()
        registry = SnapshotRegistry()
        handle = registry.pin(db)
        before = bag_digest(handle.table("t"))
        db.load("t", [(3, 30)])
        assert bag_digest(handle.table("t")) == before
        assert bag_digest(db["t"]) != before

    def test_unknown_table_raises(self):
        registry = SnapshotRegistry()
        handle = registry.pin(_db())
        with pytest.raises(UnknownTableError):
            handle.table("nope")

    def test_version_and_names(self):
        db = _db()
        registry = SnapshotRegistry()
        handle = registry.pin(db)
        assert handle.table_names() == ("t",)
        assert handle.version_of("t") == db.version_of("t")
        assert handle.version_of("nope") == -1
        db.load("t", [(9, 90)])
        assert handle.version_of("t") != db.version_of("t")

    def test_evaluate_runs_against_pinned_state(self):
        db = _db()
        registry = SnapshotRegistry()
        handle = registry.pin(db)
        expr = db.ref("t")
        before = len(handle.evaluate(expr))
        db.load("t", [(3, 30)])
        assert len(handle.evaluate(expr)) == before
        assert len(db.evaluate(expr)) == before + 1

    def test_digest_and_total_rows(self):
        registry = SnapshotRegistry()
        handle = registry.pin(_db())
        assert handle.digest("t") == bag_digest(handle.table("t"))
        assert handle.total_rows() == 2

    def test_context_manager_releases(self):
        registry = SnapshotRegistry()
        with registry.pin(_db()) as handle:
            assert registry.pin_count(handle) == 1
        assert registry.pin_count(handle) == 0

    def test_release_is_idempotent_after_collection(self):
        registry = SnapshotRegistry()
        handle = registry.pin(_db())
        handle.release()
        handle.release()  # must not raise or corrupt counters
        assert registry.stats()["releases_total"] == 1


class TestSnapshotRegistry:
    def test_refcount_collects_at_zero(self):
        db = _db()
        registry = SnapshotRegistry()
        handle = registry.pin(db)
        registry.repin(handle)
        assert registry.pin_count(handle) == 2
        handle.release()
        assert registry.live_count() == 1
        handle.release()
        assert registry.live_count() == 0
        assert registry.stats() == {
            "live": 0,
            "pins_total": 2,
            "releases_total": 2,
            "collected_total": 1,
        }

    def test_repin_collected_snapshot_rejected(self):
        registry = SnapshotRegistry()
        handle = registry.pin(_db())
        handle.release()
        with pytest.raises(ValueError):
            registry.repin(handle)

    def test_superseded_snapshots_survive_while_pinned(self):
        db = _db()
        registry = SnapshotRegistry()
        old = registry.pin(db)
        db.load("t", [(3, 30)])
        new = registry.pin(db)
        assert registry.live_count() == 2
        assert len(old.table("t")) == 2
        assert len(new.table("t")) == 3
        old.release()
        new.release()
        assert registry.live_count() == 0

    def test_retained_rows_counts_live_snapshots(self):
        db = _db()
        registry = SnapshotRegistry()
        handle = registry.pin(db)
        assert registry.retained_rows() == 2
        handle.release()
        assert registry.retained_rows() == 0


class TestConsistentCut:
    def test_cut_never_tears_a_multi_table_install(self):
        """Concurrent pins must see both tables of a txn or neither.

        The writer repeatedly applies a delta that keeps ``x`` and ``y``
        the same size; a torn cut (pinned between the two table
        installs) would show different sizes.
        """
        db = Database()
        db.create_table("x", ("a",), rows=[(0,)])
        db.create_table("y", ("a",), rows=[(0,)])
        registry = SnapshotRegistry()
        stop = threading.Event()
        torn: list[tuple[int, int]] = []

        def _insert(name: str, value: int):
            schema = db.schema_of(name)
            return (Literal(Bag.empty(), schema), Literal(Bag([(value,)]), schema))

        def _writer() -> None:
            value = 1
            while not stop.is_set():
                db.apply(patches={"x": _insert("x", value), "y": _insert("y", value)})
                value += 1

        def _pinner() -> None:
            while not stop.is_set():
                handle = registry.pin(db)
                sizes = (len(handle.table("x")), len(handle.table("y")))
                if sizes[0] != sizes[1]:
                    torn.append(sizes)
                handle.release()

        writer = threading.Thread(target=_writer, name="writer", daemon=True)
        pinners = [
            threading.Thread(target=_pinner, name=f"pinner-{i}", daemon=True)
            for i in range(3)
        ]
        writer.start()
        for pinner in pinners:
            pinner.start()
        import time

        time.sleep(0.25)
        stop.set()
        writer.join(timeout=5.0)
        for pinner in pinners:
            pinner.join(timeout=5.0)
        assert torn == []

    def test_cut_matches_live_state_when_quiescent(self):
        db = _db()
        tables, versions, clock = db.consistent_cut()
        assert set(tables) == {"t"}
        assert bag_digest(tables["t"]) == bag_digest(db["t"])
        assert versions["t"] == db.version_of("t")
        assert clock >= versions["t"]
