"""Shared builders for the serving-layer suite."""

from __future__ import annotations

from repro.serve import ServeConfig, ViewServer
from repro.storage.database import Database
from repro.warehouse.manager import ViewManager
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload


def build_server(
    engine: str | None = None,
    *,
    k: int = 2,
    m: int = 5,
    seed: int = 96,
    policy=None,
    customers: int = 12,
    initial_sales: int = 40,
    txn_inserts: int = 4,
) -> tuple[ViewServer, RetailWorkload]:
    """A small retail-backed server with one combined-scenario view."""
    workload = RetailWorkload(
        RetailConfig(
            customers=customers,
            initial_sales=initial_sales,
            txn_inserts=txn_inserts,
            seed=seed,
        )
    )
    db = Database(exec_mode=engine) if engine is not None else Database()
    workload.setup_database(db)
    server = ViewServer(ServeConfig(k=k, m=m, policy=policy), manager=ViewManager(db))
    server.define_view("V", VIEW_SQL, scenario="combined")
    return server, workload
