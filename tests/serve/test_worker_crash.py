"""Worker crash containment: pinned snapshots stay readable, retry heals.

A maintenance action that dies mid-epoch must behave like the paper's
failure model everywhere else in the robustness layer: the storage
install has already rolled back, so the crash is invisible to readers —
the published snapshot and every pinned one keep answering — and the
action returns to the queue so a healthy worker (or a synchronous
drain) retries it to the exact state a crash-free run reaches.
"""

from __future__ import annotations

import time

import pytest

from repro.robustness.faults import INJECTOR
from repro.robustness.journal import bag_digest

from tests.serve.conftest import build_server


@pytest.fixture(autouse=True)
def _reset_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


def _wait_for_crash(pool, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if pool.crashes():
            return
        time.sleep(0.002)
    raise AssertionError("worker never hit the armed fault")


@pytest.mark.parametrize("point", ["crash-mid-propagate", "crash-mid-refresh"])
def test_crash_mid_action_leaves_snapshots_readable(point):
    server, workload = build_server(k=1, m=2)
    server.tick([workload.next_transaction(server.db)])  # healthy warm-up
    pinned = server.pin()
    pinned_digest = bag_digest(server.read_at(pinned, "V"))
    published_digest = bag_digest(server.read("V"))

    pool = server.start_workers(1)
    INJECTOR.arm(point, hit=1)
    server.tick([workload.next_transaction(server.db)])  # queues the doomed action
    _wait_for_crash(pool)

    # The crash killed the worker, not the server: the published snapshot
    # republished on the tick but its view table is untouched, and the
    # pinned snapshot is bit-identical to its pin-time state.
    worker = pool.workers[0]
    assert worker.crashed is not None
    assert pool.alive() == 0
    assert bag_digest(server.read_at(pinned, "V")) == pinned_digest
    assert bag_digest(server.read("V")) == published_digest

    # The doomed action went back on the queue for retry.
    assert server.pending_maintenance() >= 1
    assert not server.wait_idle(timeout_s=0.05)

    # stop_workers skips the synchronous drain after a crash...
    server.stop_workers()
    assert server.pending_maintenance() >= 1

    # ...and once the fault is disarmed, a retry heals to the crash-free state.
    oracle, oracle_workload = build_server(k=1, m=2)
    oracle.tick([oracle_workload.next_transaction(oracle.db)])
    oracle.tick([oracle_workload.next_transaction(oracle.db)])
    server.drain_maintenance()
    assert server.pending_maintenance() == 0
    assert bag_digest(server.read("V")) == bag_digest(oracle.read("V"))
    pinned.release()


def test_surviving_workers_keep_draining_after_a_crash():
    server, workload = build_server(k=1, m=3)
    pool = server.start_workers(2, poll_interval_s=0.002)
    INJECTOR.arm("crash-mid-propagate", hit=1)
    try:
        server.tick([workload.next_transaction(server.db)])
        _wait_for_crash(pool)
        INJECTOR.reset()
        # One worker is dead; the other retries the re-queued propagate.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and server.pending_maintenance():
            pool.kick()
            time.sleep(0.002)
        assert server.pending_maintenance() == 0
        assert pool.alive() == 1
    finally:
        server.stop_workers()

    oracle, oracle_workload = build_server(k=1, m=3)
    oracle.tick([oracle_workload.next_transaction(oracle.db)])
    assert bag_digest(server.read("V")) == bag_digest(oracle.read("V"))


def test_crash_during_synchronous_drain_requeues_and_propagates():
    from repro.robustness.faults import InjectedCrash

    server, workload = build_server(k=1, m=2)
    INJECTOR.arm("crash-mid-propagate", hit=1)
    with pytest.raises(InjectedCrash):
        server.tick([workload.next_transaction(server.db)])
    assert server.pending_maintenance() >= 1
    INJECTOR.reset()
    server.drain_maintenance()
    assert server.pending_maintenance() == 0

    oracle, oracle_workload = build_server(k=1, m=2)
    oracle.tick([oracle_workload.next_transaction(oracle.db)])
    assert bag_digest(server.read("V")) == bag_digest(oracle.read("V"))
