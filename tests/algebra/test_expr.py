"""Unit tests for the bag-algebra AST: schemas, substitution, derived ops."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.expr import (
    DupElim,
    Literal,
    Monus,
    Product,
    Project,
    Select,
    UnionAll,
    empty,
    except_expr,
    join,
    max_expr,
    min_expr,
    rename,
    singleton,
    table,
)
from repro.algebra.predicates import Comparison, attr, const
from repro.algebra.schema import Schema
from repro.errors import SchemaError

R = table("R", ["a", "b"])
S = table("S", ["b", "c"])
ONE_COL = table("W", ["x"])


class TestSchemas:
    def test_table_ref_schema(self):
        assert R.schema() == Schema(["a", "b"])

    def test_literal_schema_checked_against_bag(self):
        with pytest.raises(SchemaError):
            Literal(Bag([(1, 2)]), Schema(["x"]))

    def test_empty_literal_any_schema(self):
        assert empty(Schema(["x", "y"])).schema().arity == 2

    def test_singleton(self):
        lit = singleton((1,), Schema(["x"]))
        assert lit.bag == Bag([(1,)])

    def test_select_keeps_schema(self):
        expr = Select(Comparison("=", attr("a"), const(1)), R)
        assert expr.schema() == R.schema()

    def test_select_validates_predicate_attributes(self):
        with pytest.raises(SchemaError):
            Select(Comparison("=", attr("zzz"), const(1)), R)

    def test_project_by_name(self):
        expr = Project(("b",), R)
        assert expr.schema() == Schema(["b"])

    def test_project_by_position(self):
        expr = Project((1, 0), R)
        assert expr.schema() == Schema(["b", "a"])

    def test_project_with_output_names(self):
        expr = Project(("a",), R, ("renamed",))
        assert expr.schema() == Schema(["renamed"])

    def test_project_name_count_mismatch(self):
        with pytest.raises(SchemaError):
            Project(("a",), R, ("x", "y"))

    def test_project_position_out_of_range(self):
        with pytest.raises(SchemaError):
            Project((7,), R)

    def test_product_concatenates(self):
        assert Product(R, S).schema() == Schema(["a", "b", "b", "c"])

    def test_union_requires_same_arity(self):
        with pytest.raises(SchemaError):
            UnionAll(R, ONE_COL)

    def test_monus_requires_same_arity(self):
        with pytest.raises(SchemaError):
            Monus(R, ONE_COL)

    def test_union_takes_left_names(self):
        expr = UnionAll(R, table("R2", ["x", "y"]))
        assert expr.schema() == Schema(["a", "b"])

    def test_dupelim_keeps_schema(self):
        assert DupElim(R).schema() == R.schema()


class TestIntrospection:
    def test_tables(self):
        expr = UnionAll(Project(("a",), R), Project(("x",), ONE_COL))
        assert expr.tables() == frozenset({"R", "W"})

    def test_size(self):
        assert R.size() == 1
        assert UnionAll(R, R).size() == 3

    def test_walk_preorder(self):
        expr = DupElim(R)
        assert [type(node).__name__ for node in expr.walk()] == ["DupElim", "TableRef"]

    def test_structural_equality(self):
        assert Project(("a",), R) == Project(("a",), table("R", ["a", "b"]))
        assert Project(("a",), R) != Project(("b",), R)

    def test_hashable(self):
        assert len({Project(("a",), R), Project(("a",), R)}) == 1


class TestSubstitution:
    def test_replaces_table_refs(self):
        replacement = table("R_new", ["a", "b"])
        assert R.substitute({"R": replacement}) == replacement

    def test_untouched_tables_kept(self):
        expr = UnionAll(R, table("R2", ["x", "y"]))
        result = expr.substitute({"R": table("R3", ["a", "b"])})
        assert result.tables() == frozenset({"R3", "R2"})

    def test_simultaneous_not_iterated(self):
        # R -> S and S -> R must swap, not chain.
        r = table("R", ["x"])
        s = table("S", ["x"])
        expr = Product(r, s)
        result = expr.substitute({"R": s, "S": r})
        assert result == Product(s, r)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            R.substitute({"R": ONE_COL})

    def test_literal_unchanged(self):
        lit = empty(Schema(["a", "b"]))
        assert lit.substitute({"R": R}) is lit

    def test_substitution_descends_through_all_nodes(self):
        expr = DupElim(Select(Comparison("=", attr("a"), const(1)), Project(("a", "b"), R)))
        result = expr.substitute({"R": table("R9", ["a", "b"])})
        assert result.tables() == frozenset({"R9"})


class TestDerivedConstructors:
    def setup_method(self):
        self.db_state = {
            "R": Bag([(1, 10), (1, 10), (2, 20)]),
            "S": Bag([(10, "x"), (30, "y")]),
            "W": Bag([(1,), (1,), (2,), (3,)]),
            "W2": Bag([(1,), (2,), (2,)]),
        }

    def _eval(self, expr):
        from repro.algebra.evaluation import evaluate

        return evaluate(expr, self.db_state)

    def test_join_rejects_ambiguous_attribute(self):
        # Both R and S have a column named b: the predicate cannot bind.
        with pytest.raises(SchemaError, match="ambiguous"):
            join(R, S, Comparison("=", attr("b"), attr("b")))

    def test_join_with_qualified_names(self):
        r = rename(R, ("r.a", "r.b"))
        s = rename(S, ("s.b", "s.c"))
        expr = join(r, s, Comparison("=", attr("r.b"), attr("s.b")))
        assert self._eval(expr) == Bag([(1, 10, 10, "x"), (1, 10, 10, "x")])

    def test_join_without_predicate_is_product(self):
        expr = join(ONE_COL, table("W2", ["y"]))
        assert isinstance(expr, Product)

    def test_min_expr_semantics(self):
        w2 = table("W2", ["x"])
        assert self._eval(min_expr(ONE_COL, w2)) == Bag([(1,), (2,)])

    def test_max_expr_semantics(self):
        w2 = table("W2", ["x"])
        result = self._eval(max_expr(ONE_COL, w2))
        assert result == Bag([(1,), (1,), (2,), (2,), (3,)])

    def test_except_expr_semantics(self):
        w2 = table("W2", ["x"])
        # W EXCEPT W2 removes every copy of rows present in W2.
        assert self._eval(except_expr(ONE_COL, w2)) == Bag([(3,)])

    def test_except_expr_keeps_multiplicities_of_survivors(self):
        w2 = table("W2", ["x"])
        # W2 EXCEPT (rows {2,3}): 1 survives with original multiplicity
        self.db_state["V"] = Bag([(2,), (3,)])
        v = table("V", ["x"])
        assert self._eval(except_expr(w2, v)) == Bag([(1,)])

    def test_except_expr_preserves_schema_names(self):
        w2 = table("W2", ["x"])
        assert except_expr(ONE_COL, w2).schema() == Schema(["x"])

    def test_rename_positional(self):
        expr = rename(R, ("x", "y"))
        assert expr.schema() == Schema(["x", "y"])

    def test_rename_wrong_count(self):
        with pytest.raises(SchemaError):
            rename(R, ("only-one",))

    def test_operator_sugar(self):
        expr = R.project(["a"]).dedup()
        assert isinstance(expr, DupElim)
        expr2 = ONE_COL.union_all(table("W2", ["x"])).monus(ONE_COL)
        assert isinstance(expr2, Monus)

    def test_where_sugar(self):
        expr = R.where(Comparison("=", attr("a"), const(1)))
        assert isinstance(expr, Select)

    def test_product_sugar(self):
        assert isinstance(ONE_COL.product(ONE_COL), Product)

    def test_str_forms(self):
        assert str(R) == "R"
        assert "sigma" in str(R.where(Comparison("=", attr("a"), const(1))))
        assert "pi" in str(R.project(["a"]))
        assert "(+)" in str(UnionAll(R, R))
        assert "(-)" in str(Monus(R, R))
        assert str(empty(Schema(["x"]))) == "phi"
