"""Property-based tests of the bag laws the paper's algebra relies on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.bag import Bag

rows = st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3))
bags = st.lists(rows, max_size=12).map(Bag)


@given(bags, bags)
def test_union_all_commutative(x, y):
    assert x.union_all(y) == y.union_all(x)


@given(bags, bags, bags)
def test_union_all_associative(x, y, z):
    assert x.union_all(y).union_all(z) == x.union_all(y.union_all(z))


@given(bags)
def test_union_all_identity(x):
    assert x.union_all(Bag.empty()) == x


@given(bags)
def test_monus_self_is_empty(x):
    assert x.monus(x) == Bag.empty()


@given(bags, bags)
def test_union_then_monus_cancels(x, y):
    assert x.union_all(y).monus(y) == x


@given(bags, bags, bags)
def test_monus_distributes_over_union_on_right(x, y, z):
    # x ∸ (y ⊎ z) == (x ∸ y) ∸ z
    assert x.monus(y.union_all(z)) == x.monus(y).monus(z)


@given(bags, bags)
def test_monus_result_is_subbag(x, y):
    assert x.monus(y).issubbag(x)


@given(bags, bags)
def test_min_is_greatest_lower_bound(x, y):
    meet = x.min_(y)
    assert meet.issubbag(x)
    assert meet.issubbag(y)


@given(bags, bags)
def test_max_is_least_upper_bound(x, y):
    join = x.max_(y)
    assert x.issubbag(join)
    assert y.issubbag(join)


@given(bags, bags)
def test_min_commutative(x, y):
    assert x.min_(y) == y.min_(x)


@given(bags, bags)
def test_max_commutative(x, y):
    assert x.max_(y) == y.max_(x)


@given(bags, bags)
def test_min_max_decomposition(x, y):
    # |x min y| + |x max y| == |x| + |y| pointwise
    assert x.min_(y).union_all(x.max_(y)) == x.union_all(y)


@given(bags)
def test_dedup_idempotent(x):
    assert x.dedup().dedup() == x.dedup()


@given(bags)
def test_dedup_is_subbag(x):
    assert x.dedup().issubbag(x)


@given(bags, bags)
def test_subbag_antisymmetric(x, y):
    if x.issubbag(y) and y.issubbag(x):
        assert x == y


@given(bags, bags, bags)
def test_subbag_transitive(x, y, z):
    if x.issubbag(y) and y.issubbag(z):
        assert x.issubbag(z)


@settings(max_examples=50)
@given(bags, bags, bags)
def test_product_distributes_over_union(x, y, z):
    assert x.product(y.union_all(z)) == x.product(y).union_all(x.product(z))


@given(bags, bags)
def test_product_length_multiplies(x, y):
    assert len(x.product(y)) == len(x) * len(y)


@given(bags, bags)
def test_except_support_is_difference(x, y):
    assert x.except_(y).support == x.support - y.support


@given(bags, bags)
def test_except_preserves_kept_multiplicities(x, y):
    result = x.except_(y)
    for row in result.support:
        assert result.multiplicity(row) == x.multiplicity(row)


@given(bags, bags, bags)
def test_cancellation_lemma(o, d, i):
    """Lemma 1: if N = (O ∸ D) ⊎ I then O = (N ∸ I) ⊎ (O min D)."""
    n = o.monus(d).union_all(i)
    assert o == n.monus(i).union_all(o.min_(d))
