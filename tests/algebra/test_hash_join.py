"""Unit + randomized tests for the evaluator's hash-join fast path."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import Product, Select, rename, table
from repro.algebra.predicates import And, Comparison, Or, attr, const

R = rename(table("R", ["a", "b"]), ("r.a", "r.b"))
S = rename(table("S", ["b", "c"]), ("s.b", "s.c"))

STATE = {
    "R": Bag([(1, 10), (1, 10), (2, 20), (3, 30)]),
    "S": Bag([(10, "x"), (10, "y"), (20, "z"), (99, "w")]),
}

EQUI = Comparison("=", attr("r.b"), attr("s.b"))


def naive(expr):
    """Ground truth: evaluate the product, then filter."""
    product_value = evaluate(expr.child, {**STATE})
    predicate = expr.predicate.bind(expr.child.schema())
    return product_value.select(predicate)


class TestCorrectness:
    def test_simple_equijoin(self):
        expr = Select(EQUI, Product(R, S))
        assert evaluate(expr, STATE) == naive(expr)
        # (1,10) x2 joins both S-10 rows: 4 copies of a=1 pairs.
        assert len(evaluate(expr, STATE)) == 5

    def test_residual_predicate_applied(self):
        predicate = And(EQUI, Comparison("=", attr("s.c"), const("x")))
        expr = Select(predicate, Product(R, S))
        assert evaluate(expr, STATE) == naive(expr)
        assert all(row[3] == "x" for row in evaluate(expr, STATE).support)

    def test_multi_key_join(self):
        left = rename(table("R", ["a", "b"]), ("l.a", "l.b"))
        right = rename(table("R", ["a", "b"]), ("r.a", "r.b"))
        predicate = And(
            Comparison("=", attr("l.a"), attr("r.a")),
            Comparison("=", attr("l.b"), attr("r.b")),
        )
        expr = Select(predicate, Product(left, right))
        assert evaluate(expr, STATE) == naive(expr)
        # (1,10) has multiplicity 2: the self-join yields 4 copies.
        assert evaluate(expr, STATE).multiplicity((1, 10, 1, 10)) == 4

    def test_disjunction_not_hash_joinable(self):
        predicate = Or(EQUI, Comparison("=", attr("r.a"), const(3)))
        expr = Select(predicate, Product(R, S))
        assert evaluate(expr, STATE) == naive(expr)

    def test_same_side_equality_is_residual(self):
        predicate = And(EQUI, Comparison("=", attr("r.a"), attr("r.b")))
        expr = Select(predicate, Product(R, S))
        assert evaluate(expr, STATE) == naive(expr)

    def test_constant_comparison_is_residual(self):
        predicate = And(EQUI, Comparison(">", attr("r.a"), const(1)))
        expr = Select(predicate, Product(R, S))
        result = evaluate(expr, STATE)
        assert result == naive(expr)
        assert all(row[0] > 1 for row in result.support)

    def test_empty_join(self):
        predicate = Comparison("=", attr("r.a"), attr("s.c"))  # int vs str: no matches
        expr = Select(predicate, Product(R, S))
        assert evaluate(expr, STATE) == Bag.empty()


class TestCost:
    def test_join_cost_below_cross_product(self):
        counter = CostCounter()
        expr = Select(EQUI, Product(R, S))
        evaluate(expr, STATE, counter=counter)
        assert "hash_join" in counter.by_operator
        assert "product" not in counter.by_operator
        # scans (4+4) + renames (4+4) + join output (5); the product
        # path would additionally pay the 16-row cross product.
        assert counter.tuples_out == 21
        naive_counter = CostCounter()
        product_value = evaluate(expr.child, STATE, counter=naive_counter)
        naive_counter.record("select", len(product_value.select(expr.predicate.bind(expr.child.schema()))))
        assert counter.tuples_out < naive_counter.tuples_out

    def test_no_equikeys_falls_back_to_product(self):
        counter = CostCounter()
        predicate = Comparison("<", attr("r.b"), attr("s.b"))
        expr = Select(predicate, Product(R, S))
        value = evaluate(expr, STATE, counter=counter)
        assert "product" in counter.by_operator
        assert value == naive(expr)

    def test_memoized_product_reused_not_rejoined(self):
        counter = CostCounter()
        memo = {}
        product = Product(R, S)
        evaluate(product, STATE, counter=counter, memo=memo)  # materialized
        expr = Select(EQUI, product)
        value = evaluate(expr, STATE, counter=counter, memo=memo)
        # With the product already in the memo, the select path reuses it.
        assert "select" in counter.by_operator
        assert value == naive(expr)


@pytest.mark.parametrize("seed", range(20))
def test_randomized_equivalence_with_sqlite(seed):
    """Join results agree with the independent SQLite backend."""
    import random

    from repro.storage.database import Database
    from repro.storage.sqlite_backend import SQLiteBackend

    rng = random.Random(seed)
    db = Database()
    db.create_table("R", ["a", "b"], rows=[(rng.randrange(4), rng.randrange(4)) for __ in range(10)])
    db.create_table("S", ["b", "c"], rows=[(rng.randrange(4), rng.randrange(4)) for __ in range(10)])
    left = rename(db.ref("R"), ("r.a", "r.b"))
    right = rename(db.ref("S"), ("s.b", "s.c"))
    expr = Select(Comparison("=", attr("r.b"), attr("s.b")), Product(left, right))
    with SQLiteBackend() as backend:
        backend.sync_from(db)
        assert backend.evaluate(expr) == db.evaluate(expr)
