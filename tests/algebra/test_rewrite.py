"""Unit + randomized tests for the algebraic optimizer."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.expr import (
    DupElim,
    Literal,
    Monus,
    Product,
    Project,
    Select,
    UnionAll,
    empty,
    table,
)
from repro.algebra.predicates import (
    And,
    Comparison,
    Not,
    Or,
    TruePredicate,
    attr,
    const,
)
from repro.algebra.rewrite import is_empty_literal, optimize, simplify_predicate
from repro.algebra.schema import Schema
from repro.workloads.randgen import RandomExpressionGenerator

R = table("R", ["a", "b"])
W = table("W", ["x"])
EMPTY_W = empty(Schema(["x"]))
LIT = Literal(Bag([(1,), (1,), (2,)]), Schema(["x"]))

STATE = {
    "R": Bag([(1, 10), (2, 20)]),
    "W": Bag([(1,), (2,), (2,)]),
}


def same_value(expr):
    from repro.algebra.evaluation import evaluate

    optimized = optimize(expr)
    assert evaluate(optimized, STATE) == evaluate(expr, STATE)
    assert optimized.schema() == expr.schema()
    assert optimized.size() <= expr.size()
    return optimized


class TestEmptyFolding:
    def test_union_with_empty(self):
        assert same_value(UnionAll(W, EMPTY_W)) == W
        assert same_value(UnionAll(EMPTY_W, W)) == W

    def test_monus_empty_left(self):
        assert is_empty_literal(same_value(Monus(EMPTY_W, W)))

    def test_monus_empty_right(self):
        assert same_value(Monus(W, EMPTY_W)) == W

    def test_product_with_empty(self):
        optimized = same_value(Product(W, EMPTY_W))
        assert is_empty_literal(optimized)
        assert optimized.schema().arity == 2

    def test_unary_over_empty(self):
        assert is_empty_literal(optimize(Select(TruePredicate(), EMPTY_W)))
        assert is_empty_literal(optimize(Project((0,), EMPTY_W, ("z",))))
        assert is_empty_literal(optimize(DupElim(EMPTY_W)))

    def test_nested_folding_cascades(self):
        expr = UnionAll(Monus(EMPTY_W, W), Product(W, W).project([0], ["x"]))
        optimized = same_value(expr)
        assert optimized.size() < expr.size()


class TestSelfCancellation:
    def test_monus_self(self):
        assert is_empty_literal(same_value(Monus(W, W)))

    def test_monus_structurally_equal(self):
        left = Project((0,), R, ("a",))
        right = Project((0,), table("R", ["a", "b"]), ("a",))
        assert is_empty_literal(same_value(Monus(left, right)))


class TestConstantFolding:
    def test_all_literal_operator_folds(self):
        expr = UnionAll(LIT, LIT)
        optimized = same_value(expr)
        assert isinstance(optimized, Literal)
        assert optimized.bag.multiplicity((1,)) == 4

    def test_literal_select_folds(self):
        expr = Select(Comparison(">", attr("x"), const(1)), LIT)
        optimized = same_value(expr)
        assert isinstance(optimized, Literal)
        assert optimized.bag == Bag([(2,)])

    def test_true_select_disappears(self):
        assert same_value(Select(TruePredicate(), W)) == W

    def test_constant_true_comparison_disappears(self):
        expr = Select(Comparison("=", const(1), const(1)), W)
        assert same_value(expr) == W

    def test_constant_false_comparison_empties(self):
        expr = Select(Comparison("=", const(1), const(2)), W)
        assert is_empty_literal(same_value(expr))


class TestFusion:
    def test_selection_fusion(self):
        inner = Select(Comparison(">", attr("a"), const(0)), R)
        outer = Select(Comparison("<", attr("b"), const(99)), inner)
        optimized = same_value(outer)
        assert isinstance(optimized, Select)
        assert optimized.child == R  # one level, fused predicate

    def test_projection_fusion(self):
        inner = Project((1, 0), R, ("b", "a"))
        outer = Project((1,), inner, ("a",))
        optimized = same_value(outer)
        assert isinstance(optimized, Project)
        assert optimized.child == R
        assert optimized.schema() == Schema(["a"])

    def test_identity_projection_removed(self):
        expr = Project((0, 1), R, ("a", "b"))
        assert same_value(expr) == R

    def test_renaming_projection_kept(self):
        expr = Project((0, 1), R, ("x", "y"))
        optimized = same_value(expr)
        assert optimized.schema() == Schema(["x", "y"])

    def test_dupelim_idempotent(self):
        assert same_value(DupElim(DupElim(W))) == DupElim(W)


class TestSchemaPreservation:
    def test_union_drop_keeps_left_names(self):
        # (empty ⊎ W-renamed) must keep the union's visible names.
        other = table("W2", ["different"])
        expr = UnionAll(empty(Schema(["x"])), other)
        optimized = optimize(expr)
        assert optimized.schema() == Schema(["x"])


class TestPredicateSimplification:
    def test_and_with_true(self):
        predicate = And(TruePredicate(), Comparison("=", attr("x"), const(1)))
        assert simplify_predicate(predicate) == Comparison("=", attr("x"), const(1))

    def test_or_with_true_is_true(self):
        predicate = Or(Comparison("=", attr("x"), const(1)), TruePredicate())
        assert isinstance(simplify_predicate(predicate), TruePredicate)

    def test_double_negation(self):
        inner = Comparison("=", attr("x"), const(1))
        assert simplify_predicate(Not(Not(inner))) == inner

    def test_constant_comparison_folds(self):
        assert isinstance(simplify_predicate(Comparison("<", const(1), const(2))), TruePredicate)

    def test_null_constant_comparison_is_false(self):
        folded = simplify_predicate(Comparison("=", const(None), const(None)))
        assert folded == Not(TruePredicate())

    def test_and_with_false_is_false(self):
        predicate = And(Comparison("=", const(1), const(2)), Comparison("=", attr("x"), const(1)))
        assert simplify_predicate(predicate) == Not(TruePredicate())


@pytest.mark.parametrize("seed", range(40))
def test_randomized_equivalence(seed):
    """optimize() preserves value and schema on random expressions."""
    from repro.algebra.evaluation import evaluate

    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    expr = generator.query(db, depth=5)
    optimized = optimize(expr)
    assert optimized.schema() == expr.schema()
    assert optimized.size() <= expr.size()
    assert evaluate(optimized, db.state) == evaluate(expr, db.state)


@pytest.mark.parametrize("seed", range(10))
def test_optimize_idempotent(seed):
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    expr = generator.query(db, depth=4)
    once = optimize(expr)
    assert optimize(once) == once
