"""Tests for executor short-circuiting (runtime-empty operands, monus identity).

These behaviors change *cost*, never *values* — every test here checks
both sides: the result matches the independent SQLite backend, and the
cost reflects the short-circuit.
"""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import Monus, Product, Select, rename, table
from repro.algebra.predicates import Comparison, attr
from repro.storage.database import Database
from repro.storage.sqlite_backend import SQLiteBackend
from repro.workloads.randgen import RandomExpressionGenerator


@pytest.fixture
def db():
    database = Database()
    database.create_table("big", ["a", "b"], rows=[(index, index % 5) for index in range(500)])
    database.create_table("log", ["a", "b"])  # empty, like an idle log table
    return database


class TestRuntimeEmptyShortCircuit:
    def test_join_with_empty_operand_costs_nothing(self, db):
        left = rename(db.ref("log"), ("l.a", "l.b"))
        right = rename(db.ref("big"), ("r.a", "r.b"))
        expr = Select(Comparison("=", attr("l.b"), attr("r.b")), Product(left, right))
        counter = CostCounter()
        result = evaluate(expr, db.state, counter=counter)
        assert result == Bag.empty()
        assert counter.tuples_out == 0  # 'big' was never scanned

    def test_product_with_empty_operand(self, db):
        expr = Product(db.ref("big"), db.ref("log"))
        counter = CostCounter()
        assert evaluate(expr, db.state, counter=counter) == Bag.empty()
        assert counter.tuples_out == 0

    def test_monus_with_empty_left(self, db):
        expr = Monus(db.ref("log"), db.ref("big"))
        counter = CostCounter()
        assert evaluate(expr, db.state, counter=counter) == Bag.empty()
        assert counter.tuples_out == 0

    def test_nested_empty_propagates(self, db):
        inner = Product(db.ref("log"), db.ref("big"))
        expr = Monus(inner.project([0], ["x"]), inner.project([1], ["x"]))
        counter = CostCounter()
        assert evaluate(expr, db.state, counter=counter) == Bag.empty()
        assert counter.tuples_out == 0

    def test_union_of_two_empties_short_circuits(self, db):
        counter = CostCounter()
        expr = db.ref("log").union_all(db.ref("log"))
        assert evaluate(expr, db.state, counter=counter) == Bag.empty()
        assert counter.tuples_out == 0

    def test_union_with_one_nonempty_side_still_evaluates(self, db):
        counter = CostCounter()
        expr = db.ref("log").project([0], ["a"]).union_all(db.ref("big").project([0], ["a"]))
        result = evaluate(expr, db.state, counter=counter)
        assert len(result) == 500


class TestMonusIdentity:
    def test_monus_with_empty_right_is_free_identity(self, db):
        expr = Monus(db.ref("big"), db.ref("log"))
        counter = CostCounter()
        result = evaluate(expr, db.state, counter=counter)
        assert result == db["big"]
        # Only the scan of 'big' is charged; no monus op.
        assert counter.by_operator.get("monus", 0) == 0

    def test_monus_probe_against_stored_table(self, db):
        db.load("log", [(1, 1)])
        small = table("small", ["a", "b"])
        state = {**db.state, "small": Bag([(1, 1), (2, 2)])}
        expr = Monus(small, db.ref("log"))
        counter = CostCounter()
        result = evaluate(expr, state, counter=counter)
        assert result == Bag([(2, 2)])
        assert counter.by_operator.get("probe", 0) == 2  # distinct left rows


@pytest.mark.parametrize("seed", range(25))
def test_short_circuits_never_change_values(seed):
    """Random queries over databases with some empty tables: the
    in-memory engine (with all short-circuits) matches SQLite."""
    generator = RandomExpressionGenerator(seed, max_rows=4)
    db = generator.database()
    # Force at least one empty table.
    first = db.external_tables()[0]
    db.set_table(first, Bag.empty())
    query = generator.query(db, depth=5)
    with SQLiteBackend() as backend:
        backend.sync_from(db)
        assert backend.evaluate(query) == db.evaluate(query)
