"""Unit + property tests for MapProject and arithmetic terms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import Literal, MapProject, table
from repro.algebra.predicates import Arith, attr, const
from repro.algebra.rewrite import is_empty_literal, optimize
from repro.algebra.schema import Schema
from repro.core.differential import differentiate
from repro.core.substitution import FactoredSubstitution
from repro.errors import SchemaError

T = table("T", ["a", "b"])
STATE = {"T": Bag([(1, 2), (1, 2), (3, 4)])}


class TestArith:
    def test_nested_arithmetic(self):
        term = Arith("*", Arith("+", attr("a"), attr("b")), const(10))
        assert term.bind(T.schema())((1, 2)) == 30

    def test_none_propagates(self):
        term = Arith("+", attr("a"), const(None))
        assert term.bind(T.schema())((1, 2)) is None

    def test_string_arithmetic_is_none(self):
        term = Arith("+", attr("a"), const("x"))
        assert term.bind(T.schema())(("y", 2)) is None

    def test_division_by_zero_is_none(self):
        term = Arith("/", attr("a"), attr("b"))
        assert term.bind(T.schema())((1, 0)) is None

    def test_unknown_operator(self):
        with pytest.raises(SchemaError):
            Arith("%", attr("a"), attr("b"))

    def test_attributes_collected(self):
        term = Arith("-", attr("a"), Arith("*", attr("b"), const(2)))
        assert term.attributes() == frozenset({"a", "b"})

    def test_str(self):
        assert str(Arith("+", attr("a"), const(1))) == "(a + 1)"


class TestMapProjectNode:
    def test_schema(self):
        expr = MapProject((attr("a"),), T, ("x",))
        assert expr.schema() == Schema(["x"])

    def test_name_count_validated(self):
        with pytest.raises(SchemaError):
            MapProject((attr("a"),), T, ("x", "y"))

    def test_empty_terms_rejected(self):
        with pytest.raises(SchemaError):
            MapProject((), T, ())

    def test_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError):
            MapProject((attr("zzz"),), T, ("x",))

    def test_substitution_descends(self):
        other = table("T2", ["a", "b"])
        expr = MapProject((attr("a"),), T, ("x",))
        assert expr.substitute({"T": other}).tables() == frozenset({"T2"})

    def test_evaluation_sums_collapsing_multiplicities(self):
        expr = MapProject((Arith("+", attr("a"), attr("b")),), T, ("s",))
        assert evaluate(expr, STATE) == Bag([(3,), (3,), (7,)])

    def test_evaluation_cost_recorded(self):
        counter = CostCounter()
        evaluate(MapProject((attr("a"),), T, ("x",)), STATE, counter=counter)
        assert counter.by_operator["map"] == 3  # three output copies


class TestOptimizer:
    def test_map_over_empty_folds(self):
        empty = Literal(Bag.empty(), Schema(["a", "b"]))
        expr = MapProject((attr("a"),), empty, ("x",))
        assert is_empty_literal(optimize(expr))

    def test_map_over_literal_folds(self):
        lit = Literal(Bag([(1, 2)]), Schema(["a", "b"]))
        expr = MapProject((Arith("*", attr("a"), const(5)),), lit, ("x",))
        optimized = optimize(expr)
        assert isinstance(optimized, Literal)
        assert optimized.bag == Bag([(5,)])


rows = st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3))
bags = st.lists(rows, max_size=8).map(Bag)


@st.composite
def delta(draw):
    value = draw(bags)
    keep = {}
    for row, count in value.items():
        kept = draw(st.integers(min_value=0, max_value=count))
        if kept:
            keep[row] = kept
    return value, Bag.from_counts(keep), draw(bags)


@given(delta())
def test_differentiation_theorem2_for_maps(instance):
    """Theorem 2 extends to MapProject (the Π argument generalizes)."""
    value, delete, insert = instance
    state = {"T": value}
    schemas = {"T": Schema(["a", "b"])}
    eta = FactoredSubstitution.literal({"T": (delete, insert)}, schemas)
    query = MapProject(
        (Arith("+", attr("a"), attr("b")), Arith("*", attr("a"), const(2))),
        table("T", ["a", "b"]),
        ("s", "d"),
    )
    del_expr, add_expr = differentiate(eta, query)
    new_value = evaluate(eta.apply(query), state)
    old_value = evaluate(query, state)
    del_value = evaluate(del_expr, state)
    add_value = evaluate(add_expr, state)
    assert new_value == old_value.monus(del_value).union_all(add_value)
    assert del_value.issubbag(old_value)


@given(bags)
def test_sqlite_agrees_on_maps(value):
    from repro.storage.database import Database
    from repro.storage.sqlite_backend import SQLiteBackend

    db = Database()
    db.create_table("T", ["a", "b"], rows=value)
    expr = MapProject(
        (Arith("-", attr("a"), attr("b")), Arith("/", attr("b"), const(2)), const("tag")),
        db.ref("T"),
        ("diff", "half", "tag"),
    )
    with SQLiteBackend() as backend:
        backend.sync_from(db)
        assert backend.evaluate(expr) == db.evaluate(expr)
