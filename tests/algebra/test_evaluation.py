"""Unit tests for the memoizing evaluator and cost counters."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import (
    DupElim,
    Monus,
    Product,
    Project,
    Select,
    UnionAll,
    empty,
    singleton,
    table,
)
from repro.algebra.predicates import Comparison, attr, const
from repro.algebra.schema import Schema
from repro.errors import UnknownTableError

R = table("R", ["a", "b"])
W = table("W", ["x"])

STATE = {
    "R": Bag([(1, 10), (1, 10), (2, 20)]),
    "W": Bag([(1,), (2,), (2,)]),
}


class TestOperators:
    def test_table_ref(self):
        assert evaluate(R, STATE) == STATE["R"]

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            evaluate(table("missing", ["x"]), STATE)

    def test_literal(self):
        assert evaluate(singleton((5,), Schema(["x"])), STATE) == Bag([(5,)])

    def test_empty_literal(self):
        assert evaluate(empty(Schema(["x"])), STATE) == Bag.empty()

    def test_select(self):
        expr = Select(Comparison("=", attr("a"), const(1)), R)
        assert evaluate(expr, STATE) == Bag([(1, 10), (1, 10)])

    def test_project(self):
        expr = Project(("a",), R)
        assert evaluate(expr, STATE) == Bag([(1,), (1,), (2,)])

    def test_dedup(self):
        assert evaluate(DupElim(R), STATE) == Bag([(1, 10), (2, 20)])

    def test_union_all(self):
        expr = UnionAll(W, W)
        assert evaluate(expr, STATE) == Bag([(1,), (1,), (2,), (2,), (2,), (2,)])

    def test_monus(self):
        expr = Monus(W, singleton((2,), Schema(["x"])))
        assert evaluate(expr, STATE) == Bag([(1,), (2,)])

    def test_product(self):
        expr = Product(W, W)
        result = evaluate(expr, STATE)
        assert len(result) == 9
        assert result.multiplicity((2, 2)) == 4


class TestMemoization:
    def test_shared_subtree_costed_once(self):
        counter = CostCounter()
        shared = Project(("a",), R)
        expr = UnionAll(shared, shared)
        evaluate(expr, STATE, counter=counter)
        # scan(3) + project(3) once, union(6): not scan+project twice.
        assert counter.by_operator["scan"] == 3
        assert counter.by_operator["project"] == 3
        assert counter.by_operator["union_all"] == 6

    def test_structurally_equal_subtrees_share(self):
        counter = CostCounter()
        expr = UnionAll(Project(("a",), R), Project(("a",), R))
        evaluate(expr, STATE, counter=counter)
        assert counter.by_operator["project"] == 3

    def test_memo_shared_across_calls(self):
        counter = CostCounter()
        memo = {}
        evaluate(R, STATE, counter=counter, memo=memo)
        evaluate(R, STATE, counter=counter, memo=memo)
        assert counter.by_operator["scan"] == 3  # second call hits the memo


class TestMemoContract:
    """The memo is scoped to ONE state — reuse across states is unsafe.

    This pins down the documented contract (see the warning on
    ``evaluate``): the memo knows nothing about which state produced an
    entry, so sharing one dict across calls against different states
    returns stale results.  Callers needing safe cross-state reuse must
    go through the compiled executor, whose per-node results are
    invalidated by table version stamps (tests/exec/test_executor.py).
    """

    def test_shared_memo_within_one_state_reuses_results(self):
        shared = Project(("a",), R)
        memo = {}
        counter = CostCounter()
        evaluate(shared, STATE, counter=counter, memo=memo)
        evaluate(UnionAll(shared, shared), STATE, counter=counter, memo=memo)
        # R holds 3 tuples and is scanned once overall (3, not 6).
        assert counter.by_operator["scan"] == 3

    def test_shared_memo_across_states_returns_stale_results(self):
        expr = Project(("a",), R)
        memo = {}
        first = evaluate(expr, STATE, counter=None, memo=memo)
        changed = dict(STATE, R=Bag([(7, 70)]))
        stale = evaluate(expr, changed, counter=None, memo=memo)
        # The memo wins over the new state: this IS the documented hazard.
        assert stale == first
        assert stale != evaluate(expr, changed)
        # A fresh memo (the default) sees the new state.
        assert evaluate(expr, changed, memo={}) == Bag([(7,)])


class TestCostCounter:
    def test_records_tuples_and_evaluations(self):
        counter = CostCounter()
        evaluate(Project(("a",), R), STATE, counter=counter)
        assert counter.tuples_out == 6  # 3 scanned + 3 projected
        assert counter.evaluations == 2

    def test_snapshot(self):
        counter = CostCounter()
        evaluate(R, STATE, counter=counter)
        snap = counter.snapshot()
        assert snap["tuples_out"] == 3
        # Per-operator totals are nested so they can never shadow the
        # top-level keys (a "tuples_out" operator would have collided).
        assert snap["operators"] == {"scan": 3}
        assert "scan" not in snap

    def test_reset(self):
        counter = CostCounter()
        evaluate(R, STATE, counter=counter)
        counter.reset()
        assert counter.tuples_out == 0
        assert counter.by_operator == {}

    def test_counter_optional(self):
        assert evaluate(R, STATE) == STATE["R"]
