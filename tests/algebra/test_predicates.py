"""Unit tests for the quantifier-free predicate language."""

import pytest

from repro.algebra.predicates import (
    And,
    Comparison,
    Not,
    Or,
    TruePredicate,
    attr,
    const,
)
from repro.algebra.schema import Schema
from repro.errors import SchemaError

SCHEMA = Schema(["a", "b"])


def check(predicate, row):
    return predicate.bind(SCHEMA)(row)


class TestTerms:
    def test_attr_binds_to_position(self):
        term = attr("b").bind(SCHEMA)
        assert term((1, 2)) == 2

    def test_const_ignores_row(self):
        term = const(42).bind(SCHEMA)
        assert term((1, 2)) == 42

    def test_const_rejects_exotic_types(self):
        with pytest.raises(SchemaError):
            const(object())

    def test_const_str_rendering_escapes_quotes(self):
        assert str(const("o'hare")) == "'o''hare'"

    def test_const_none_renders_null(self):
        assert str(const(None)) == "NULL"

    def test_attr_attributes(self):
        assert attr("a").attributes() == frozenset({"a"})
        assert const(1).attributes() == frozenset()


class TestComparison:
    @pytest.mark.parametrize(
        "op,row,expected",
        [
            ("=", (1, 1), True),
            ("=", (1, 2), False),
            ("!=", (1, 2), True),
            ("<", (1, 2), True),
            ("<=", (2, 2), True),
            (">", (3, 2), True),
            (">=", (1, 2), False),
        ],
    )
    def test_operators(self, op, row, expected):
        predicate = Comparison(op, attr("a"), attr("b"))
        assert check(predicate, row) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(SchemaError):
            Comparison("~", attr("a"), attr("b"))

    def test_comparison_with_constant(self):
        predicate = Comparison(">", attr("a"), const(5))
        assert check(predicate, (6, 0))
        assert not check(predicate, (5, 0))

    def test_none_comparisons_are_false(self):
        equal = Comparison("=", attr("a"), const(None))
        assert not check(equal, (None, 0))
        less = Comparison("<", attr("a"), const(1))
        assert not check(less, (None, 0))

    def test_cross_type_ordering_is_false(self):
        less = Comparison("<", attr("a"), const("x"))
        assert not check(less, (1, 0))

    def test_cross_type_equality_is_false(self):
        equal = Comparison("=", attr("a"), const("1"))
        assert not check(equal, (1, 0))

    def test_unknown_attribute_fails_at_bind(self):
        predicate = Comparison("=", attr("zzz"), const(1))
        with pytest.raises(SchemaError):
            predicate.bind(SCHEMA)

    def test_str(self):
        assert str(Comparison("=", attr("a"), const(1))) == "a = 1"


class TestConnectives:
    def test_and(self):
        predicate = And(Comparison(">", attr("a"), const(0)), Comparison("<", attr("b"), const(9)))
        assert check(predicate, (1, 5))
        assert not check(predicate, (0, 5))

    def test_or(self):
        predicate = Or(Comparison("=", attr("a"), const(1)), Comparison("=", attr("b"), const(1)))
        assert check(predicate, (1, 0))
        assert check(predicate, (0, 1))
        assert not check(predicate, (0, 0))

    def test_not(self):
        predicate = Not(Comparison("=", attr("a"), const(1)))
        assert not check(predicate, (1, 0))
        assert check(predicate, (2, 0))

    def test_not_of_null_comparison_is_true(self):
        # NULL = 1 is "false" in our two-valued convention, so NOT flips it.
        predicate = Not(Comparison("=", attr("a"), const(1)))
        assert check(predicate, (None, 0))

    def test_operator_sugar(self):
        left = Comparison("=", attr("a"), const(1))
        right = Comparison("=", attr("b"), const(2))
        assert check(left & right, (1, 2))
        assert check(left | right, (1, 0))
        assert check(~left, (0, 0))

    def test_true_predicate(self):
        assert check(TruePredicate(), (0, 0))

    def test_attributes_collected(self):
        predicate = And(
            Comparison("=", attr("a"), const(1)),
            Not(Comparison("<", attr("b"), attr("a"))),
        )
        assert predicate.attributes() == frozenset({"a", "b"})

    def test_str_nesting(self):
        predicate = Or(Not(TruePredicate()), Comparison("<", attr("a"), attr("b")))
        assert str(predicate) == "((NOT TRUE) OR a < b)"
