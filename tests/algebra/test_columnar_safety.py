"""Exception safety of in-place columnar mutation.

``ColumnBatch.append_patch`` mutates a live batch that every later read
of the table shares — a fault that left one column longer than another
would silently corrupt every subsequent evaluation.  The stage-and-swap
structure makes the append all-or-nothing; these tests pin that down by
raising at the commit seam and checking the batch is bit-for-bit
untouched, then that a clean retry applies the patch exactly once.
"""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.columnar import ColumnBatch
from repro.robustness.faults import INJECTOR, InjectedCrash


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


def batch_of(bag, arity):
    return ColumnBatch.from_pairs(bag.items(), arity)


def snapshot(batch):
    return (
        tuple(tuple(column) for column in batch.columns),
        tuple(batch.mults),
    )


def test_fault_mid_append_leaves_batch_untouched():
    before = Bag([(1, "x"), (2, "y"), (2, "y")])
    batch = batch_of(before, 2)
    pristine = snapshot(batch)
    INJECTOR.arm("crash-mid-consolidate", hit=1)
    with pytest.raises(InjectedCrash):
        batch.append_patch(Bag([(2, "y")]), Bag([(3, "z")]), before)
    # No ragged columns, no partial tail: the staged rows died with the
    # exception and the committed lists never grew.
    assert snapshot(batch) == pristine
    assert len({len(column) for column in batch.columns}) == 1
    assert batch.net_counts() == dict(before.items())


def test_clean_retry_applies_patch_exactly_once():
    before = Bag([(1, "x"), (2, "y"), (2, "y")])
    batch = batch_of(before, 2)
    delete, insert = Bag([(2, "y")]), Bag([(3, "z")])
    INJECTOR.arm("crash-mid-consolidate", hit=1)
    with pytest.raises(InjectedCrash):
        batch.append_patch(delete, insert, before)
    INJECTOR.reset()
    batch.append_patch(delete, insert, before)
    after = before.patch(delete, insert)
    assert batch.net_counts() == dict(after.items())
    assert batch.consolidate().net_counts() == dict(after.items())


def test_transient_mid_consolidation_preserves_cache_correctness():
    """The vectorized table cache survives a fault at its compaction
    seam: the delta-appended batch stays valid and a later read
    consolidates successfully."""
    from repro.exec.vectorized import TableBatchCache

    cache = TableBatchCache()
    bag = Bag([(1, "x")])
    cache.get("t", bag, 2)
    current = bag
    # Patch the same row over and over: physical rows pile up while the
    # distinct support stays tiny, which is exactly what trips the
    # compaction threshold on the next read.
    for __ in range(50):
        insert = Bag([(0, "y")])
        cache.on_patch("t", Bag(), insert, current, current.union_all(insert))
        current = current.union_all(insert)
    INJECTOR.arm("crash-mid-consolidate", hit=1)
    with pytest.raises(InjectedCrash):
        cache.get("t", current, 2)
    INJECTOR.reset()
    # The failed compaction left the (larger but correct) appended
    # batch in place; the retry consolidates and nets exactly.
    batch = cache.get("t", current, 2)
    assert batch.net_counts() == dict(current.items())
