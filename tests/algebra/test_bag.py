"""Unit tests for the bag kernel (Section 2.1 semantics)."""

import pytest

from repro.algebra.bag import Bag
from repro.errors import SchemaError


def bag(*rows):
    return Bag(rows)


class TestConstruction:
    def test_empty_bag_is_falsy(self):
        assert not Bag.empty()
        assert len(Bag.empty()) == 0

    def test_empty_has_no_arity(self):
        assert Bag.empty().arity is None

    def test_singleton(self):
        b = Bag.singleton((1, 2))
        assert b.multiplicity((1, 2)) == 1
        assert len(b) == 1

    def test_duplicates_accumulate(self):
        b = bag((1,), (1,), (2,))
        assert b.multiplicity((1,)) == 2
        assert b.multiplicity((2,)) == 1
        assert len(b) == 3

    def test_from_counts(self):
        b = Bag.from_counts({(1,): 3, (2,): 0, (3,): -1})
        assert b.multiplicity((1,)) == 3
        assert (2,) not in b
        assert (3,) not in b

    def test_mixed_arity_rejected(self):
        with pytest.raises(SchemaError):
            bag((1,), (1, 2))

    def test_non_tuple_rows_rejected(self):
        with pytest.raises(SchemaError):
            Bag([[1, 2]])
        with pytest.raises(SchemaError):
            Bag.from_counts({"x": 1})

    def test_counts_returns_fresh_dict(self):
        b = bag((1,))
        counts = b.counts()
        counts[(1,)] = 99
        assert b.multiplicity((1,)) == 1


class TestIntrospection:
    def test_iteration_yields_each_copy(self):
        b = bag((1,), (1,), (2,))
        assert sorted(b) == [(1,), (1,), (2,)]

    def test_items_yields_multiplicities(self):
        b = bag((1,), (1,))
        assert dict(b.items()) == {(1,): 2}

    def test_support(self):
        assert bag((1,), (1,), (2,)).support == frozenset({(1,), (2,)})

    def test_distinct_count(self):
        assert bag((1,), (1,), (2,)).distinct_count() == 2

    def test_contains(self):
        b = bag((1,))
        assert (1,) in b
        assert (2,) not in b

    def test_equality_ignores_insertion_order(self):
        assert bag((1,), (2,)) == bag((2,), (1,))

    def test_equality_respects_multiplicity(self):
        assert bag((1,), (1,)) != bag((1,))

    def test_hash_consistent_with_equality(self):
        assert hash(bag((1,), (2,))) == hash(bag((2,), (1,)))

    def test_equality_with_non_bag(self):
        assert bag((1,)) != [(1,)]

    def test_repr_mentions_multiplicity(self):
        assert "x2" in repr(bag((1,), (1,)))


class TestSubbag:
    def test_empty_is_subbag_of_everything(self):
        assert Bag.empty().issubbag(bag((1,)))

    def test_reflexive(self):
        b = bag((1,), (1,))
        assert b.issubbag(b)

    def test_multiplicity_matters(self):
        assert bag((1,)).issubbag(bag((1,), (1,)))
        assert not bag((1,), (1,)).issubbag(bag((1,)))

    def test_le_operator(self):
        assert bag((1,)) <= bag((1,), (2,))


class TestUnionAll:
    def test_multiplicities_add(self):
        assert bag((1,)).union_all(bag((1,), (2,))) == bag((1,), (1,), (2,))

    def test_identity(self):
        b = bag((1,))
        assert b.union_all(Bag.empty()) == b
        assert Bag.empty().union_all(b) == b

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            bag((1,)).union_all(bag((1, 2)))


class TestMonus:
    def test_truncated_subtraction(self):
        left = bag((1,), (1,), (2,))
        right = bag((1,), (2,), (2,))
        assert left.monus(right) == bag((1,))

    def test_floors_at_zero(self):
        assert bag((1,)).monus(bag((1,), (1,))) == Bag.empty()

    def test_self_cancellation(self):
        b = bag((1,), (1,), (2,))
        assert b.monus(b) == Bag.empty()

    def test_monus_empty(self):
        b = bag((1,))
        assert b.monus(Bag.empty()) == b

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            bag((1,)).monus(bag((1, 2)))


class TestDedup:
    def test_all_multiplicities_become_one(self):
        assert bag((1,), (1,), (2,)).dedup() == bag((1,), (2,))

    def test_idempotent(self):
        b = bag((1,), (1,))
        assert b.dedup().dedup() == b.dedup()

    def test_empty(self):
        assert Bag.empty().dedup() == Bag.empty()


class TestProduct:
    def test_tuples_concatenate(self):
        assert bag((1,)).product(bag(("a",))) == bag((1, "a"))

    def test_multiplicities_multiply(self):
        left = bag((1,), (1,))
        right = bag(("a",), ("a",), ("b",))
        result = left.product(right)
        assert result.multiplicity((1, "a")) == 4
        assert result.multiplicity((1, "b")) == 2

    def test_product_with_empty(self):
        assert bag((1,)).product(Bag.empty()) == Bag.empty()
        assert Bag.empty().product(bag((1,))) == Bag.empty()


class TestSelect:
    def test_predicate_filters_rows(self):
        b = bag((1,), (2,), (3,))
        assert b.select(lambda row: row[0] > 1) == bag((2,), (3,))

    def test_keeps_multiplicity(self):
        b = bag((1,), (1,), (2,))
        assert b.select(lambda row: row[0] == 1) == bag((1,), (1,))


class TestProject:
    def test_positional_projection(self):
        b = bag((1, "a"), (2, "b"))
        assert b.project((1,)) == bag(("a",), ("b",))

    def test_does_not_eliminate_duplicates(self):
        b = bag((1, "a"), (1, "b"))
        assert b.project((0,)) == bag((1,), (1,))

    def test_repeated_positions(self):
        assert bag((1, 2)).project((0, 0)) == bag((1, 1))

    def test_out_of_range_position(self):
        with pytest.raises(SchemaError):
            bag((1,)).project((3,))

    def test_empty_projection_collapses_to_unit_rows(self):
        b = bag((1,), (2,))
        assert b.project(()) == Bag.from_counts({(): 2})


class TestDerivedOps:
    def test_min_per_row_minimum(self):
        left = bag((1,), (1,), (2,))
        right = bag((1,), (2,), (2,))
        assert left.min_(right) == bag((1,), (2,))

    def test_min_matches_paper_definition(self):
        # Q1 min Q2 = Q1 ∸ (Q1 ∸ Q2)
        left = bag((1,), (1,), (2,), (3,))
        right = bag((1,), (2,), (2,))
        assert left.min_(right) == left.monus(left.monus(right))

    def test_max_per_row_maximum(self):
        left = bag((1,), (1,), (2,))
        right = bag((1,), (2,), (2,))
        result = left.max_(right)
        assert result.multiplicity((1,)) == 2
        assert result.multiplicity((2,)) == 2

    def test_max_matches_paper_definition(self):
        # Q1 max Q2 = Q1 ⊎ (Q2 ∸ Q1)
        left = bag((1,), (1,), (3,))
        right = bag((1,), (2,), (2,))
        assert left.max_(right) == left.union_all(right.monus(left))

    def test_except_removes_all_copies(self):
        left = bag((1,), (1,), (2,))
        right = bag((1,))
        assert left.except_(right) == bag((2,))

    def test_except_differs_from_monus(self):
        left = bag((1,), (1,))
        right = bag((1,))
        assert left.except_(right) == Bag.empty()
        assert left.monus(right) == bag((1,))
