"""Unit tests for schemas and attribute resolution."""

import pytest

from repro.algebra.schema import Schema
from repro.errors import SchemaError


class TestConstruction:
    def test_attributes_preserved_in_order(self):
        schema = Schema(["b", "a", "c"])
        assert schema.attributes == ("b", "a", "c")

    def test_arity_and_len(self):
        schema = Schema(["a", "b"])
        assert schema.arity == 2
        assert len(schema) == 2

    def test_iteration(self):
        assert list(Schema(["a", "b"])) == ["a", "b"]

    def test_empty_schema_allowed(self):
        assert Schema([]).arity == 0

    def test_rejects_empty_names(self):
        with pytest.raises(SchemaError):
            Schema([""])

    def test_rejects_non_string_names(self):
        with pytest.raises(SchemaError):
            Schema([1])

    def test_duplicate_names_allowed_at_construction(self):
        # Self-joins legitimately produce duplicate names.
        schema = Schema(["a", "a"])
        assert schema.arity == 2


class TestResolution:
    def test_index_of(self):
        schema = Schema(["a", "b", "c"])
        assert schema.index_of("b") == 1

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError, match="unknown attribute"):
            Schema(["a"]).index_of("z")

    def test_ambiguous_attribute(self):
        with pytest.raises(SchemaError, match="ambiguous"):
            Schema(["a", "a"]).index_of("a")

    def test_positions_of(self):
        schema = Schema(["a", "b", "c"])
        assert schema.positions_of(["c", "a"]) == (2, 0)

    def test_contains(self):
        schema = Schema(["a"])
        assert "a" in schema
        assert "b" not in schema


class TestDerivation:
    def test_concat(self):
        assert Schema(["a"]).concat(Schema(["b"])) == Schema(["a", "b"])

    def test_project(self):
        assert Schema(["a", "b", "c"]).project(["c", "a"]) == Schema(["c", "a"])

    def test_project_validates(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).project(["z"])

    def test_rename(self):
        schema = Schema(["a", "b"]).rename({"a": "x"})
        assert schema == Schema(["x", "b"])

    def test_qualify(self):
        assert Schema(["a", "b"]).qualify("t") == Schema(["t.a", "t.b"])

    def test_union_compatible(self):
        assert Schema(["a"]).union_compatible(Schema(["z"]))
        assert not Schema(["a"]).union_compatible(Schema(["a", "b"]))


class TestEquality:
    def test_equality_by_names(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])

    def test_hashable(self):
        assert hash(Schema(["a"])) == hash(Schema(["a"]))

    def test_not_equal_to_tuple(self):
        assert Schema(["a"]) != ("a",)
