"""Unit tests for the experiment harness and report formatting."""

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import table
from repro.bench.harness import ExperimentResult, measure_cost, measure_wall
from repro.bench.report import format_cell, format_table


class TestMeasurement:
    def test_measure_wall_returns_result_and_time(self):
        result, seconds = measure_wall(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0

    def test_measure_cost_counts_delta(self):
        counter = CostCounter()
        state = {"R": Bag([(1,), (2,)])}
        expr = table("R", ["a"])
        evaluate(expr, state, counter=counter)  # pre-existing cost

        result, ops = measure_cost(counter, lambda: evaluate(expr, state, counter=counter))
        assert result == state["R"]
        assert ops == 2


class TestExperimentResult:
    def test_rows_accumulate(self):
        result = ExperimentResult("EX")
        result.add(x=1, y="a")
        result.add(x=2, y="b")
        assert result.column("x") == [1, 2]
        assert result.column("missing") == [None, None]

    def test_report_contains_header_and_rows(self):
        result = ExperimentResult("EX", "a description")
        result.add(metric=3.14159, label="pi")
        report = result.report()
        assert "== EX ==" in report
        assert "a description" in report
        assert "3.142" in report  # 4 significant digits


class TestFormatting:
    def test_format_cell_float_precision(self):
        assert format_cell(3.14159) == "3.142"

    def test_format_cell_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_format_cell_passthrough(self):
        assert format_cell("text") == "text"
        assert format_cell(7) == "7"

    def test_empty_table(self):
        assert format_table([]) == "(no rows)"

    def test_alignment(self):
        rows = [{"col": "short"}, {"col": "a-much-longer-value"}]
        lines = format_table(rows).splitlines()
        assert len({len(line.rstrip()) for line in lines[2:]}) == 2  # padded bodies
        assert lines[0].startswith("col")

    def test_missing_cells_render_dash(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "-" in text.splitlines()[2]

    def test_explicit_column_order(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_column_order_follows_first_appearance(self):
        rows = [{"z": 1}, {"a": 2, "z": 3}]
        header = format_table(rows).splitlines()[0]
        assert header.index("z") < header.index("a")
