"""Scripted crash/recovery tests: one scenario per fault point."""

import pytest

from repro.errors import RecoveryError
from repro.robustness.durable import DurableWarehouse
from repro.robustness.faults import INJECTOR, InjectedCrash
from repro.robustness.journal import IntentJournal, journal_path
from repro.robustness.recovery import main as recover_main
from repro.robustness.recovery import recover
from repro.storage.persistence import staging_path


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


def build(path) -> DurableWarehouse:
    warehouse = DurableWarehouse(path)
    warehouse.create_table("sales", ("custId", "qty"))
    warehouse.load("sales", [(1, 2), (2, 5), (1, 1), (3, 4)])
    warehouse.define_view("V", "SELECT custId, qty FROM sales WHERE qty != 1", scenario="combined")
    warehouse.transaction(token="seed-txn").insert("sales", [(4, 6)]).delete("sales", [(1, 1)]).run()
    return warehouse


def crash_during(warehouse: DurableWarehouse, point: str, op) -> None:
    """Arm ``point``, run ``op``, and simulate the process death."""
    INJECTOR.arm(point)
    with pytest.raises(InjectedCrash):
        op(warehouse)
    INJECTOR.reset()
    warehouse.close()  # only the fds; in-memory state is abandoned


def oracle_view(tmp_path):
    """The view contents of an uninterrupted identical run."""
    warehouse = build(tmp_path / "oracle.db")
    warehouse.refresh("V")
    contents = warehouse.query("V")
    warehouse.close()
    return contents


#: fault point → recovery action expected when a *refresh* is interrupted.
REFRESH_CASES = {
    "crash-before-journal": "none",           # nothing journaled, nothing ran
    "crash-after-journal": "rolled_forward",  # intent only; snapshot pre-op
    "crash-mid-refresh": "rolled_forward",    # died inside the critical section
    "crash-mid-apply": "rolled_forward",      # died mid Database.apply commit
    "crash-mid-checkpoint": "rolled_forward", # temp written, os.replace lost
    "crash-after-checkpoint": "already_applied",  # snapshot post-op, mark lost
    "crash-after-commit": "none",             # fully durable before the death
}


@pytest.mark.parametrize("point", sorted(REFRESH_CASES))
def test_refresh_crash_recovers_green(tmp_path, point):
    expected_action = REFRESH_CASES[point]
    path = tmp_path / "wh.db"
    warehouse = build(path)
    crash_during(warehouse, point, lambda w: w.refresh("V"))

    report = recover(path)
    assert report.action == expected_action
    assert report.green, report.format()

    # After recovery the warehouse reopens and matches an uninterrupted run,
    # modulo ops that never started (the client would simply retry those).
    reopened = DurableWarehouse.open(path, auto_recover=False)
    reopened.refresh("V")
    assert reopened.query("V") == oracle_view(tmp_path)
    reopened.check_invariants()
    reopened.close()


@pytest.mark.parametrize("point", ["crash-mid-execute", "crash-after-journal"])
def test_transaction_crash_rolls_forward_from_journaled_deltas(tmp_path, point):
    path = tmp_path / "wh.db"
    warehouse = build(path)
    crash_during(
        warehouse, point,
        lambda w: w.transaction(token="t-crash").insert("sales", [(9, 9)]).run(),
    )

    report = recover(path)
    assert report.action == "rolled_forward"
    assert report.green, report.format()

    reopened = DurableWarehouse.open(path, auto_recover=False)
    assert (9, 9) in reopened.sql("SELECT custId, qty FROM sales")
    # The replayed token is committed: a client retry is a no-op.
    assert not reopened.transaction(token="t-crash").insert("sales", [(9, 9)]).run()
    reopened.check_invariants()
    reopened.close()


def test_propagate_crash_rolls_forward(tmp_path):
    path = tmp_path / "wh.db"
    warehouse = build(path)
    crash_during(warehouse, "crash-mid-propagate", lambda w: w.propagate("V"))
    report = recover(path)
    assert report.action == "rolled_forward"
    assert report.green, report.format()


def test_ddl_crash_rolls_back(tmp_path):
    path = tmp_path / "wh.db"
    warehouse = build(path)
    crash_during(
        warehouse, "crash-after-journal",
        lambda w: w.create_table("items", ("itemNo", "price")),
    )
    report = recover(path)
    assert report.action == "rolled_back"
    assert report.green, report.format()
    reopened = DurableWarehouse.open(path, auto_recover=False)
    assert not reopened.db.has_table("items")  # the DDL was undone
    reopened.close()


def test_ddl_that_reached_disk_is_kept(tmp_path):
    path = tmp_path / "wh.db"
    warehouse = build(path)
    crash_during(
        warehouse, "crash-after-checkpoint",
        lambda w: w.create_table("items", ("itemNo", "price")),
    )
    report = recover(path)
    assert report.action == "already_applied"
    reopened = DurableWarehouse.open(path, auto_recover=False)
    assert reopened.db.has_table("items")
    reopened.close()


def test_recovery_is_idempotent(tmp_path):
    path = tmp_path / "wh.db"
    warehouse = build(path)
    crash_during(warehouse, "crash-mid-refresh", lambda w: w.refresh("V"))
    first = recover(path)
    assert first.action == "rolled_forward"
    second = recover(path)
    assert second.action == "none" and second.pending is None
    assert second.green


def test_crash_during_recovery_then_recover_again(tmp_path):
    path = tmp_path / "wh.db"
    warehouse = build(path)
    crash_during(warehouse, "crash-mid-refresh", lambda w: w.refresh("V"))
    # Recovery itself dies inside the re-run refresh...
    INJECTOR.arm("crash-mid-refresh")
    with pytest.raises(InjectedCrash):
        recover(path)
    INJECTOR.reset()
    # ...and a second recovery still converges.
    report = recover(path)
    assert report.action == "rolled_forward"
    assert report.green, report.format()


def test_stray_staging_file_is_discarded(tmp_path):
    path = tmp_path / "wh.db"
    build(path).close()
    staged = staging_path(path)
    staged.write_bytes(b"torn half-written snapshot")
    report = recover(path)
    assert not staged.exists()
    assert report.green


def test_open_auto_recovers(tmp_path):
    path = tmp_path / "wh.db"
    warehouse = build(path)
    crash_during(warehouse, "crash-after-journal", lambda w: w.refresh("V"))
    reopened = DurableWarehouse.open(path)  # auto_recover=True resolves the intent
    assert reopened.journal.pending() is None
    reopened.check_invariants()
    reopened.close()


def test_recover_missing_snapshot_raises(tmp_path):
    with pytest.raises(RecoveryError, match="nothing to recover"):
        recover(tmp_path / "absent.db")


def test_audit_reports_invariant_names(tmp_path):
    path = tmp_path / "wh.db"
    build(path).close()
    report = recover(path)
    assert [audit.invariant for audit in report.audits] == ["INV_C"]
    assert "INV_C holds" in report.format()


class TestCli:
    def test_green_recovery_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "wh.db"
        warehouse = build(path)
        crash_during(warehouse, "crash-mid-refresh", lambda w: w.refresh("V"))
        assert recover_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "rolled forward" in out and "GREEN" in out

    def test_usage(self, capsys):
        assert recover_main([]) == 2
        assert recover_main(["--help"]) == 0
        assert "usage" in capsys.readouterr().out

    def test_dispatch_through_repro_main(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "wh.db"
        build(path).close()
        assert main(["recover", str(path)]) == 0
        assert "journal clean" in capsys.readouterr().out


def test_pending_intent_blocks_new_ops_until_recovered(tmp_path):
    path = tmp_path / "wh.db"
    build(path).close()
    with IntentJournal(journal_path(path)) as journal:
        journal.begin("refresh", view="V")
    with pytest.raises(RecoveryError, match="pending intent"):
        DurableWarehouse.open(path, auto_recover=False)
    recover(path)
    reopened = DurableWarehouse.open(path, auto_recover=False)
    reopened.check_invariants()
    reopened.close()
