"""RVM401: defining views on persistent state without a journal warns."""

import warnings

import pytest

from repro.analysis.diagnostics import AnalysisWarning
from repro.errors import AnalysisError
from repro.robustness.durable import DurableWarehouse
from repro.storage.persistence import load_database, save_database
from repro.warehouse import ViewManager


def persisted_db(tmp_path):
    manager = ViewManager()
    manager.create_table("sales", ("custId", "qty"))
    manager.load("sales", [(1, 2), (2, 3)])
    path = tmp_path / "wh.db"
    save_database(manager.db, path)
    return load_database(path)


VIEW = "SELECT custId, qty FROM sales WHERE qty != 0"


class TestRvm401:
    def test_unjournaled_persistent_database_warns(self, tmp_path):
        manager = ViewManager(persisted_db(tmp_path))
        with pytest.warns(AnalysisWarning, match="RVM401") as caught:
            manager.define_view("V", VIEW, scenario="combined")
        message = str(caught[0].message)
        assert "without journaling" in message
        assert "DurableWarehouse" in message

    def test_strict_install_raises(self, tmp_path):
        manager = ViewManager(persisted_db(tmp_path))
        with pytest.raises(AnalysisError, match="RVM401"):
            manager.define_view("V", VIEW, scenario="combined", strict=True)

    def test_in_memory_database_is_silent(self):
        manager = ViewManager()
        manager.create_table("sales", ("custId", "qty"))
        manager.load("sales", [(1, 2)])
        with warnings.catch_warnings():
            warnings.simplefilter("error", AnalysisWarning)
            manager.define_view("V", VIEW, scenario="combined")

    def test_durable_warehouse_is_silent(self, tmp_path):
        with DurableWarehouse(tmp_path / "wh.db") as warehouse:
            warehouse.create_table("sales", ("custId", "qty"))
            warehouse.load("sales", [(1, 2)])
            with warnings.catch_warnings():
                warnings.simplefilter("error", AnalysisWarning)
                warehouse.define_view("V", VIEW, scenario="combined")

    def test_reopened_durable_warehouse_is_silent(self, tmp_path):
        path = tmp_path / "wh.db"
        with DurableWarehouse(path) as warehouse:
            warehouse.create_table("sales", ("custId", "qty"))
            warehouse.load("sales", [(1, 2)])
        with DurableWarehouse.open(path) as reopened:
            with warnings.catch_warnings():
                warnings.simplefilter("error", AnalysisWarning)
                reopened.define_view("V", VIEW, scenario="combined")
