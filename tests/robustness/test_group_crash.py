"""Scripted crashes during group refresh: recovery must roll forward.

The group-refresh epoch is journaled as a *single* intent, so a crash
anywhere inside it — before any view is patched, between two views'
patches, or after the checkpoint but before the commit mark — must be
resolved by :func:`repro.robustness.recovery.recover` into the same
state an uninterrupted run reaches.  The companion contract is pruning:
on a journaled database the shared log must never prune past the last
*committed* checkpoint, so the entries a roll-forward replay needs are
still there.
"""

import pytest

from repro.robustness.durable import DurableWarehouse
from repro.robustness.faults import INJECTOR, InjectedCrash
from repro.robustness.recovery import recover

VIEW_SQL = {
    "TotalsA": "SELECT item, qty FROM sales WHERE qty >= 2",
    "TotalsB": "SELECT item, qty FROM sales WHERE qty >= 2",
    "Joined": "SELECT sales.item, items.price FROM sales, items WHERE sales.item = items.item",
    "Prices": "SELECT item, price FROM items",
}

SALES = [("apple", 1), ("apple", 3), ("pear", 2), ("plum", 5)]
ITEMS = [("apple", 10), ("pear", 7), ("plum", 3)]

CHURN = [
    {"sales": ([("apple", 1)], [("fig", 4), ("fig", 4)])},
    {"items": ([("plum", 3)], [("plum", 4), ("date", 9)])},
    {"sales": ([("fig", 4)], [("pear", 2)]), "items": ([], [("fig", 1)])},
]


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


def build(path):
    wh = DurableWarehouse(path)
    wh.create_table("sales", ("item", "qty"), rows=SALES)
    wh.create_table("items", ("item", "price"), rows=ITEMS)
    for name, sql in VIEW_SQL.items():
        wh.define_view(name, sql, scenario="shared_log")
    for deltas in CHURN:
        txn = wh.transaction()
        for table, (delete, insert) in deltas.items():
            if delete:
                txn.delete(table, delete)
            if insert:
                txn.insert(table, insert)
        txn.run()
    return wh


@pytest.fixture()
def oracle(tmp_path):
    with build(tmp_path / "oracle.db") as wh:
        wh.refresh_group(parallel=False)
        return {name: wh.query(name) for name in wh.views()}


def assert_recovered_matches(path, oracle):
    with DurableWarehouse.open(path) as wh:  # auto_recover=True
        assert set(wh.views()) == set(oracle)
        for name, expected in oracle.items():
            assert wh.query(name) == expected, name
            assert not wh.is_stale(name), name
        wh.check_invariants()
    # Recovery is idempotent: a second pass finds nothing pending.
    report = recover(path)
    assert report.action == "none" and report.green


@pytest.mark.parametrize("hit", [1, 2, 3, 4])
def test_crash_mid_group_refresh_rolls_forward(tmp_path, oracle, hit):
    """hit=1 dies in the first view's patch; hit>=2 dies mid-group,
    *between* earlier views' applied patches and later ones'."""
    path = tmp_path / "wh.db"
    wh = build(path)
    INJECTOR.arm("crash-mid-refresh", hit=hit)
    with pytest.raises(InjectedCrash):
        wh.refresh_group(parallel=False)
    wh.close()
    INJECTOR.reset()
    assert_recovered_matches(path, oracle)


def test_crash_after_checkpoint_is_already_applied(tmp_path, oracle):
    path = tmp_path / "wh.db"
    wh = build(path)
    INJECTOR.arm("crash-after-checkpoint", hit=1)
    with pytest.raises(InjectedCrash):
        wh.refresh_group(parallel=False)
    wh.close()
    INJECTOR.reset()
    report = recover(path)
    assert report.action == "already_applied"
    assert report.green
    assert_recovered_matches(path, oracle)


def test_crash_before_journal_leaves_pre_state(tmp_path, oracle):
    path = tmp_path / "wh.db"
    wh = build(path)
    INJECTOR.arm("crash-before-journal", hit=1)
    with pytest.raises(InjectedCrash):
        wh.refresh_group()
    wh.close()
    INJECTOR.reset()
    report = recover(path)
    assert report.action == "none"  # intent never reached the journal
    # The views are still stale but a fresh group refresh catches up.
    with DurableWarehouse.open(path) as reopened:
        reopened.refresh_group(parallel=True)
        for name, expected in oracle.items():
            assert reopened.query(name) == expected, name


def test_pruning_defers_to_committed_watermark(tmp_path):
    """On a journaled db the shared log keeps entries a replay may need:
    the prune floor only advances when a checkpoint commits."""
    path = tmp_path / "wh.db"
    wh = build(path)
    group = wh.manager.shared_group()
    assert group.log_size() > 0  # churn is logged, floor not yet advanced

    INJECTOR.arm("crash-mid-refresh", hit=3)
    with pytest.raises(InjectedCrash):
        wh.refresh_group(parallel=False)
    wh.close()
    INJECTOR.reset()

    # The crashed epoch advanced some cursors in memory, but the prune
    # floor stayed at the last committed checkpoint — the reloaded
    # journal replay still finds every entry it needs.
    with DurableWarehouse.open(path) as recovered:
        recovered.check_invariants()
        regroup = recovered.manager.shared_group()
        # After recovery's own committed refresh_group every cursor is
        # at the head and the watermark has advanced: the log drains.
        assert regroup.log_size() == 0


def test_parallel_group_refresh_is_durable(tmp_path, oracle):
    """A clean parallel epoch checkpoints exactly the sequential state."""
    path = tmp_path / "wh.db"
    with build(path) as wh:
        wh.refresh_group(parallel=True, max_workers=4)
        assert wh.manager.exec_stats()["delta_cache_hits"] > 0
    assert_recovered_matches(path, oracle)
