"""The 4-engine chaos grid: crash schedules and transient storms.

The acceptance bar of the self-healing layer, engine by engine: for
>= 50 seeded random crash schedules run on *each* of the four execution
tiers (all governed, so backend flakiness demotes instead of erroring),
killing and recovering the retail workload at every scheduled point
must leave the final view contents **bit-identical** — same content
digests — to an uninterrupted run on the interpreted oracle engine.

Transient-fault storms are the second axis: with every ``flaky-*`` seam
raining seeded ``database is locked`` errors at p = 0.05, a governed
warehouse must complete every refresh with zero client-visible errors,
and any demotions the storm forces must be visible in the metrics
registry, never in an exception.
"""

import os
import random

import pytest

from repro import obs
from repro.robustness.faults import INJECTOR
from repro.robustness.harness import RetailCrashHarness, random_schedule
from repro.robustness.journal import bag_digest
from repro.robustness.recovery import recover

# Every test derives its rng from (SEED, engine, batch) alone, so the
# grid is order-independent: safe under pytest-randomly shuffling, and
# `-m chaos -p no:randomly` with REPRO_CHAOS_SCHEDULES pinned replays
# CI's exact matrix.
pytestmark = pytest.mark.chaos

SEED = 1996  # pinned: the year of the paper
# The acceptance bar is 50 schedules per engine; CI's chaos-grid job
# dials this down (REPRO_CHAOS_SCHEDULES) to keep the matrix quick.
SCHEDULES_PER_ENGINE = int(os.environ.get("REPRO_CHAOS_SCHEDULES", "50"))
BATCHES = 5

#: The grid's engine axis. Every run is governed: the ladder is the
#: mechanism under test, and on the interpreted floor it degenerates to
#: a plain evaluation (no breakers), so governance is uniform.
ENGINES = ["interpreted", "compiled", "vectorized", "sqlite"]


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


@pytest.fixture(scope="module")
def oracle_digests(tmp_path_factory):
    """Content digests of an uninterrupted run on the interpreted oracle."""
    harness = RetailCrashHarness(
        tmp_path_factory.mktemp("oracle") / "wh.db", exec_mode="interpreted"
    )
    result = harness.run()
    assert result.crashes == 0
    return {name: bag_digest(bag) for name, bag in result.contents.items()}


def digests(result):
    return {name: bag_digest(bag) for name, bag in result.contents.items()}


@pytest.mark.parametrize("engine", ENGINES)
def test_uninterrupted_run_matches_oracle_bit_for_bit(tmp_path, oracle_digests, engine):
    harness = RetailCrashHarness(tmp_path / "wh.db", exec_mode=engine, governed=True)
    result = harness.run()
    assert result.crashes == 0
    assert result.green
    assert digests(result) == oracle_digests


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("batch", range(BATCHES))
def test_chaos_grid_crash_schedules_converge(tmp_path, oracle_digests, engine, batch):
    """50 seeded random crash schedules per engine, digest-checked."""
    rng = random.Random(SEED + 100 * ENGINES.index(engine) + batch)
    harness = RetailCrashHarness(tmp_path / "wh.db", exec_mode=engine, governed=True)
    for index in range(SCHEDULES_PER_ENGINE // BATCHES):
        schedule = random_schedule(rng)
        result = harness.run(schedule)
        context = f"{engine} batch {batch} schedule {index}: {schedule}"
        assert result.green, context
        assert digests(result) == oracle_digests, context
        # Recovery after the dust settles is a no-op (idempotence).
        report = recover(harness.path)
        assert report.action == "none" and report.green, context


@pytest.mark.parametrize("engine", ENGINES)
def test_storm_completes_with_zero_client_errors(tmp_path, oracle_digests, engine):
    """p = 0.05 storm on every flaky seam: the workload never sees it."""
    harness = RetailCrashHarness(tmp_path / "wh.db", exec_mode=engine, governed=True)
    stack = obs.enable(tracer=False, accounting=False)
    try:
        # run() raising anything at all would be a client-visible error.
        result = harness.run(storm_seed=SEED, storm_probability=0.05)
        counters = {
            name: snap["value"]
            for name, snap in stack.metrics.snapshot().items()
            if snap.get("type") == "counter"
        }
    finally:
        obs.disable()
    assert result.crashes == 0
    assert result.green
    assert digests(result) == oracle_digests
    if engine == "sqlite":
        # The sqlite tier visits flaky seams on every patch and every
        # evaluation, so a seeded p=0.05 storm is certain to have
        # rained — and been absorbed, not avoided.
        assert counters.get("faults_injected", 0) > 0


@pytest.mark.parametrize("engine", ENGINES)
def test_storm_and_crashes_composed(tmp_path, oracle_digests, engine):
    """Crash schedules and storms at once: recovery under bad weather."""
    rng = random.Random(SEED * 7 + ENGINES.index(engine))
    harness = RetailCrashHarness(tmp_path / "wh.db", exec_mode=engine, governed=True)
    for index in range(3):
        schedule = random_schedule(rng)
        result = harness.run(
            schedule, storm_seed=SEED + index, storm_probability=0.05
        )
        context = f"{engine} schedule {index}: {schedule}"
        assert result.green, context
        assert digests(result) == oracle_digests, context


def test_sustained_storm_demotes_visibly(tmp_path, oracle_digests):
    """A storm heavy enough to exhaust retries demotes — in the metrics
    registry, not in the client's face."""
    harness = RetailCrashHarness(tmp_path / "wh.db", exec_mode="sqlite", governed=True)
    stack = obs.enable(tracer=False, accounting=False)
    try:
        # Confined to the pushdown seam: raining p=0.75 on the
        # checkpoint's own write path would exhaust its retry budget
        # and legitimately fail the save — that is an availability
        # limit, not a governor bug.
        result = harness.run(
            storm_seed=SEED,
            storm_probability=0.75,
            storm_points=frozenset({"flaky-pushdown-execute"}),
        )
        counters = {
            name: snap["value"]
            for name, snap in stack.metrics.snapshot().items()
            if snap.get("type") == "counter"
        }
    finally:
        obs.disable()
    assert result.crashes == 0
    assert result.green
    assert digests(result) == oracle_digests
    assert counters["engine_demotions"] >= 1
    assert counters["faults_injected"] > 0
