"""Randomized crash schedules: every schedule must converge to the oracle.

The acceptance bar of the crash-safety layer: for >= 50 seeded random
crash schedules over the retail workload, restarting and recovering
after every injected death leaves

* every scenario invariant green (the recovery audit),
* the final view contents bag-equal to an uninterrupted run, and
* recovery idempotent (re-running it changes nothing).
"""

import random

import pytest

from repro.robustness.faults import FAULT_POINTS, INJECTOR
from repro.robustness.harness import CrashEvent, RetailCrashHarness, random_schedule
from repro.robustness.recovery import recover

SEED = 1996  # pinned: the year of the paper
SCHEDULES = 50


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    harness = RetailCrashHarness(tmp_path_factory.mktemp("oracle") / "wh.db")
    result = harness.run()
    assert result.crashes == 0
    return result.contents


def test_uninterrupted_run_is_green(tmp_path):
    result = RetailCrashHarness(tmp_path / "wh.db").run()
    assert result.crashes == 0
    assert result.green
    assert result.contents["V"]


@pytest.mark.parametrize("batch", range(5))
def test_randomized_crash_schedules_converge(tmp_path, oracle, batch):
    rng = random.Random(SEED + batch)
    harness = RetailCrashHarness(tmp_path / "wh.db")
    for index in range(SCHEDULES // 5):
        schedule = random_schedule(rng)
        result = harness.run(schedule)
        context = f"batch {batch} schedule {index}: {schedule}"
        assert result.green, context
        assert result.contents == oracle, context
        # Recovery after the dust settles is a no-op (idempotence).
        report = recover(harness.path)
        assert report.action == "none" and report.green, context


@pytest.mark.parametrize("point", sorted(FAULT_POINTS - {"flaky-save"}))
def test_single_crash_at_every_point_converges(tmp_path, oracle, point):
    harness = RetailCrashHarness(tmp_path / "wh.db")
    for hit in (1, 2, 5):
        result = harness.run([CrashEvent(point, hit)])
        context = f"{point} hit {hit}"
        assert result.green, context
        assert result.contents == oracle, context


def test_every_fault_point_is_reachable(tmp_path):
    """The catalog is honest: the workload visits every injection point."""
    harness = RetailCrashHarness(tmp_path / "wh.db")
    harness.run(trace=True)
    visited = set(INJECTOR.hits)
    INJECTOR.reset()
    # flaky-save fires on every snapshot write attempt; the crash points
    # must all be visited by an ordinary (uninterrupted) run.
    assert FAULT_POINTS <= visited


def test_back_to_back_crashes_in_one_run(tmp_path, oracle):
    harness = RetailCrashHarness(tmp_path / "wh.db")
    schedule = [
        CrashEvent("crash-after-journal", 2),
        CrashEvent("crash-mid-apply", 3),
        CrashEvent("crash-mid-checkpoint", 4),
        CrashEvent("crash-after-checkpoint", 5),
    ]
    result = harness.run(schedule)
    assert result.crashes == len(schedule)
    assert result.green
    assert result.contents == oracle
