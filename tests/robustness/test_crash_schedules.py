"""Randomized crash schedules: every schedule must converge to the oracle.

The acceptance bar of the crash-safety layer: for >= 50 seeded random
crash schedules over the retail workload, restarting and recovering
after every injected death leaves

* every scenario invariant green (the recovery audit),
* the final view contents bag-equal to an uninterrupted run, and
* recovery idempotent (re-running it changes nothing).
"""

import random

import pytest

from repro.robustness.faults import CRASH_POINTS, FAULT_POINTS, INJECTOR
from repro.robustness.harness import CrashEvent, RetailCrashHarness, random_schedule
from repro.robustness.recovery import recover

SEED = 1996  # pinned: the year of the paper
SCHEDULES = 50


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    harness = RetailCrashHarness(tmp_path_factory.mktemp("oracle") / "wh.db")
    result = harness.run()
    assert result.crashes == 0
    return result.contents


def test_uninterrupted_run_is_green(tmp_path):
    result = RetailCrashHarness(tmp_path / "wh.db").run()
    assert result.crashes == 0
    assert result.green
    assert result.contents["V"]


@pytest.mark.parametrize("batch", range(5))
def test_randomized_crash_schedules_converge(tmp_path, oracle, batch):
    rng = random.Random(SEED + batch)
    harness = RetailCrashHarness(tmp_path / "wh.db")
    for index in range(SCHEDULES // 5):
        schedule = random_schedule(rng)
        result = harness.run(schedule)
        context = f"batch {batch} schedule {index}: {schedule}"
        assert result.green, context
        assert result.contents == oracle, context
        # Recovery after the dust settles is a no-op (idempotence).
        report = recover(harness.path)
        assert report.action == "none" and report.green, context


@pytest.mark.parametrize("point", sorted(CRASH_POINTS))
def test_single_crash_at_every_point_converges(tmp_path, oracle, point):
    harness = RetailCrashHarness(tmp_path / "wh.db")
    for hit in (1, 2, 5):
        result = harness.run([CrashEvent(point, hit)])
        context = f"{point} hit {hit}"
        assert result.green, context
        assert result.contents == oracle, context


def test_every_fault_point_is_reachable(tmp_path):
    """The catalog is honest: some driver visits every injection point.

    The default-engine workload covers the classic journal/checkpoint
    points; the governed sqlite engine adds the mirror and pushdown
    seams.  Four points need targeted drivers: consolidation only
    triggers past a compaction threshold, the epoch delta cache only
    fills under a *group* refresh, the probe seam only fires while
    a breaker is half-open, and the partition-apply seam only exists
    on a `PartitionedDatabase` — each is exercised below.
    """
    harness = RetailCrashHarness(tmp_path / "wh1.db")
    harness.run(trace=True)
    visited = set(INJECTOR.hits)
    INJECTOR.reset()
    sqlite_harness = RetailCrashHarness(tmp_path / "wh2.db", exec_mode="sqlite", governed=True)
    sqlite_harness.run(trace=True)
    visited |= set(INJECTOR.hits)
    INJECTOR.reset()
    targeted = {
        "crash-mid-consolidate",
        "crash-mid-delta-cache",
        "flaky-governor-probe",
        "crash-mid-partition-apply",
    }
    assert FAULT_POINTS - targeted <= visited


def test_consolidate_point_is_reachable():
    from repro.algebra.bag import Bag
    from repro.exec.vectorized import TableBatchCache

    cache = TableBatchCache()
    bag = Bag([(1, "x")])
    cache.get("t", bag, 2)
    INJECTOR.trace()
    # Pile appended deltas far past the compaction threshold, then read.
    for index in range(200):
        cache.on_patch("t", Bag(), Bag([(index, "y")]), bag, bag)
    cache.get("t", bag, 2)
    visits = INJECTOR.hits.get("crash-mid-consolidate", 0)
    INJECTOR.reset()
    assert visits >= 1


def test_delta_cache_point_is_reachable():
    from repro.warehouse.manager import ViewManager
    from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

    workload = RetailWorkload(RetailConfig(customers=6, items=4, initial_sales=12))
    manager = ViewManager()
    manager.create_table("customer", ("custId", "name", "address", "score"))
    manager.load("customer", workload.customer_rows())
    manager.create_table("sales", ("custId", "itemNo", "quantity", "salesPrice"))
    manager.load("sales", workload.initial_sales_rows())
    # Two views over the same plan: the group refresh shares one
    # delta-cache entry between them — store() is the seam.
    manager.define_view("V1", VIEW_SQL, scenario="combined")
    manager.define_view("V2", VIEW_SQL, scenario="combined")
    txn = manager.transaction()
    txn.insert("sales", [workload._sale_row() for __ in range(3)])
    txn.run()
    INJECTOR.trace()
    manager.refresh_group()
    visits = INJECTOR.hits.get("crash-mid-delta-cache", 0)
    INJECTOR.reset()
    assert visits >= 1


def test_governor_probe_point_is_reachable():
    from repro.storage.database import Database

    db = Database(exec_mode="sqlite")
    db.enable_governor(cooldown_ops=1, sleep=lambda delay: None)
    db.create_table("t", ("a",), rows=[(1,)])
    ref = db.ref("t")
    db.evaluate(ref)
    INJECTOR.trace()
    INJECTOR.arm_transient("flaky-pushdown-execute", times=5)
    db.load("t", [(2,)])
    db.evaluate(ref)  # demotes: retry budget exhausted
    db.evaluate(ref)  # cooldown of 1 expires; half-open probe fires
    visits = INJECTOR.hits.get("flaky-governor-probe", 0)
    INJECTOR.reset()
    assert visits >= 1


def test_partition_apply_point_is_reachable():
    from repro.algebra.bag import Bag
    from repro.storage.partition import PartitionedDatabase

    db = PartitionedDatabase()
    db.create_table("R", ("k", "v"), rows=[(i, "x") for i in range(8)])
    db.declare_partitioning("R", "k", parts=8)
    INJECTOR.trace()
    db.apply_parts({"R": (Bag(), Bag([(i, "y") for i in range(8)]))})
    visits = INJECTOR.hits.get("crash-mid-partition-apply", 0)
    INJECTOR.reset()
    assert visits >= 1


def test_back_to_back_crashes_in_one_run(tmp_path, oracle):
    harness = RetailCrashHarness(tmp_path / "wh.db")
    schedule = [
        CrashEvent("crash-after-journal", 2),
        CrashEvent("crash-mid-apply", 3),
        CrashEvent("crash-mid-checkpoint", 4),
        CrashEvent("crash-after-checkpoint", 5),
    ]
    result = harness.run(schedule)
    assert result.crashes == len(schedule)
    assert result.green
    assert result.contents == oracle
