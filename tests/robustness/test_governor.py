"""The engine governor: demotion ladder, circuit breakers, probes.

The tentpole claim of the self-healing layer: a transient or permanent
backend failure inside any execution tier is invisible to the client —
the governor retries, demotes to the next tier (same answer, lower
gear), cools the broken tier down, and re-promotes only after a
digest-cross-checked probe over a healed backend.
"""

import sqlite3

import pytest

from repro import obs
from repro.algebra.bag import Bag
from repro.robustness.faults import INJECTOR
from repro.robustness.governor import (
    DEFAULT_COOLDOWN_OPS,
    GOVERNOR_LADDERS,
    CircuitBreaker,
    EngineGovernor,
    heal_engine_state,
)
from repro.storage.database import Database


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


@pytest.fixture()
def metrics():
    stack = obs.enable(tracer=False, accounting=False)
    yield lambda: {
        name: snap["value"]
        for name, snap in stack.metrics.snapshot().items()
        if snap.get("type") == "counter"
    }
    obs.disable()


def governed_db(exec_mode="sqlite", *, cooldown_ops=3):
    db = Database(exec_mode=exec_mode)
    governor = db.enable_governor(cooldown_ops=cooldown_ops, sleep=lambda delay: None)
    db.create_table("t", ("a", "b"), rows=[(1, "x"), (2, "y")])
    return db, governor


def bump(db, row):
    """Load one more row — busts version-stamped result memos so the
    next evaluate really runs the engine (and visits its fault points)."""
    db.load("t", [row])


# ----------------------------------------------------------------------
# CircuitBreaker state machine
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_starts_closed_and_runs(self):
        breaker = CircuitBreaker(cooldown_ops=2)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.trips == 0
        assert all(breaker.allow() == "run" for __ in range(5))

    def test_trip_skips_for_cooldown_then_probes(self):
        breaker = CircuitBreaker(cooldown_ops=3)
        breaker.trip()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert breaker.allow() == "skip"
        assert breaker.allow() == "skip"
        assert breaker.allow() == "probe"
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # Half-open keeps asking for probes until a verdict lands.
        assert breaker.allow() == "probe"

    def test_close_resumes_running(self):
        breaker = CircuitBreaker(cooldown_ops=1)
        breaker.trip()
        assert breaker.allow() == "probe"
        breaker.close()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow() == "run"

    def test_retrip_restarts_cooldown(self):
        breaker = CircuitBreaker(cooldown_ops=2)
        breaker.trip()
        assert breaker.allow() == "skip"
        breaker.trip()  # failed probe re-opens for a *fresh* cooldown
        assert breaker.trips == 2
        assert breaker.allow() == "skip"
        assert breaker.allow() == "probe"

    def test_cooldown_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_ops=0)


# ----------------------------------------------------------------------
# Ladder anchoring
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "mode, ladder",
    [
        ("sqlite", ("sqlite", "vectorized", "compiled", "interpreted")),
        ("vectorized", ("vectorized", "compiled", "interpreted")),
        ("compiled", ("compiled", "interpreted")),
        ("interpreted", ("interpreted",)),
    ],
)
def test_ladder_anchored_at_exec_mode(mode, ladder):
    assert GOVERNOR_LADDERS[mode] == ladder
    db = Database(exec_mode=mode)
    governor = db.enable_governor()
    assert governor.ladder == ladder
    # Every tier but the interpreted floor gets a breaker.
    assert set(governor.breakers) == set(ladder[:-1])


def test_enable_governor_is_idempotent():
    db = Database(exec_mode="vectorized")
    first = db.enable_governor(cooldown_ops=5)
    second = db.enable_governor(cooldown_ops=9)
    assert first is second is db.governor
    assert first.breakers["vectorized"].cooldown_ops == 5


def test_every_tier_answers_identically():
    db, governor = governed_db("sqlite")
    expected = Bag([(1, "x"), (2, "y")])
    ref = db.ref("t")
    for position in range(len(governor.ladder)):
        assert governor._evaluate_from(position, ref, None, None) == expected


# ----------------------------------------------------------------------
# Retry absorption (no demotion)
# ----------------------------------------------------------------------


def test_transient_blips_absorbed_by_retry(metrics):
    db, governor = governed_db()
    ref = db.ref("t")
    db.evaluate(ref)
    # Two consecutive locked errors: well within the policy's attempts.
    INJECTOR.arm_transient("flaky-pushdown-execute", times=2)
    bump(db, (3, "z"))
    assert db.evaluate(ref) == Bag([(1, "x"), (2, "y"), (3, "z")])
    assert governor.active_tier() == "sqlite"
    assert governor.breakers["sqlite"].trips == 0
    counters = metrics()
    assert counters.get("engine_demotions", 0) == 0
    assert counters["faults_injected"] == 2


# ----------------------------------------------------------------------
# Demotion on retry exhaustion
# ----------------------------------------------------------------------


def test_retry_exhaustion_demotes_not_raises(metrics):
    db, governor = governed_db()
    ref = db.ref("t")
    db.evaluate(ref)
    # Exactly the policy's attempt budget: the tier is declared down.
    INJECTOR.arm_transient("flaky-pushdown-execute", times=5)
    bump(db, (3, "z"))
    assert db.evaluate(ref) == Bag([(1, "x"), (2, "y"), (3, "z")])
    assert governor.active_tier() == "vectorized"
    assert governor.breakers["sqlite"].state == CircuitBreaker.OPEN
    assert metrics()["engine_demotions"] == 1


def test_permanent_error_trips_immediately(metrics):
    db, governor = governed_db()
    ref = db.ref("t")
    db.evaluate(ref)
    # A non-transient sqlite3 error is not retried: one strike.
    INJECTOR.arm_transient(
        "flaky-pushdown-execute",
        times=1,
        exc_factory=lambda: sqlite3.DatabaseError("database disk image is malformed"),
    )
    bump(db, (3, "z"))
    assert db.evaluate(ref) == Bag([(1, "x"), (2, "y"), (3, "z")])
    assert governor.active_tier() == "vectorized"
    assert metrics()["engine_demotions"] == 1
    assert metrics()["faults_injected"] == 1


def test_open_breaker_skips_tier_without_touching_backend():
    db, governor = governed_db(cooldown_ops=10)
    ref = db.ref("t")
    db.evaluate(ref)
    INJECTOR.arm_transient("flaky-pushdown-execute", times=5)
    bump(db, (3, "z"))
    db.evaluate(ref)
    assert governor.breakers["sqlite"].state == CircuitBreaker.OPEN
    visits = INJECTOR.hits.get("flaky-pushdown-execute", 0)
    # Evaluations during the cooldown run the vectorized tier; the
    # sqlite seam is never visited again.
    for index in range(3):
        bump(db, (10 + index, "w"))
        assert db.evaluate(ref)
    assert INJECTOR.hits.get("flaky-pushdown-execute", 0) == visits


# ----------------------------------------------------------------------
# The full demote → cooldown → probe → re-promote cycle
# ----------------------------------------------------------------------


def test_probe_repromotes_after_outage_ends(metrics):
    db, governor = governed_db(cooldown_ops=3)
    ref = db.ref("t")
    db.evaluate(ref)
    INJECTOR.arm_transient("flaky-pushdown-execute", times=5)
    bump(db, (3, "z"))
    db.evaluate(ref)
    assert governor.active_tier() == "vectorized"
    # Three more evaluations: two cooldown skips, then the half-open
    # probe — which heals the mirror, cross-checks digests, and closes.
    for index in range(3):
        bump(db, (10 + index, "w"))
        assert db.evaluate(ref)
    assert governor.active_tier() == "sqlite"
    assert governor.breakers["sqlite"].state == CircuitBreaker.CLOSED
    counters = metrics()
    assert counters["engine_demotions"] == 1
    assert counters["engine_repromotions"] == 1
    # The probe resynced the mirror before trusting it again.
    assert counters.get("mirror_resyncs", 0) >= 1
    bump(db, (99, "q"))
    assert db.evaluate(ref) == Bag(
        [(1, "x"), (2, "y"), (3, "z"), (10, "w"), (11, "w"), (12, "w"), (99, "q")]
    )


def test_probe_that_errors_retrips(metrics):
    db, governor = governed_db(cooldown_ops=2)
    ref = db.ref("t")
    db.evaluate(ref)
    # Outage outlasts the first cooldown: the probe itself hits the
    # still-broken backend, fails, and re-opens the breaker.
    INJECTOR.arm_transient("flaky-pushdown-execute", times=7)
    bump(db, (3, "z"))
    db.evaluate(ref)
    assert governor.breakers["sqlite"].trips == 1
    for index in range(2):
        bump(db, (10 + index, "w"))
        assert db.evaluate(ref)
    assert governor.breakers["sqlite"].trips == 2
    assert governor.active_tier() == "vectorized"
    assert metrics()["governor_probe_failures"] == 1
    # The client never saw any of it: answers stayed exact throughout.
    assert db.evaluate(ref) == Bag([(1, "x"), (2, "y"), (3, "z"), (10, "w"), (11, "w")])


def test_flaky_probe_seam_fails_gracefully(metrics):
    db, governor = governed_db(cooldown_ops=2)
    ref = db.ref("t")
    db.evaluate(ref)
    INJECTOR.arm_transient("flaky-pushdown-execute", times=5)
    bump(db, (3, "z"))
    db.evaluate(ref)
    # The probe's own seam raises: re-trip, keep serving the fallback.
    INJECTOR.arm_transient("flaky-governor-probe", times=1)
    for index in range(2):
        bump(db, (10 + index, "w"))
        assert db.evaluate(ref)
    assert governor.breakers["sqlite"].trips == 2
    assert metrics()["governor_probe_failures"] == 1
    assert INJECTOR.hits["flaky-governor-probe"] == 1


def test_probe_digest_mismatch_refuses_repromotion(metrics, monkeypatch):
    db, governor = governed_db(cooldown_ops=2)
    ref = db.ref("t")
    db.evaluate(ref)
    INJECTOR.arm_transient("flaky-pushdown-execute", times=5)
    bump(db, (3, "z"))
    db.evaluate(ref)
    # Sabotage: disable the heal step and corrupt the mirror behind the
    # dirty-tracking's back, so the probe's candidate answer is wrong.
    # No further writes: a wholesale ``load`` would mark the mirror
    # dirty and ``ensure`` would wipe the corruption with a reload
    # before the probe could even see it — and the result memo cannot
    # mask the probe either, because the last sqlite-tier success
    # predates the version bump above.
    monkeypatch.setattr(governor, "_heal_tier", lambda tier: None)
    mirror = db.executor.mirror
    mirror._conn.execute('UPDATE "t" SET c0 = c0 + 100')
    expected = Bag([(1, "x"), (2, "y"), (3, "z")])
    assert db.evaluate(ref) == expected  # cooldown: vectorized serves
    assert db.evaluate(ref) == expected  # probe: candidate diverges
    # The cross-check caught the corruption: no re-promotion, and the
    # client got the reference (healthy-tier) answer, not the corrupt one.
    assert governor.breakers["sqlite"].trips == 2
    assert governor.breakers["sqlite"].state == CircuitBreaker.OPEN
    assert metrics()["governor_probe_failures"] == 1
    assert metrics().get("engine_repromotions", 0) == 0


def test_full_outage_falls_to_interpreted_floor():
    db, governor = governed_db(cooldown_ops=1000)
    ref = db.ref("t")
    db.evaluate(ref)
    # Trip sqlite, then force the vectorized and compiled tiers down by
    # tripping their breakers directly — only the floor remains.
    INJECTOR.arm_transient("flaky-pushdown-execute", times=5)
    bump(db, (3, "z"))
    db.evaluate(ref)
    governor.breakers["vectorized"].trip()
    governor.breakers["compiled"].trip()
    assert governor.active_tier() == "interpreted"
    bump(db, (4, "u"))
    assert db.evaluate(ref) == Bag([(1, "x"), (2, "y"), (3, "z"), (4, "u")])


def test_interpreted_mode_has_no_breakers():
    db, governor = governed_db("interpreted")
    assert governor.ladder == ("interpreted",)
    assert governor.breakers == {}
    assert governor.active_tier() == "interpreted"
    assert db.evaluate(db.ref("t")) == Bag([(1, "x"), (2, "y")])


def test_governed_transaction_evaluations_survive_faults():
    """The governor hooks ``Database._apply``'s right-hand-side runs too."""
    from repro.core.transactions import UserTransaction

    db, governor = governed_db()
    db.evaluate(db.ref("t"))
    INJECTOR.arm_transient("flaky-pushdown-execute", times=5)
    txn = UserTransaction(db)
    txn.insert("t", [(7, "n")])
    txn.apply()
    assert db["t"] == Bag([(1, "x"), (2, "y"), (7, "n")])
    assert db.evaluate(db.ref("t")) == Bag([(1, "x"), (2, "y"), (7, "n")])


def test_snapshot_shape():
    db, governor = governed_db()
    snap = governor.snapshot()
    assert snap["mode"] == "sqlite"
    assert snap["active_tier"] == "sqlite"
    assert set(snap["breakers"]) == {"sqlite", "vectorized", "compiled"}
    assert snap["breakers"]["sqlite"] == {"state": "closed", "trips": 0}


def test_default_cooldown_is_operations_counted():
    db = Database(exec_mode="compiled")
    governor = db.enable_governor()
    assert governor.breakers["compiled"].cooldown_ops == DEFAULT_COOLDOWN_OPS


# ----------------------------------------------------------------------
# heal_engine_state: the recovery layer's post-crash audit
# ----------------------------------------------------------------------


def test_heal_repairs_corrupted_index(metrics):
    db = Database()
    db.create_table("t", ("a", "b"), rows=[(1, "x"), (2, "y")])
    index = db.indexes.get("t", (0,), db["t"])
    # Simulated torn maintenance: a bucket vanishes without a rollback.
    index._buckets.pop((1,))
    healed = heal_engine_state(db)
    assert healed["indexes"] == ["t[0]"]
    assert metrics()["index_rebuilds"] == 1
    assert db.indexes.get("t", (0,), db["t"]).lookup((1,)) == {(1, "x"): 1}
    # A second audit is a no-op.
    assert heal_engine_state(db) == {"indexes": [], "mirror": []}


def test_heal_resyncs_diverged_mirror(metrics):
    db, governor = governed_db()
    ref = db.ref("t")
    db.evaluate(ref)
    mirror = db.executor.mirror
    mirror._conn.execute("DELETE FROM t WHERE c0 = 1")
    assert mirror.divergent_tables(db) == ["t"]
    healed = heal_engine_state(db)
    assert healed["mirror"] == ["t"]
    assert metrics()["mirror_resyncs"] == 1
    assert mirror.divergent_tables(db) == []
    assert mirror.to_bag("t") == db["t"]


def test_heal_on_unbuilt_engine_state_is_clean():
    db = Database(exec_mode="sqlite")
    db.create_table("t", ("a",), rows=[(1,)])
    # Never evaluated: no executor, no mirror, no indexes — audits clean
    # without building any of them.
    assert heal_engine_state(db) == {"indexes": [], "mirror": []}
    assert db._executor is None
