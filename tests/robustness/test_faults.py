"""Unit tests for the fault injector itself."""

import sqlite3

import pytest

from repro.robustness.faults import (
    CRASH_POINTS,
    FAULT_POINTS,
    INJECTOR,
    STORM_POINTS,
    FaultInjector,
    InjectedCrash,
    fault_point,
)
from repro.storage.persistence import with_retry


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


class TestInjectedCrash:
    def test_is_not_an_ordinary_exception(self):
        # `except Exception` must not swallow a simulated process death.
        assert issubclass(InjectedCrash, BaseException)
        assert not issubclass(InjectedCrash, Exception)

    def test_carries_point(self):
        crash = InjectedCrash("crash-mid-apply")
        assert crash.point == "crash-mid-apply"
        assert "crash-mid-apply" in str(crash)


class TestArming:
    def test_disarmed_fault_point_is_noop(self):
        fault_point("crash-mid-apply")
        assert INJECTOR.hits == {}  # not even counted when inactive

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            INJECTOR.arm("crash-nowhere")
        with pytest.raises(ValueError, match="unknown fault point"):
            INJECTOR.arm_transient("crash-nowhere")

    def test_hit_numbers_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            INJECTOR.arm("crash-mid-apply", hit=0)

    def test_crash_on_nth_visit_one_shot(self):
        INJECTOR.arm("crash-mid-apply", hit=3)
        fault_point("crash-mid-apply")
        fault_point("crash-mid-apply")
        with pytest.raises(InjectedCrash):
            fault_point("crash-mid-apply")
        fault_point("crash-mid-apply")  # one-shot: 4th visit passes
        assert INJECTOR.hits["crash-mid-apply"] == 4

    def test_arm_is_relative_to_visits_so_far(self):
        INJECTOR.trace()
        INJECTOR.active = True
        fault_point("crash-mid-apply")
        fault_point("crash-mid-apply")
        INJECTOR.arm("crash-mid-apply", hit=1)  # i.e. the *next* visit
        with pytest.raises(InjectedCrash):
            fault_point("crash-mid-apply")

    def test_multiple_hits_same_point(self):
        INJECTOR.arm("crash-mid-apply", hit=1)
        INJECTOR.arm("crash-mid-apply", hit=2)
        with pytest.raises(InjectedCrash):
            fault_point("crash-mid-apply")
        with pytest.raises(InjectedCrash):
            fault_point("crash-mid-apply")
        fault_point("crash-mid-apply")
        assert not INJECTOR.armed()

    def test_reset_disarms(self):
        INJECTOR.arm("crash-mid-apply")
        INJECTOR.reset()
        assert not INJECTOR.armed()
        fault_point("crash-mid-apply")  # nothing raised, nothing counted
        assert INJECTOR.hits == {}


class TestTransients:
    def test_transient_fires_for_bounded_visits(self):
        INJECTOR.arm_transient("flaky-save", times=2)
        for __ in range(2):
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                fault_point("flaky-save")
        fault_point("flaky-save")  # third visit is clean
        assert not INJECTOR.armed()

    def test_transient_consumed_by_with_retry(self):
        INJECTOR.arm_transient("flaky-save", times=3)
        calls = []

        def save():
            calls.append(1)
            fault_point("flaky-save")
            return "saved"

        assert with_retry(save, sleep=lambda _s: None) == "saved"
        assert len(calls) == 4  # 3 transient failures + 1 success

    def test_custom_exception_factory(self):
        INJECTOR.arm_transient("flaky-save", exc_factory=lambda: RuntimeError("io"))
        with pytest.raises(RuntimeError, match="io"):
            fault_point("flaky-save")


class TestTracing:
    def test_trace_counts_without_raising(self):
        injector = FaultInjector()
        injector.trace()
        injector.fire("crash-mid-refresh")
        injector.fire("crash-mid-refresh")
        assert injector.hits["crash-mid-refresh"] == 2
        assert not injector.active


class TestCatalog:
    def test_catalog_names_are_stable(self):
        # Recovery tests and the CI matrix parametrize over these names.
        assert FAULT_POINTS == {
            "crash-before-journal",
            "crash-after-journal",
            "crash-mid-apply",
            "crash-mid-execute",
            "crash-mid-refresh",
            "crash-mid-propagate",
            "crash-mid-checkpoint",
            "crash-after-checkpoint",
            "crash-after-commit",
            "crash-mid-consolidate",
            "crash-mid-delta-cache",
            "crash-mid-partition-apply",
            "flaky-save",
            "flaky-mirror-upsert",
            "flaky-mirror-adopt",
            "flaky-mirror-reload",
            "flaky-index-create",
            "flaky-pushdown-execute",
            "flaky-governor-probe",
        }

    def test_storm_and_crash_points_partition_the_catalog(self):
        assert STORM_POINTS == {p for p in FAULT_POINTS if p.startswith("flaky-")}
        assert CRASH_POINTS == {p for p in FAULT_POINTS if p.startswith("crash-")}
        assert STORM_POINTS | CRASH_POINTS == FAULT_POINTS
        assert not STORM_POINTS & CRASH_POINTS


class TestStorms:
    def test_storm_rains_probabilistically_and_seeded(self):
        def fires(seed):
            INJECTOR.reset()
            INJECTOR.arm_storm(seed=seed, probability=0.5)
            hits = 0
            for __ in range(100):
                try:
                    fault_point("flaky-save")
                except sqlite3.OperationalError:
                    hits += 1
            return hits

        first = fires(42)
        assert 20 < first < 80  # p=0.5 over 100 visits
        assert fires(42) == first  # same seed, same rain

    def test_storm_only_accepts_flaky_points(self):
        with pytest.raises(ValueError, match="not transient storm points"):
            INJECTOR.arm_storm(seed=1, points=frozenset({"crash-mid-apply"}))
        with pytest.raises(ValueError, match="probability"):
            INJECTOR.arm_storm(seed=1, probability=1.5)

    def test_storm_never_rains_on_crash_points(self):
        INJECTOR.arm_storm(seed=7, probability=1.0)
        fault_point("crash-mid-apply")  # crash points stay dry
        with pytest.raises(sqlite3.OperationalError):
            fault_point("flaky-save")

    def test_storm_cleared_by_reset(self):
        INJECTOR.arm_storm(seed=7, probability=1.0)
        assert INJECTOR.armed()
        INJECTOR.reset()
        assert not INJECTOR.armed()
        fault_point("flaky-save")
