"""Tests for the durable warehouse wrapper (the write-ahead protocol)."""

import pytest

from repro.algebra.bag import Bag
from repro.errors import RecoveryError
from repro.robustness.durable import DurableWarehouse
from repro.robustness.faults import INJECTOR
from repro.robustness.journal import IntentJournal, journal_path


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


def make_warehouse(path) -> DurableWarehouse:
    warehouse = DurableWarehouse(path)
    warehouse.create_table("sales", ("custId", "qty"))
    warehouse.load("sales", [(1, 2), (2, 5), (1, 1)])
    warehouse.define_view("V", "SELECT custId, qty FROM sales WHERE qty != 1", scenario="combined")
    return warehouse


class TestConstruction:
    def test_fresh_path_writes_baseline_snapshot_and_journal(self, tmp_path):
        path = tmp_path / "wh.db"
        with DurableWarehouse(path) as warehouse:
            assert path.exists()
            assert journal_path(path).exists()
            assert warehouse.db.journaled
            assert warehouse.db.durable_origin == path

    def test_existing_path_requires_open(self, tmp_path):
        path = tmp_path / "wh.db"
        DurableWarehouse(path).close()
        with pytest.raises(RecoveryError, match="use DurableWarehouse.open"):
            DurableWarehouse(path)

    def test_refuses_pending_intent(self, tmp_path):
        path = tmp_path / "wh.db"
        make_warehouse(path).close()
        with IntentJournal(journal_path(path)) as journal:
            journal.begin("refresh", view="V")
        with pytest.raises(RecoveryError, match="pending intent"):
            DurableWarehouse.open(path, auto_recover=False)

    def test_open_round_trips_state(self, tmp_path):
        path = tmp_path / "wh.db"
        warehouse = make_warehouse(path)
        expected = warehouse.query("V")
        warehouse.close()
        with DurableWarehouse.open(path) as reopened:
            assert reopened.views() == ("V",)
            assert reopened.query("V") == expected
            reopened.check_invariants()


class TestJournaledOps:
    def test_every_mutation_leaves_a_committed_record(self, tmp_path):
        path = tmp_path / "wh.db"
        warehouse = make_warehouse(path)
        warehouse.transaction().insert("sales", [(3, 9)]).run()
        warehouse.propagate("V")
        warehouse.partial_refresh("V")
        warehouse.refresh("V")
        warehouse.refresh_all()
        kinds = [record.kind for record in warehouse.journal.records()]
        statuses = {record.status for record in warehouse.journal.records()}
        assert kinds == [
            "ddl", "ddl", "ddl",  # create_table, load, define_view
            "txn", "propagate", "partial_refresh", "refresh", "refresh_all",
        ]
        assert statuses == {"committed"}
        warehouse.close()

    def test_transaction_journals_literal_deltas(self, tmp_path):
        warehouse = make_warehouse(tmp_path / "wh.db")
        warehouse.transaction().insert("sales", [(7, 7)]).delete("sales", [(1, 1)]).run()
        record = warehouse.journal.records()[-1]
        assert record.kind == "txn"
        assert record.payload["deltas"]["sales"]["insert"] == [[7, 7, 1]]
        assert record.payload["deltas"]["sales"]["delete"] == [[1, 1, 1]]
        warehouse.close()

    def test_token_gives_exactly_once(self, tmp_path):
        warehouse = make_warehouse(tmp_path / "wh.db")
        before = warehouse.sql("SELECT custId, qty FROM sales")
        assert warehouse.transaction(token="once").insert("sales", [(9, 9)]).run()
        after_first = warehouse.sql("SELECT custId, qty FROM sales")
        # A client retry of the same token is a no-op, not a double apply.
        assert not warehouse.transaction(token="once").insert("sales", [(9, 9)]).run()
        assert warehouse.sql("SELECT custId, qty FROM sales") == after_first
        assert len(after_first) == len(before) + 1
        warehouse.close()

    def test_execute_sql_and_query_fresh(self, tmp_path):
        warehouse = make_warehouse(tmp_path / "wh.db")
        warehouse.execute_sql("INSERT INTO sales VALUES (4, 40);")
        assert (4, 40) in warehouse.query_fresh("V")
        assert not warehouse.is_stale("V")
        warehouse.close()

    def test_checkpoint_persists_without_journal_record(self, tmp_path):
        path = tmp_path / "wh.db"
        warehouse = make_warehouse(path)
        count = len(warehouse.journal.records())
        warehouse.checkpoint()
        assert len(warehouse.journal.records()) == count
        warehouse.close()

    def test_drop_view_journaled_as_ddl(self, tmp_path):
        warehouse = make_warehouse(tmp_path / "wh.db")
        warehouse.drop_view("V")
        assert warehouse.views() == ()
        assert warehouse.journal.records()[-1].kind == "ddl"
        warehouse.close()


class TestWatermarks:
    def test_maintenance_intents_record_log_watermark(self, tmp_path):
        warehouse = make_warehouse(tmp_path / "wh.db")
        warehouse.transaction().insert("sales", [(5, 3), (6, 4)]).run()
        warehouse.refresh("V")
        refresh_record = warehouse.journal.records()[-1]
        assert refresh_record.kind == "refresh"
        assert refresh_record.watermark is not None and refresh_record.watermark > 0
        warehouse.close()


class TestDigestsInPayload:
    def test_pre_digests_cover_internal_tables(self, tmp_path):
        warehouse = make_warehouse(tmp_path / "wh.db")
        warehouse.transaction().insert("sales", [(8, 8)]).run()
        record = warehouse.journal.records()[-1]
        # The combined scenario keeps MV + log + differentials; recovery
        # classifies the snapshot by comparing *all* of them.
        assert set(record.pre_digests) == set(warehouse.db.table_names())
        warehouse.close()


def test_query_returns_bag(tmp_path):
    warehouse = make_warehouse(tmp_path / "wh.db")
    assert isinstance(warehouse.query("V"), Bag)
    warehouse.close()
