"""Unit tests for the write-ahead intent journal."""

import pytest

from repro.algebra.bag import Bag
from repro.errors import RecoveryError
from repro.robustness.journal import (
    IntentJournal,
    bag_digest,
    deserialize_bag,
    journal_path,
    serialize_bag,
    table_digests,
)
from repro.storage.database import Database


@pytest.fixture
def journal(tmp_path):
    with IntentJournal(tmp_path / "wh.db.journal") as journal:
        yield journal


class TestDigests:
    def test_bag_digest_is_content_addressed(self):
        a = Bag([(1, "x"), (2, "y"), (1, "x")])
        b = Bag([(2, "y"), (1, "x"), (1, "x")])
        assert bag_digest(a) == bag_digest(b)

    def test_multiplicity_matters(self):
        assert bag_digest(Bag([(1,)])) != bag_digest(Bag([(1,), (1,)]))

    def test_table_digests_cover_all_tables(self):
        db = Database()
        db.create_table("R", ("a",), rows=[(1,)])
        db.create_table("S", ("b",), rows=[(2,)])
        digests = table_digests(db)
        assert set(digests) == {"R", "S"}
        assert digests["R"] == bag_digest(db["R"])

    def test_table_digests_subset(self):
        db = Database()
        db.create_table("R", ("a",))
        db.create_table("S", ("b",))
        assert set(table_digests(db, ["S"])) == {"S"}


class TestBagSerialization:
    def test_round_trip(self):
        bag = Bag([(1, "x", 2.5), (1, "x", 2.5), (3, "y", 0.0)])
        assert deserialize_bag(serialize_bag(bag)) == bag

    def test_empty(self):
        assert serialize_bag(Bag()) == []
        assert deserialize_bag([]) == Bag()

    def test_json_lists_become_rows(self):
        # JSON turns tuples into lists; decoding must restore tuples.
        assert deserialize_bag([[1, "x", 2]]) == Bag([(1, "x"), (1, "x")])


class TestJournalPath:
    def test_sibling_file(self, tmp_path):
        assert journal_path(tmp_path / "wh.db") == tmp_path / "wh.db.journal"


class TestLifecycle:
    def test_begin_commit(self, journal):
        op_id = journal.begin("refresh", view="V", payload={"watermark": 3})
        pending = journal.pending()
        assert pending is not None
        assert (pending.op_id, pending.kind, pending.view) == (op_id, "refresh", "V")
        assert pending.watermark == 3
        journal.commit_op(op_id)
        assert journal.pending() is None
        assert journal.records()[-1].status == "committed"

    def test_begin_abort(self, journal):
        op_id = journal.begin("ddl")
        journal.abort_op(op_id)
        assert journal.pending() is None
        assert journal.records()[-1].status == "aborted"

    def test_refuses_second_intent_while_pending(self, journal):
        journal.begin("refresh", view="V")
        with pytest.raises(RecoveryError, match="pending intent"):
            journal.begin("txn")

    def test_commit_requires_pending(self, journal):
        op_id = journal.begin("txn")
        journal.commit_op(op_id)
        with pytest.raises(RecoveryError, match="not pending"):
            journal.commit_op(op_id)
        with pytest.raises(RecoveryError, match="not pending"):
            journal.abort_op(op_id)

    def test_payload_round_trips(self, journal):
        payload = {"deltas": {"sales": {"insert": [[1, 2, 3]], "delete": []}}, "pre_digests": {"sales": "00"}}
        op_id = journal.begin("txn", payload=payload)
        assert journal.pending().payload == payload
        assert journal.pending().pre_digests == {"sales": "00"}
        journal.commit_op(op_id)

    def test_describe_mentions_view_and_watermark(self, journal):
        journal.begin("propagate", view="V", payload={"watermark": 7})
        text = journal.pending().describe()
        assert "propagate" in text and "'V'" in text and "watermark 7" in text


class TestDurability:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "wh.db.journal"
        with IntentJournal(path) as journal:
            committed = journal.begin("txn", token="t0")
            journal.commit_op(committed)
            journal.begin("refresh", view="V")
        with IntentJournal(path) as journal:
            assert journal.has_committed("t0")
            pending = journal.pending()
            assert pending is not None and pending.kind == "refresh"
            assert len(journal.records()) == 2


class TestTokens:
    def test_has_committed_only_after_commit(self, journal):
        op_id = journal.begin("txn", token="t1")
        assert not journal.has_committed("t1")
        journal.commit_op(op_id)
        assert journal.has_committed("t1")

    def test_aborted_token_not_committed(self, journal):
        op_id = journal.begin("txn", token="t2")
        journal.abort_op(op_id)
        assert not journal.has_committed("t2")

    def test_duplicate_committed_token_refused(self, journal):
        op_id = journal.begin("txn", token="t3")
        journal.commit_op(op_id)
        with pytest.raises(RecoveryError, match="already committed"):
            journal.begin("txn", token="t3")
