"""Suite-wide test configuration: deterministic randomness.

Every source of randomness in this suite is pinned (see
``tests/README.md``).  This conftest pins the one source that would
otherwise re-randomize between runs: Hypothesis.  The ``repro-ci``
profile (the default) derandomizes example generation so CI failures
reproduce locally with no flags; export ``HYPOTHESIS_PROFILE=explore``
to let Hypothesis hunt fresh examples.
"""

from __future__ import annotations

import os

try:
    from hypothesis import settings
except ImportError:  # the zero-dependency harness still runs without it
    settings = None

if settings is not None:
    settings.register_profile("repro-ci", derandomize=True)
    settings.register_profile("explore", derandomize=False)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro-ci"))
