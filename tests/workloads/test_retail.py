"""Unit tests for the retail workload generator (Example 1.1)."""

import pytest

from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload


@pytest.fixture
def db():
    return Database()


def small_config(**overrides):
    defaults = dict(customers=20, items=5, initial_sales=50, seed=7)
    defaults.update(overrides)
    return RetailConfig(**defaults)


class TestSetup:
    def test_tables_created(self, db):
        RetailWorkload(small_config()).setup_database(db)
        assert db.has_table("customer")
        assert db.has_table("sales")
        assert len(db["customer"]) == 20
        assert len(db["sales"]) == 50

    def test_view_sql_compiles(self, db):
        RetailWorkload(small_config()).setup_database(db)
        view = sql_to_view(VIEW_SQL, db)
        assert view.name == "V"
        result = db.evaluate(view.query)
        # Every view row belongs to a High-score customer with quantity != 0.
        high_ids = {row[0] for row in db["customer"] if row[3] == "High"}
        for row in result.support:
            assert row[0] in high_ids
            assert row[4] != 0

    def test_high_score_fraction(self, db):
        workload = RetailWorkload(small_config(high_score_fraction=0.5))
        workload.setup_database(db)
        high = sum(1 for row in db["customer"] if row[3] == "High")
        assert high == 10

    def test_deterministic_by_seed(self):
        db1, db2 = Database(), Database()
        RetailWorkload(small_config()).setup_database(db1)
        RetailWorkload(small_config()).setup_database(db2)
        assert db1["sales"] == db2["sales"]
        assert db1["customer"] == db2["customer"]

    def test_different_seeds_differ(self):
        db1, db2 = Database(), Database()
        RetailWorkload(small_config(seed=1)).setup_database(db1)
        RetailWorkload(small_config(seed=2)).setup_database(db2)
        assert db1["sales"] != db2["sales"]


class TestTransactionStream:
    def test_transaction_inserts_configured_count(self, db):
        workload = RetailWorkload(small_config(txn_inserts=4, delete_fraction=0.0))
        workload.setup_database(db)
        txn = workload.next_transaction(db)
        inserted = db.evaluate(txn.insert_expr("sales"))
        assert len(inserted) == 4

    def test_deletes_only_existing_rows(self, db):
        workload = RetailWorkload(small_config(delete_fraction=1.0))
        workload.setup_database(db)
        for __ in range(10):
            txn = workload.next_transaction(db)
            deleted = db.evaluate(txn.delete_expr("sales"))
            txn.apply()
            # Weak minimality means over-deletes are ignored, but the
            # generator should never even produce phantom rows.
            assert all(count >= 0 for __, count in deleted.items())

    def test_stream_applies_cleanly(self, db):
        workload = RetailWorkload(small_config())
        workload.setup_database(db)
        before = len(db["sales"])
        for txn in workload.transactions(db, 20):
            txn.apply()
        assert len(db["sales"]) != before

    def test_zero_quantity_rows_generated(self, db):
        workload = RetailWorkload(small_config(zero_quantity_fraction=1.0, duplicate_fraction=0.0, initial_sales=30))
        workload.setup_database(db)
        assert all(row[2] == 0 for row in db["sales"].support)

    def test_duplicates_generated(self, db):
        workload = RetailWorkload(small_config(duplicate_fraction=0.9, initial_sales=200))
        workload.setup_database(db)
        assert db["sales"].distinct_count() < len(db["sales"])


class TestSchedule:
    def test_schedule_shape(self, db):
        workload = RetailWorkload(small_config())
        workload.setup_database(db)
        schedule = workload.schedule(db, horizon=5, txns_per_tick=2)
        assert [tick for tick, __ in schedule] == [1, 2, 3, 4, 5]
        assert all(len(txns) == 2 for __, txns in schedule)
