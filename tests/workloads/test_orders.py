"""Unit tests for the orders workload, including maintenance end-to-end."""

import pytest

from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.warehouse import ViewManager
from repro.workloads.orders import (
    EMPTY_ORDERS_SQL,
    OPEN_ORDER_LINES_SQL,
    ORDER_IDS_SQL,
    OrdersConfig,
    OrdersWorkload,
)


@pytest.fixture
def loaded():
    workload = OrdersWorkload(OrdersConfig(initial_orders=40, seed=3))
    db = Database()
    workload.setup_database(db)
    return db, workload


class TestSetup:
    def test_tables_created(self, loaded):
        db, __ = loaded
        assert len(db["orders"]) == 40
        assert db.schema_of("lineitems").attributes == ("orderId", "sku", "qty")

    def test_deterministic(self):
        db1, db2 = Database(), Database()
        OrdersWorkload(OrdersConfig(seed=5)).setup_database(db1)
        OrdersWorkload(OrdersConfig(seed=5)).setup_database(db2)
        assert db1.snapshot() == db2.snapshot()

    def test_views_compile(self, loaded):
        db, __ = loaded
        for sql in (OPEN_ORDER_LINES_SQL, ORDER_IDS_SQL, EMPTY_ORDERS_SQL):
            view = sql_to_view(sql, db)
            db.evaluate(view.query)

    def test_empty_orders_semantics(self, loaded):
        db, __ = loaded
        view = sql_to_view(EMPTY_ORDERS_SQL, db)
        empties = {row[0] for row in db.evaluate(view.query).support}
        with_lines = {row[0] for row in db["lineitems"].support}
        all_orders = {row[0] for row in db["orders"].support}
        assert empties == all_orders - with_lines


class TestTransactions:
    def test_place_order_is_multi_table(self, loaded):
        db, workload = loaded
        txn = workload.place_order(db)
        assert "orders" in txn.tables

    def test_ship_order_flips_status(self, loaded):
        db, workload = loaded
        before_open = sum(1 for row in db["orders"] if row[2] == "open")
        workload.ship_order(db).apply()
        after_open = sum(1 for row in db["orders"] if row[2] == "open")
        assert after_open == before_open - 1

    def test_cancel_removes_lines(self, loaded):
        db, workload = loaded
        # Cancel until we hit an order that had line items.
        for __ in range(30):
            before = len(db["lineitems"])
            txn = workload.cancel_order(db)
            txn.apply()
            if len(db["lineitems"]) < before:
                return
        pytest.skip("no cancellable order with lines in this seed")

    def test_stream_applies(self, loaded):
        db, workload = loaded
        for txn in workload.transactions(db, 30):
            txn.apply()


class TestMaintenanceEndToEnd:
    @pytest.mark.parametrize("scenario", ["immediate", "base_log", "diff_table", "combined"])
    def test_three_views_stay_correct(self, scenario):
        workload = OrdersWorkload(OrdersConfig(initial_orders=30, seed=9))
        manager = ViewManager()
        db = manager.db
        workload.setup_database(db)
        manager.define_view("open_order_lines", OPEN_ORDER_LINES_SQL, scenario=scenario)
        manager.define_view("order_ids", ORDER_IDS_SQL, scenario=scenario)
        manager.define_view("empty_orders", EMPTY_ORDERS_SQL, scenario=scenario)
        for txn in workload.transactions(db, 15):
            manager.execute(txn)
            manager.check_invariants()
        manager.refresh_all()
        for name in manager.views():
            assert not manager.is_stale(name), name

    def test_empty_orders_tracks_cancellations(self):
        """The monus view is exactly where naive deferred maintenance
        breaks; ours must track placements and cancellations exactly."""
        workload = OrdersWorkload(OrdersConfig(initial_orders=10, seed=11))
        manager = ViewManager()
        db = manager.db
        workload.setup_database(db)
        manager.define_view("empty_orders", EMPTY_ORDERS_SQL, scenario="combined")
        for __ in range(20):
            manager.execute(workload.next_transaction(db))
        manager.refresh("empty_orders")
        expected = db.evaluate(sql_to_view(EMPTY_ORDERS_SQL, db).query)
        assert manager.query("empty_orders") == expected
