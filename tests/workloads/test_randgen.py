"""Unit tests for the randomized generators themselves."""

import pytest

from repro.workloads.randgen import RandomExpressionGenerator, RandomWorkloadGenerator


class TestDatabaseGeneration:
    def test_table_count(self):
        db = RandomExpressionGenerator(0, tables=4).database()
        assert len(db.external_tables()) == 4

    def test_deterministic(self):
        db1 = RandomExpressionGenerator(5).database()
        db2 = RandomExpressionGenerator(5).database()
        assert db1.snapshot() == db2.snapshot()

    def test_arity_range(self):
        db = RandomExpressionGenerator(1).database()
        for name in db.external_tables():
            assert 1 <= db.schema_of(name).arity <= 3


@pytest.mark.parametrize("seed", range(30))
def test_generated_queries_evaluate(seed):
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    query = generator.query(db, depth=5)
    db.evaluate(query)  # must not raise


@pytest.mark.parametrize("seed", range(10))
def test_queries_hit_every_operator_eventually(seed):
    from repro.algebra.expr import DupElim, Monus, Product, Select, UnionAll

    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    seen = set()
    for __ in range(30):
        query = generator.query(db, depth=5)
        seen.update(type(node) for node in query.walk())
    assert {Select, Product, UnionAll, Monus, DupElim} <= seen


class TestSubstitutionGeneration:
    @pytest.mark.parametrize("seed", range(10))
    def test_weakly_minimal_deletes_are_subbags(self, seed):
        generator = RandomExpressionGenerator(seed)
        db = generator.database()
        eta = generator.substitution(db, weakly_minimal=True)
        for name in eta:
            assert db.evaluate(eta.delete_of(name)).issubbag(db[name])

    def test_non_minimal_can_over_delete(self):
        found = False
        for seed in range(30):
            generator = RandomExpressionGenerator(seed)
            db = generator.database()
            eta = generator.substitution(db, weakly_minimal=False)
            for name in eta:
                if not db.evaluate(eta.delete_of(name)).issubbag(db[name]):
                    found = True
        assert found


class TestTransactionGeneration:
    @pytest.mark.parametrize("seed", range(10))
    def test_transactions_apply(self, seed):
        generator = RandomExpressionGenerator(seed)
        db = generator.database()
        generator.transaction(db, allow_over_delete=True).apply()

    def test_workload_generator(self):
        generator = RandomWorkloadGenerator(3)
        db = RandomExpressionGenerator(3).database()
        txns = generator.transactions(db, 5)
        assert len(txns) == 5
        for txn in txns:
            txn.apply()
