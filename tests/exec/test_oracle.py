"""Engine-vs-interpreted oracle: identical end states on every scenario.

Runs the same retail workload (the shape behind the E1–E16 experiments:
the Example 1.1 join view, scenario grid IM/BL/DT/C with and without
strong minimality, maintenance policies, the shared-log extension, and
the recompute baseline) once under each execution engine — interpreted,
compiled, vectorized, sqlite — and asserts the full database state —
base tables, MV, logs, and differential tables — is bag-identical after
every phase.  The interpreted engine is the oracle; every other engine
must match it checkpoint for checkpoint.
"""

import pytest

from repro.baselines.recompute import RecomputeScenario
from repro.core.policies import MaintenanceDriver, Policy1, Policy2
from repro.core.scenarios import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
)
from repro.core.views import ViewDefinition
from repro.extensions.sharedlog import SharedLogScenario
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

MODES = ("interpreted", "compiled", "vectorized", "sqlite")
ENGINES = tuple(mode for mode in MODES if mode != "interpreted")


def fresh(mode, **overrides):
    config = RetailConfig(
        customers=20, initial_sales=60, txn_inserts=5, seed=13, **overrides
    )
    workload = RetailWorkload(config)
    db = Database(exec_mode=mode)
    workload.setup_database(db)
    view = sql_to_view(VIEW_SQL, db)
    return db, view, workload


def checkpoints_for_scenario(scenario_factory, *, txns=6, refresh_every=3):
    """Run one maintenance lifecycle, snapshotting after every phase."""
    states = {}
    for mode in MODES:
        db, view, workload = fresh(mode)
        scenario = scenario_factory(db, view)
        scenario.install()
        snaps = [db.snapshot()]
        for index, txn in enumerate(workload.transactions(db, txns), start=1):
            scenario.execute(txn)
            snaps.append(db.snapshot())
            if index % refresh_every == 0:
                if hasattr(scenario, "propagate"):
                    scenario.propagate()
                    snaps.append(db.snapshot())
                    scenario.partial_refresh()
                else:
                    scenario.refresh()
                snaps.append(db.snapshot())
        scenario.refresh()
        scenario.check_invariant()
        assert scenario.is_consistent()
        snaps.append(db.snapshot())
        states[mode] = snaps
    return states


SCENARIOS = {
    "immediate": ImmediateScenario,
    "base_log": BaseLogScenario,
    "diff_table": DiffTableScenario,
    "diff_table_strong": lambda db, view: DiffTableScenario(db, view, strong_minimality=True),
    "combined": CombinedScenario,
    "combined_strong": lambda db, view: CombinedScenario(db, view, strong_minimality=True),
    "recompute": RecomputeScenario,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_states_identical(name):
    states = checkpoints_for_scenario(SCENARIOS[name])
    oracle = states["interpreted"]
    for mode in ENGINES:
        subject = states[mode]
        assert len(oracle) == len(subject)
        for step, (expected, actual) in enumerate(zip(oracle, subject)):
            assert actual == expected, (
                f"{name}: {mode} state diverged at checkpoint {step}"
            )


@pytest.mark.parametrize("policy_factory", [lambda: Policy1(k=2, m=4), lambda: Policy2(k=2, m=4)])
def test_policy_driven_maintenance_identical(policy_factory):
    states = {}
    for mode in MODES:
        db, view, workload = fresh(mode)
        scenario = CombinedScenario(db, view)
        scenario.install()
        driver = MaintenanceDriver(scenario, policy_factory())
        snaps = []
        for tick in range(6):
            driver.tick([workload.next_transaction(db)])
            snaps.append(db.snapshot())
        states[mode] = snaps
    for mode in ENGINES:
        assert states[mode] == states["interpreted"], mode


def test_shared_log_scenario_identical():
    states = {}
    for mode in MODES:
        db, view, workload = fresh(mode)
        scenario = SharedLogScenario(db)
        scenario.add_view(ViewDefinition("V0", view.query))
        scenario.add_view(ViewDefinition("V1", db.ref("sales")))
        snaps = []
        for index, txn in enumerate(workload.transactions(db, 6), start=1):
            scenario.execute(txn)
            if index % 2 == 0:
                scenario.refresh_all()
            snaps.append(db.snapshot())
        states[mode] = snaps
    for mode in ENGINES:
        assert states[mode] == states["interpreted"], mode


def test_compiled_engine_attributes_its_work():
    db, view, workload = fresh("compiled")
    scenario = CombinedScenario(db, view)
    scenario.install()
    for txn in workload.transactions(db, 4):
        scenario.execute(txn)
    scenario.refresh()
    counter = scenario.counter
    assert counter.plan_hits > 0
    assert counter.memo_hits > 0
    assert counter.index_probes > 0
