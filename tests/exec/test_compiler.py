"""Unit tests for expression lowering into physical plans."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import Literal, MapProject, Select
from repro.algebra.predicates import And, Arith, Attr, Comparison, Const
from repro.algebra.schema import Schema
from repro.errors import UnknownTableError
from repro.exec.compiler import (
    Compiler,
    PEquiJoin,
    PFilter,
    PIndexSelect,
    PLiteral,
    PMonus,
    PPipeline,
    PProject,
    PScan,
    PUnionAll,
    source_access,
)
from repro.storage.database import Database


@pytest.fixture
def db():
    database = Database(exec_mode="compiled")
    database.create_table(
        "customer", ["custId", "name", "score"], rows=[(1, "ann", "High"), (2, "bob", "Low")]
    )
    database.create_table(
        "sales", ["saleId", "cId", "qty"], rows=[(10, 1, 5), (11, 1, 0), (12, 2, 7)]
    )
    return database


def compile_expr(expr):
    return Compiler({}).compile(expr)


def plan_for(db, expr):
    db.evaluate(expr)
    return db.executor.node_for(expr)


class TestSourceAccess:
    def test_chain_fuses(self, db):
        expr = (
            db.ref("customer")
            .where(Comparison("=", Attr("score"), Const("High")))
            .project(["name", "custId"])
        )
        access = source_access(expr)
        assert access.table == "customer"
        assert access.out_map == (1, 0)
        assert access.apply((1, "ann", "High")) == ("ann", 1)
        assert access.apply((2, "bob", "Low")) is None

    def test_map_terms_break_base_positions(self, db):
        schema = db.schema_of("sales")
        expr = MapProject(
            (Attr("cId"), Arith("+", Attr("qty"), Const(1))), db.ref("sales"), ("cId", "qtyPlus")
        )
        access = source_access(expr)
        assert access.out_map == (1, None)
        assert access.base_positions((0,)) == (1,)
        assert access.base_positions((1,)) is None
        assert schema.arity == 3

    def test_union_breaks_fusion(self, db):
        expr = db.ref("sales").union_all(db.ref("sales"))
        assert source_access(expr) is None


class TestLowering:
    def test_scan_and_literal(self, db):
        assert isinstance(compile_expr(db.ref("sales")), PScan)
        literal = Literal(Bag([(1,)]), Schema(["x"]))
        assert isinstance(compile_expr(literal), PLiteral)

    def test_fused_chain_becomes_pipeline(self, db):
        expr = db.ref("sales").project(["cId"])
        assert isinstance(compile_expr(expr), PPipeline)

    def test_projection_composition(self, db):
        expr = db.ref("customer").project(["name", "score"]).project(["score"])
        node = compile_expr(expr)
        # The fused pipeline applies both projections in one pass...
        assert isinstance(node, PPipeline)
        assert node.access.out_map == (2,)
        # ...and a non-fusable child still gets a single composed PProject.
        union = db.ref("customer").union_all(db.ref("customer"))
        composed = compile_expr(union.project(["name", "score"]).project(["score"]))
        assert isinstance(composed, PProject)
        assert composed.positions == (2,)
        assert isinstance(composed.child, PUnionAll)

    def test_const_equality_becomes_index_select(self, db):
        expr = db.ref("customer").where(
            And(
                Comparison("=", Attr("score"), Const("High")),
                Comparison("!=", Attr("custId"), Const(7)),
            )
        )
        node = compile_expr(expr)
        assert isinstance(node, PIndexSelect)
        assert node.key_positions == (2,)
        assert node.key_values == ("High",)
        assert node.residual is not None

    def test_select_without_constant_key_stays_filter(self, db):
        union = db.ref("customer").union_all(db.ref("customer"))
        expr = union.where(Comparison("=", Attr("score"), Const("High")))
        assert isinstance(compile_expr(expr), PFilter)

    def test_join_lowering_splits_residual(self, db):
        predicate = And(
            Comparison("=", Attr("custId"), Attr("cId")),
            And(
                Comparison("=", Attr("score"), Const("High")),  # probe-side only
                Comparison("!=", Attr("qty"), Const(0)),  # indexed-side only
            ),
        )
        expr = Select(predicate, db.ref("customer").product(db.ref("sales")))
        node = compile_expr(expr)
        assert isinstance(node, PEquiJoin)
        assert node.left.key_positions == (0,)
        assert node.right.key_positions == (1,)
        assert node.left.indexable and node.right.indexable
        assert node.left.side_filter is not None
        assert node.right.side_filter is not None
        assert node.residual is None

    def test_monus_against_table_probes(self, db):
        shrunk = db.ref("sales").where(Comparison("=", Attr("qty"), Const(0)))
        expr = shrunk.monus(db.ref("sales"))
        node = compile_expr(expr)
        assert isinstance(node, PMonus)
        assert node.probe_table == "sales"
        no_probe = compile_expr(db.ref("sales").monus(Literal(Bag([(1, 1, 1)]), db.schema_of("sales"))))
        assert no_probe.probe_table is None

    def test_self_cancelling_monus_folds(self, db):
        # E ∸ E is provably empty in every state; the property engine
        # lets the compiler fold it to a literal (see repro.analysis).
        node = compile_expr(db.ref("sales").monus(db.ref("sales")))
        assert isinstance(node, PLiteral)
        assert node.bag == Bag.empty()

    def test_structural_sharing(self, db):
        shared = db.ref("sales").project(["cId"])
        compiler = Compiler({})
        first = compiler.compile(shared.union_all(shared))
        assert first.left is first.right


class TestExecutionMatchesOracle:
    def test_every_node_shape(self, db):
        sales, customer = db.ref("sales"), db.ref("customer")
        join_pred = And(
            Comparison("=", Attr("custId"), Attr("cId")),
            Comparison("=", Attr("score"), Const("High")),
        )
        exprs = [
            sales,
            Literal(Bag([(1, 2)]), Schema(["a", "b"])),
            sales.project(["cId", "qty"]),
            sales.where(Comparison("=", Attr("cId"), Const(1))),
            sales.where(Comparison("<", Attr("qty"), Attr("saleId"))),
            MapProject((Arith("+", Attr("qty"), Const(1)),), sales, ("q1",)),
            sales.project(["cId"]).dedup(),
            sales.union_all(sales),
            sales.monus(sales.where(Comparison("=", Attr("qty"), Const(0)))),
            customer.product(sales),
            Select(join_pred, customer.product(sales)),
            Select(join_pred, customer.product(sales)).project(["name", "qty"]),
        ]
        for expr in exprs:
            compiled = db.evaluate(expr)
            assert compiled == evaluate(expr, db.state), expr

    def test_missing_table_raises(self, db):
        expr = db.ref("sales")
        db.drop_table("sales")
        with pytest.raises(UnknownTableError):
            db.evaluate(expr)

    def test_index_join_counts_probes_not_scans(self, db):
        expr = Select(
            Comparison("=", Attr("custId"), Attr("cId")),
            db.ref("customer").product(db.ref("sales")),
        )
        counter = CostCounter()
        result = db.evaluate(expr, counter=counter)
        assert result == evaluate(expr, db.state)
        ops = counter.by_operator
        # The sales side is served from the index: probes + bucket rows
        # examined are charged, but not a sales scan.
        assert ops["index_probe"] == 2
        assert ops["index_join"] == 3
        assert ops["scan"] == 2  # probe side (customer) only
        assert counter.index_probes == 2
