"""Plan-cache correctness under pinned snapshot versions.

Every engine keeps state keyed to the *live* database — compiled plan
caches, vectorized column-batch caches, sqlite mirrors, index advisors.
A pinned :class:`~repro.serve.SnapshotHandle` deliberately bypasses all
of it (handles evaluate with the interpreted oracle over their frozen
tables).  These tests interleave pinned evaluation with live engine
evaluation and assert neither contaminates the other: the live engines
keep their caches hot and correct, and pinned results never move.
"""

from __future__ import annotations

import pytest

from repro.algebra.evaluation import evaluate
from repro.algebra.expr import join
from repro.algebra.predicates import Attr, Comparison, Const
from repro.robustness.journal import bag_digest
from repro.serve import SnapshotRegistry
from repro.storage.database import Database

ENGINES = ("interpreted", "compiled", "vectorized", "sqlite")


def _build(engine: str) -> Database:
    db = Database(exec_mode=engine)
    db.create_table("r", ("a", "b"), rows=[(i, i % 3) for i in range(30)])
    db.create_table("s", ("b2", "c"), rows=[(j % 3, j) for j in range(10)])
    return db


def _query(db: Database):
    matched = join(db.ref("r"), db.ref("s"), Comparison("=", Attr("b"), Attr("b2")))
    return matched.where(Comparison(">", Attr("c"), Const(0)))


@pytest.mark.parametrize("engine", ENGINES)
def test_pinned_eval_ignores_live_engine_state(engine):
    db = _build(engine)
    registry = SnapshotRegistry()
    query = _query(db)

    # Warm the engine's caches on the live state.
    live_before = bag_digest(db.evaluate(query))

    handle = registry.pin(db)
    pinned_before = bag_digest(handle.evaluate(query))
    assert pinned_before == live_before

    # Mutate the live database; live evaluation (cached plans, column
    # batches, mirrors) must see the new rows, the pin must not.
    db.load("r", [(100 + i, i % 3) for i in range(5)])
    live_after = bag_digest(db.evaluate(query))
    assert live_after != live_before
    assert bag_digest(handle.evaluate(query)) == pinned_before

    # Interleave a few more rounds: repeated pinned evaluation between
    # live evaluations never perturbs either side.
    for round_no in range(3):
        db.load("s", [(round_no % 3, 1000 + round_no)])
        live = bag_digest(db.evaluate(query))
        assert bag_digest(handle.evaluate(query)) == pinned_before, round_no
        assert bag_digest(db.evaluate(query)) == live, round_no

    handle.release()


@pytest.mark.parametrize("engine", ENGINES)
def test_live_engine_matches_oracle_after_pinned_reads(engine):
    """Pinned evaluation must not poison live results vs the oracle."""
    db = _build(engine)
    registry = SnapshotRegistry()
    query = _query(db)
    handles = []
    for round_no in range(4):
        handles.append(registry.pin(db))
        for handle in handles:
            handle.evaluate(query)  # hammer pinned eval at every version
        db.load("r", [(200 + round_no, round_no % 3)])
        oracle = evaluate(query, {name: db[name] for name in db.table_names()})
        assert bag_digest(db.evaluate(query)) == bag_digest(oracle), round_no
    for handle in handles:
        handle.release()


def test_pinned_snapshots_at_distinct_versions_answer_distinctly():
    db = _build("compiled")
    registry = SnapshotRegistry()
    query = _query(db)
    digests = []
    for round_no in range(3):
        digests.append((registry.pin(db), bag_digest(db.evaluate(query))))
        db.load("r", [(300 + round_no, 0)])
    # Each pin still answers with its own version's digest.
    for handle, expected in digests:
        assert bag_digest(handle.evaluate(query)) == expected
        handle.release()
