"""Plan cache and version-stamped cross-call memoization tests."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Literal
from repro.algebra.predicates import Attr, Comparison, Const
from repro.errors import ReproError
from repro.exec import COMPILED, INTERPRETED, SQLITE, VECTORIZED, resolve_exec_mode
from repro.storage.database import Database


@pytest.fixture
def db():
    database = Database(exec_mode="compiled")
    database.create_table("R", ["a", "b"], rows=[(1, 10), (2, 20), (3, 30)])
    database.create_table("S", ["c"], rows=[(1,), (3,)])
    return database


def delta(rows, schema):
    return Literal(Bag(rows), schema)


class TestModeResolution:
    def test_aliases(self):
        assert resolve_exec_mode(None) == COMPILED
        assert resolve_exec_mode("interp") == INTERPRETED
        assert resolve_exec_mode("ORACLE") == INTERPRETED
        assert resolve_exec_mode("Compiled") == COMPILED
        assert resolve_exec_mode("columnar") == VECTORIZED
        assert resolve_exec_mode("batch") == VECTORIZED
        assert resolve_exec_mode("pushdown") == SQLITE
        assert resolve_exec_mode("SQL") == SQLITE

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            resolve_exec_mode("quantum")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "interpreted")
        assert Database().exec_mode == INTERPRETED
        monkeypatch.delenv("REPRO_EXEC")
        assert Database().exec_mode == COMPILED


class TestPlanCache:
    def test_hits_and_misses(self, db):
        expr = db.ref("R").project(["a"])
        counter = CostCounter()
        db.evaluate(expr, counter=counter)
        db.evaluate(expr, counter=counter)
        db.evaluate(expr, counter=counter)
        assert counter.plan_misses == 1
        assert counter.plan_hits == 2

    def test_structurally_equal_exprs_share_one_plan(self, db):
        counter = CostCounter()
        db.evaluate(db.ref("R").project(["a"]), counter=counter)
        db.evaluate(db.ref("R").project(["a"]), counter=counter)
        assert (counter.plan_misses, counter.plan_hits) == (1, 1)


class TestVersionStampedMemo:
    def test_result_reused_until_table_changes(self, db):
        expr = db.ref("R").project(["a"])
        counter = CostCounter()
        first = db.evaluate(expr, counter=counter)
        tuples_after_first = counter.tuples_out
        second = db.evaluate(expr, counter=counter)
        assert second is first  # memo hit: same object, no recompute
        assert counter.tuples_out == tuples_after_first
        assert counter.memo_hits == 1

    def test_patch_invalidates(self, db):
        expr = db.ref("R").project(["a"])
        schema = db.schema_of("R")
        stale = db.evaluate(expr)
        db.apply(patches={"R": (delta([], schema), delta([(9, 90)], schema))})
        fresh = db.evaluate(expr)
        assert fresh != stale
        assert fresh == Bag([(1,), (2,), (3,), (9,)])

    def test_set_table_invalidates(self, db):
        expr = db.ref("S").project(["c"])
        db.evaluate(expr)
        db.set_table("S", Bag([(42,)]))
        assert db.evaluate(expr) == Bag([(42,)])

    def test_restore_invalidates(self, db):
        expr = db.ref("R").project(["a"])
        snap = db.snapshot()
        db.set_table("R", Bag([(7, 70)]))
        assert db.evaluate(expr) == Bag([(7,)])
        db.restore(snap)
        assert db.evaluate(expr) == Bag([(1,), (2,), (3,)])

    def test_unrelated_write_keeps_memo(self, db):
        expr = db.ref("R").project(["a"])
        counter = CostCounter()
        db.evaluate(expr, counter=counter)
        db.set_table("S", Bag([(5,)]))  # R untouched
        db.evaluate(expr, counter=counter)
        assert counter.memo_hits == 1

    def test_drop_and_recreate_invalidates(self, db):
        expr = db.ref("S")
        assert db.evaluate(expr) == Bag([(1,), (3,)])
        db.drop_table("S")
        db.create_table("S", ["c"], rows=[(99,)])
        assert db.evaluate(expr) == Bag([(99,)])

    def test_memo_shared_across_structurally_equal_subtrees(self, db):
        shared = db.ref("R").where(Comparison(">", Attr("b"), Const(15)))
        combined = shared.union_all(shared)
        counter = CostCounter()
        db.evaluate(shared, counter=counter)
        db.evaluate(combined, counter=counter)
        # The union's two children resolve to the already-memoized node.
        assert counter.memo_hits >= 1


class TestIndexMaintenanceThroughWrites:
    def test_patch_written_through_to_index(self, db):
        expr = db.ref("R").where(Comparison("=", Attr("a"), Const(2)))
        schema = db.schema_of("R")
        assert db.evaluate(expr) == Bag([(2, 20)])
        index = db.indexes.indexes_on("R")[0]
        db.apply(patches={"R": (delta([(2, 20)], schema), delta([(2, 99)], schema))})
        assert db.indexes.indexes_on("R")[0] is index  # maintained, not rebuilt
        assert db.evaluate(expr) == Bag([(2, 99)])

    def test_assignment_rebuilds_index(self, db):
        expr = db.ref("R").where(Comparison("=", Attr("a"), Const(1)))
        db.evaluate(expr)
        db.apply({"R": delta([(1, 5), (1, 5)], db.schema_of("R"))})
        assert db.evaluate(expr) == Bag([(1, 5), (1, 5)])


class TestClone:
    def test_clone_keeps_mode_and_diverges_cleanly(self, db):
        expr = db.ref("R").project(["a"])
        db.evaluate(expr)
        clone = db.clone()
        assert clone.exec_mode == COMPILED
        db.set_table("R", Bag([(8, 80)]))
        assert clone.evaluate(expr) == Bag([(1,), (2,), (3,)])
        assert db.evaluate(expr) == Bag([(8,)])
