"""Unit and property tests for the group-refresh machinery.

Covers the three layers of :mod:`repro.exec.group` — subplan
fingerprints, the epoch-scoped delta cache, and the dependency-aware
scheduler — plus the acceptance property: a parallel group refresh is
bag-equal to the sequential per-view oracle over a randomized grid of
states, queries, and transactions.
"""

import random

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.exec.group import (
    EpochDeltaCache,
    GroupScheduler,
    GroupTask,
    bag_digest,
    subplan_fingerprint,
    view_fingerprints,
)
from repro.sqlfront.compiler import sql_to_view
from repro.storage.database import Database
from repro.warehouse.manager import ViewManager
from repro.workloads.randgen import RandomExpressionGenerator


def make_db():
    db = Database()
    db.create_table("R", ("a", "b"), rows=[(1, "x"), (2, "y")])
    db.create_table("S", ("a", "c"), rows=[(1, "p")])
    return db


JOIN_SQL = "SELECT R.a, S.c FROM R, S WHERE R.a = S.a"


class TestFingerprints:
    def test_equal_plans_fingerprint_equal(self):
        db = make_db()
        one = sql_to_view(JOIN_SQL, db, name="one")
        two = sql_to_view(JOIN_SQL, db, name="two")
        assert subplan_fingerprint(one.query) == subplan_fingerprint(two.query)

    def test_different_plans_fingerprint_differ(self):
        db = make_db()
        one = sql_to_view(JOIN_SQL, db, name="one")
        two = sql_to_view("SELECT a, b FROM R", db, name="two")
        assert subplan_fingerprint(one.query) != subplan_fingerprint(two.query)

    def test_rename_canonicalizes_private_table_names(self):
        db = make_db()
        db.create_table("log_A", ("a", "b"))
        db.create_table("log_B", ("a", "b"))
        from repro.algebra.expr import Project

        left = Project((0,), db.ref("log_A"), ("a",))
        right = Project((0,), db.ref("log_B"), ("a",))
        assert subplan_fingerprint(left) != subplan_fingerprint(right)
        assert subplan_fingerprint(left, {"log_A": "@"}) == subplan_fingerprint(
            right, {"log_B": "@"}
        )

    def test_view_fingerprints_detect_shared_join(self):
        db = make_db()
        join = sql_to_view(JOIN_SQL, db, name="join")
        same = sql_to_view(JOIN_SQL, db, name="same")
        assert view_fingerprints(join.query) & view_fingerprints(same.query)

    def test_view_fingerprints_ignore_trivial_table_wrappers(self):
        # Every SQL query wraps each table in an identity projection;
        # sharing only that wrapper must NOT count as overlap.
        db = make_db()
        join = sql_to_view(JOIN_SQL, db, name="join")
        scan = sql_to_view("SELECT a, b FROM R", db, name="scan")
        assert not (view_fingerprints(join.query) & view_fingerprints(scan.query))

    def test_bag_digest_is_content_based(self):
        assert bag_digest(Bag([(1, 2), (1, 2), (3, 4)])) == bag_digest(
            Bag([(3, 4), (1, 2), (1, 2)])
        )
        assert bag_digest(Bag([(1, 2)])) != bag_digest(Bag([(1, 2), (1, 2)]))


class TestEpochDeltaCache:
    def test_hit_counts_toward_counter(self):
        counter = CostCounter()
        cache = EpochDeltaCache(counter)
        deltas = (Bag([(1,)]), Bag([(2,)]))
        cache.store("k", deltas)
        assert "k" in cache
        assert cache.hit("k") == deltas
        assert cache.hit("k") == deltas
        assert counter.delta_cache_hits == 2


def make_task(name, order, *, key=None, reads=(), writes=(), log=None, result=None):
    result = result if result is not None else (Bag.empty(), Bag.empty())

    def compute(counter):
        if log is not None:
            log.append(("compute", name))
        return result

    def apply(deltas):
        if log is not None:
            log.append(("apply", name, deltas))

    return GroupTask(
        name=name,
        order=order,
        key=(lambda: key),
        compute=compute,
        apply=apply,
        reads=frozenset(reads),
        writes=frozenset(writes),
    )


class TestGroupScheduler:
    def test_independent_tasks_share_one_batch(self):
        tasks = [
            make_task("a", 0, reads={"R"}, writes={"mv_a"}),
            make_task("b", 1, reads={"R"}, writes={"mv_b"}),
        ]
        batches = GroupScheduler().batches(tasks)
        assert [[t.name for t in batch] for batch in batches] == [["a", "b"]]

    def test_conflicting_tasks_are_ordered_into_later_batches(self):
        tasks = [
            make_task("a", 0, reads={"R"}, writes={"mv_a"}),
            make_task("b", 1, reads={"mv_a"}, writes={"mv_b"}),
            make_task("c", 2, reads={"R"}, writes={"mv_c"}),
        ]
        batches = GroupScheduler().batches(tasks)
        assert [[t.name for t in batch] for batch in batches] == [["a", "c"], ["b"]]

    def test_shared_key_computes_once_and_applies_in_order(self):
        trace = []
        deltas = (Bag([(1,)]), Bag.empty())
        tasks = [
            make_task("a", 0, key="shared", log=trace, result=deltas, writes={"mv_a"}),
            make_task("b", 1, key="shared", log=trace, result=deltas, writes={"mv_b"}),
            make_task("c", 2, key="other", log=trace, result=deltas, writes={"mv_c"}),
        ]
        counter = CostCounter()
        cache = EpochDeltaCache(counter)
        GroupScheduler(counter=counter).run(tasks, cache)
        computes = [entry[1] for entry in trace if entry[0] == "compute"]
        applies = [entry[1] for entry in trace if entry[0] == "apply"]
        assert computes == ["a", "c"]  # "b" is served from the cache
        assert applies == ["a", "b", "c"]
        assert counter.delta_cache_hits == 1
        # The cached follower received the leader's exact delta bags.
        followed = next(entry for entry in trace if entry[:2] == ("apply", "b"))
        assert followed[2] == deltas

    @pytest.mark.parametrize("parallel", [False, True])
    def test_parallel_counters_are_absorbed(self, parallel):
        def counting_task(name, order):
            def compute(counter):
                if counter is not None:
                    counter.record("probe", 3)
                return (Bag.empty(), Bag.empty())

            return GroupTask(
                name=name,
                order=order,
                key=lambda: None,
                compute=compute,
                apply=lambda deltas: None,
            )

        counter = CostCounter()
        tasks = [counting_task(f"t{i}", i) for i in range(4)]
        GroupScheduler(counter=counter, parallel=parallel, max_workers=2).run(
            tasks, EpochDeltaCache(counter)
        )
        assert counter.by_operator["probe"] == 12


SCENARIO_CYCLE = ("shared_log", "base_log", "combined", "shared_log")


def build_manager(seed, view_count):
    """A manager over a random database with a mixed bag of scenarios."""
    gen = RandomExpressionGenerator(seed, tables=3, max_rows=6)
    db = gen.database()
    manager = ViewManager(db)
    for index in range(view_count):
        query = gen.query(db, depth=3)
        manager.define_view(
            f"V{index}", query, scenario=SCENARIO_CYCLE[index % len(SCENARIO_CYCLE)]
        )
    return gen, manager


def run_workload(manager, deltas_per_txn):
    for txn_deltas in deltas_per_txn:
        txn = manager.transaction()
        for table, (delete, insert) in txn_deltas.items():
            if delete:
                txn.delete(table, delete)
            if insert:
                txn.insert(table, insert)
        txn.run()


class TestParallelEqualsSequentialOracle:
    """Acceptance: group refresh (parallel, compacted) == per-view oracle."""

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_grid(self, seed):
        rng = random.Random(seed)
        view_count = rng.randint(3, 6)
        # Two identically-seeded managers: the oracle refreshes each view
        # sequentially; the subject runs one parallel group epoch.
        gen, oracle = build_manager(seed, view_count)
        _, subject = build_manager(seed, view_count)

        # One shared stream of literal deltas, applied to both.
        workload = []
        for _ in range(rng.randint(2, 4)):
            txn_deltas = {}
            for table in oracle.db.external_tables():
                arity = oracle.db.schema_of(table).arity
                txn_deltas[table] = (gen.bag(arity, 3), gen.bag(arity, 3))
            workload.append(txn_deltas)
        run_workload(oracle, workload)
        run_workload(subject, workload)

        oracle.refresh_all()
        subject.refresh_group(parallel=True)

        for name in oracle.views():
            assert subject.query(name) == oracle.query(name), name
            assert not subject.is_stale(name), name
        oracle.check_invariants()
        subject.check_invariants()
