"""Partition-granular group scheduling: resources, hot splits, chunk tasks."""

import warnings

import pytest

from repro.exec.group import (
    GroupScheduler,
    GroupTask,
    _conflicts,
    partition_resource,
    split_hot_partitions,
)
from repro.storage.database import Database
from repro.storage.partition import PartitionedDatabase
from repro.warehouse import ViewManager
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

CFG = RetailConfig(customers=80, initial_sales=800, promotion_fraction=0.15, seed=33)
TOP_SQL = "SELECT custId, itemNo FROM sales WHERE quantity != 0"


def task(name, *, reads=(), writes=(), order=0):
    return GroupTask(
        name=name,
        order=order,
        key=lambda: None,
        compute=lambda counter: (None, None),
        apply=lambda deltas: None,
        reads=frozenset(reads),
        writes=frozenset(writes),
    )


class TestPartitionResources:
    def test_same_partition_conflicts(self):
        a = task("a", writes=[partition_resource("MV", 3)])
        b = task("b", reads=[partition_resource("MV", 3)])
        assert _conflicts(a, b)

    def test_different_partitions_do_not_conflict(self):
        a = task("a", writes=[partition_resource("MV", 3)])
        b = task("b", reads=[partition_resource("MV", 4)])
        assert not _conflicts(a, b)

    def test_whole_table_conflicts_with_any_partition(self):
        whole = task("whole", writes=["MV"])
        part = task("part", reads=[partition_resource("MV", 7)])
        assert _conflicts(whole, part)
        assert _conflicts(part, whole)

    def test_partitions_of_different_tables_do_not_conflict(self):
        a = task("a", writes=[partition_resource("MV", 1)])
        b = task("b", reads=[partition_resource("Other", 1)])
        assert not _conflicts(a, b)

    def test_scheduler_co_batches_independent_partitions(self):
        a = task("a", writes=[partition_resource("MV", 0)], order=0)
        b = task("b", writes=[partition_resource("MV", 1)], order=1)
        c = task("c", writes=[partition_resource("MV", 0)], order=2)
        batches = GroupScheduler().batches([a, b, c])
        names = [[t.name for t in batch] for batch in batches]
        assert names == [["a", "b"], ["c"]]


class TestSplitHotPartitions:
    def test_cold_partitions_stay_whole(self):
        chunks = split_hot_partitions({0: [1, 2], 3: [4]}, 4)
        assert chunks == [("p0", (1, 2)), ("p3", (4,))]

    def test_hot_partition_sub_splits_evenly(self):
        chunks = split_hot_partitions({5: list(range(10))}, 4)
        labels = [label for label, _ in chunks]
        assert labels == ["p5.0", "p5.1", "p5.2"]
        pieces = [keys for _, keys in chunks]
        assert sorted(key for piece in pieces for key in piece) == list(range(10))
        assert max(len(piece) for piece in pieces) <= 4

    def test_order_is_deterministic(self):
        by_pid = {2: [9, 1], 0: [5], 1: [7, 3, 8]}
        assert split_hot_partitions(by_pid, 64) == split_hot_partitions(
            {k: list(v) for k, v in reversed(list(by_pid.items()))}, 64
        )

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            split_hot_partitions({0: [1]}, 0)

    def test_empty_input(self):
        assert split_hot_partitions({}, 8) == []


def build_manager(partitioned, mode="compiled"):
    db = PartitionedDatabase(exec_mode=mode) if partitioned else Database(exec_mode=mode)
    workload = RetailWorkload(CFG)
    workload.setup_database(db)
    if partitioned:
        db.declare_partitioning("customer", "custId", parts=8, domain="custId")
        db.declare_partitioning("sales", "custId", parts=8, domain="custId")
    manager = ViewManager(db)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        manager.define_view("VJoin", VIEW_SQL, scenario="base_log")
        manager.define_view("VTop", TOP_SQL, scenario="combined")
    return manager, workload


class TestChunkedGroupTasks:
    def test_chunk_tasks_declare_partition_resources(self):
        manager, workload = build_manager(True)
        for txn in workload.transactions(manager.db, 4):
            manager.execute(txn)
        tasks = manager.scenario("VJoin").partitioned_group_tasks(order=0)
        assert tasks is not None
        *chunks, finalize = tasks
        assert chunks, "expected at least one chunk task"
        for chunk in chunks:
            assert not chunk.writes
            assert any("#p" in resource for resource in chunk.reads)
        assert finalize.name == "VJoin[finalize]"
        assert any("#p" in resource for resource in finalize.writes)

    def test_unpartitioned_scenario_returns_none(self):
        manager, workload = build_manager(False)
        assert manager.scenario("VJoin").partitioned_group_tasks(order=0) is None

    def test_group_refresh_matches_sequential_oracle(self):
        oracle, oracle_w = build_manager(False, "interpreted")
        subject, subject_w = build_manager(True)
        for epoch in range(3):
            for txn in oracle_w.transactions(oracle.db, 5):
                oracle.execute(txn)
            for txn in subject_w.transactions(subject.db, 5):
                subject.execute(txn)
            for name in ("VJoin", "VTop"):
                oracle.refresh(name)
            subject.refresh_group(parallel=True)
        for name in ("VJoin", "VTop"):
            assert subject.query(name) == oracle.query(name), name
            assert not subject.is_stale(name)
        subject.check_invariants()

    def test_hot_threshold_splits_mid_stream(self):
        """A hot key burst past the threshold sub-splits its partition."""
        manager, workload = build_manager(True)
        # Concentrate a burst on few keys, then ask for chunk tasks with
        # a threshold of 1: every multi-key partition must sub-split.
        txn = manager.transaction()
        txn.insert("sales", [(1, 1, 2, 9.99), (9, 1, 1, 5.0), (17, 2, 1, 3.5)])
        txn.run()
        tasks = manager.scenario("VJoin").partitioned_group_tasks(
            order=0, hot_threshold=1
        )
        assert tasks is not None
        labels = [t.name for t in tasks[:-1]]
        spec = manager.db.partition_spec("sales")
        pids = {spec.partition_of(k) for k in (1, 9, 17)}
        if len(pids) < 3:  # at least two keys share a partition: must split
            assert any("." in label.rsplit("[", 1)[1] for label in labels)
        # Chunked refresh still lands on the right answer.
        manager.refresh_group(parallel=True)
        assert not manager.is_stale("VJoin")
        manager.check_invariants()
