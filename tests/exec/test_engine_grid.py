"""Randomized engine equivalence grid.

Seeded random core-algebra queries over seeded random databases,
evaluated under every execution engine across rounds of random updates
(over-deletes included, plus an empty-delta round).  The interpreted
engine is the oracle; compiled, vectorized, and sqlite must agree with
it query-for-query and table-for-table after every round.  This is the
adversarial complement to the workload-shaped checks in
``test_oracle.py``: the generator reaches operator combinations (deep
monus stacks, self-products, duplicate-heavy projections) no curated
workload exercises.
"""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.expr import DupElim, Literal, Monus
from repro.storage.database import Database
from repro.workloads.randgen import RandomExpressionGenerator

MODES = ("interpreted", "compiled", "vectorized", "sqlite")
ENGINES = tuple(mode for mode in MODES if mode != "interpreted")


def clone_for(mode, source):
    db = Database(exec_mode=mode)
    for name in source.external_tables():
        db.create_table(name, source.schema_of(name).attributes, rows=[])
        db.set_table(name, source[name])
    return db


@pytest.mark.parametrize("seed", range(8))
def test_randomized_queries_and_updates_agree(seed):
    gen = RandomExpressionGenerator(seed, tables=3, max_rows=8)
    oracle = gen.database()
    queries = [gen.query(oracle, depth=4) for __ in range(4)]
    engines = {mode: clone_for(mode, oracle) for mode in ENGINES}

    for round_index in range(4):
        expected = [oracle.evaluate(query) for query in queries]
        for mode, db in engines.items():
            for query, want in zip(queries, expected):
                got = db.evaluate(query)
                assert got == want, f"seed={seed} round={round_index} engine={mode}"

        patches = {}
        for name in oracle.external_tables():
            schema = oracle.schema_of(name)
            if round_index == 2:
                # An empty-delta round: refresh with nothing pending must
                # be a no-op on every engine's caches and mirrors.
                delete, insert = Bag.empty(), Bag.empty()
            else:
                # gen.bag deletes are NOT subbags — over-deletes clamp.
                delete, insert = gen.bag(schema.arity, 4), gen.bag(schema.arity, 4)
            patches[name] = (Literal(delete, schema), Literal(insert, schema))
        oracle.apply(patches=patches)
        for db in engines.values():
            db.apply(patches=patches)
        for mode, db in engines.items():
            for name in oracle.external_tables():
                assert db[name] == oracle[name], f"seed={seed} round={round_index} engine={mode}"


@pytest.mark.parametrize("mode", ENGINES)
def test_monus_edge_cases_agree(mode):
    gen = RandomExpressionGenerator(99, tables=2, max_rows=6)
    oracle = gen.database()
    db = clone_for(mode, oracle)
    name = next(iter(oracle.external_tables()))
    schema = oracle.schema_of(name)
    ref = oracle.ref(name)
    cases = [
        Monus(ref, ref),  # self-monus: always empty
        Monus(ref, DupElim(ref)),  # multiplicity arithmetic, not set difference
        Monus(DupElim(ref), ref),  # clamps at zero, never negative
        Monus(ref, Literal(Bag.empty(), schema)),  # identity
        Monus(Literal(Bag.empty(), schema), ref),  # empty stays empty
    ]
    for expr in cases:
        assert db.evaluate(expr) == oracle.evaluate(expr)
