"""Columnar batches and the vectorized executor.

Covers the :class:`~repro.algebra.columnar.ColumnBatch` representation
invariants (lossless bag round trips, signed netting, patch-append
clamping, gather sharing) and the executor-level behaviors the oracle
grid cannot see: incremental table-batch maintenance through writes,
lazy compaction, and batch memoization.
"""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.columnar import ColumnBatch
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Literal, join
from repro.algebra.predicates import Attr, Comparison, Const
from repro.exec.vectorized import VectorizedExecutor
from repro.storage.database import Database


class TestColumnBatch:
    def test_bag_round_trip_preserves_multiplicities(self):
        bag = Bag(counts={(1, "a"): 3, (2, "b"): 1, (1, "c"): 2})
        assert ColumnBatch.from_bag(bag).to_bag() == bag

    def test_empty_bag_round_trip(self):
        assert ColumnBatch.from_bag(Bag.empty()).to_bag() == Bag.empty()

    def test_signed_rows_net_away(self):
        batch = ColumnBatch.from_pairs([((1,), 2), ((2,), 1), ((1,), -2)], 1)
        assert batch.to_bag() == Bag([(2,)])
        assert batch.net_counts() == {(2,): 1}

    def test_net_counts_keeps_sign(self):
        batch = ColumnBatch.from_pairs([((1,), 1), ((1,), -3)], 1)
        assert batch.net_counts() == {(1,): -2}
        # to_bag drops non-positive nets (Bag cannot hold them).
        assert batch.to_bag() == Bag.empty()

    def test_zero_arity_batch(self):
        batch = ColumnBatch.from_pairs([((), 2), ((), -1)], 0)
        assert batch.to_bag() == Bag(counts={(): 1})

    def test_gather_shares_columns_and_mults(self):
        batch = ColumnBatch.from_bag(Bag([(1, 10), (2, 20)]))
        gathered = batch.gather((1, 0, 1))
        assert gathered.arity == 3
        assert gathered.columns[0] is batch.columns[1]
        assert gathered.columns[2] is batch.columns[1]
        assert gathered.mults is batch.mults
        assert gathered.to_bag() == Bag([(10, 1, 10), (20, 2, 20)])

    def test_gather_on_empty_batch_fixes_arity(self):
        gathered = ColumnBatch.empty(0).gather((0, 1))
        assert gathered.arity == 2
        assert gathered.to_bag() == Bag.empty()

    def test_concat_is_union_all(self):
        left = ColumnBatch.from_bag(Bag([(1,), (2,)]))
        right = ColumnBatch.from_bag(Bag([(2,), (3,)]))
        assert left.concat(right).to_bag() == Bag([(1,), (2,), (2,), (3,)])

    def test_consolidate_nets_to_canonical_form(self):
        batch = ColumnBatch.from_pairs([((1,), 2), ((1,), 1), ((2,), 3), ((2,), -3)], 1)
        compact = batch.consolidate()
        assert len(compact) == 1  # one physical row per surviving logical row
        assert compact.to_bag() == Bag(counts={(1,): 3})

    def test_append_patch_clamps_over_deletes(self):
        before = Bag(counts={(1,): 2, (2,): 1})
        batch = ColumnBatch.from_bag(before)
        # Delete 5 copies of a row holding 2, and a row never present.
        batch.append_patch(Bag(counts={(1,): 5, (9,): 1}), Bag([(3,)]), before)
        assert batch.to_bag() == before.patch(Bag(counts={(1,): 5, (9,): 1}), Bag([(3,)]))
        assert batch.net_counts() == {(2,): 1, (3,): 1}

    def test_append_patch_matches_bag_patch_over_rounds(self):
        value = Bag([(1, "x"), (2, "y")])
        batch = ColumnBatch.from_bag(value)
        rounds = [
            (Bag([(1, "x")]), Bag([(3, "z"), (3, "z")])),
            (Bag(counts={(3, "z"): 9}), Bag([(1, "x")])),
            (Bag.empty(), Bag([(4, "w")])),
        ]
        for delete, insert in rounds:
            batch.append_patch(delete, insert, value)
            value = value.patch(delete, insert)
            assert batch.to_bag() == value


@pytest.fixture
def db():
    database = Database(exec_mode="vectorized")
    database.create_table("R", ["a", "b"], rows=[(1, 10), (2, 20), (3, 30)])
    database.create_table("S", ["c"], rows=[(1,), (3,)])
    return database


def delta(rows, schema):
    return Literal(Bag(rows), schema)


class TestVectorizedExecutor:
    def test_database_dispatches_vectorized(self, db):
        assert isinstance(db.executor, VectorizedExecutor)

    def test_matches_interpreted_on_join_shape(self, db):
        expr = join(
            db.ref("R").where(Comparison(">", Attr("b"), Const(5))),
            db.ref("S"),
            on=Comparison("=", Attr("a"), Attr("c")),
        ).project(["a", "b"])
        oracle = Database(exec_mode="interpreted")
        oracle.create_table("R", ["a", "b"], rows=[(1, 10), (2, 20), (3, 30)])
        oracle.create_table("S", ["c"], rows=[(1,), (3,)])
        assert db.evaluate(expr) == oracle.evaluate(expr)

    def test_patch_appends_to_table_batch_in_place(self, db):
        expr = db.ref("R").project(["a"])
        db.evaluate(expr)
        batch = db.executor._table_cache._batches["R"]
        physical = len(batch)
        schema = db.schema_of("R")
        db.apply(patches={"R": (delta([(1, 10)], schema), delta([(4, 40)], schema))})
        assert db.executor._table_cache._batches["R"] is batch  # appended, not rebuilt
        assert len(batch) == physical + 2  # one insert row + one negated delete row
        assert db.evaluate(expr) == Bag([(2,), (3,), (4,)])

    def test_churn_triggers_compaction(self, db):
        expr = db.ref("R")
        db.evaluate(expr)
        schema = db.schema_of("R")
        for _ in range(20):
            db.apply(patches={"R": (delta([], schema), delta([(9, 90)], schema))})
            db.apply(patches={"R": (delta([(9, 90)], schema), delta([], schema))})
        appended = db.executor._table_cache._batches["R"]
        assert len(appended) > 32  # physical tail outgrew the support
        value = db.evaluate(expr)
        compacted = db.executor._table_cache._batches["R"]
        assert len(compacted) == value.distinct_count()
        assert value == Bag([(1, 10), (2, 20), (3, 30)])

    def test_replace_drops_cached_batch(self, db):
        expr = db.ref("R")
        db.evaluate(expr)
        db.set_table("R", Bag([(7, 70)]))
        assert "R" not in db.executor._table_cache._batches
        assert db.evaluate(expr) == Bag([(7, 70)])

    def test_batch_memo_hit_on_unchanged_expression(self, db):
        expr = db.ref("R").project(["a"])
        counter = CostCounter()
        first = db.evaluate(expr, counter=counter)
        second = db.evaluate(expr, counter=counter)
        assert second is first
        assert counter.memo_hits >= 1

    def test_monus_clamps_via_net_counts(self, db):
        schema = db.schema_of("S")
        left = Literal(Bag(counts={(1,): 2, (2,): 1}), schema)
        right = Literal(Bag(counts={(1,): 5, (3,): 1}), schema)
        from repro.algebra.expr import Monus

        assert db.evaluate(Monus(left, right)) == Bag([(2,)])

    def test_projection_charges_no_tuple_work(self, db):
        counter = CostCounter()
        db.evaluate(db.ref("R").project(["b", "a"]), counter=counter)
        # Projection gathers column references over the scanned batch —
        # scans are charged, but no per-row projection work is.
        assert counter.by_operator.get("scan", 0) > 0
        assert counter.by_operator.get("project", 0) == 0
