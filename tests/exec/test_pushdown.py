"""The SQLite pushdown engine (``exec_mode="sqlite"``).

Covers the pieces the oracle grid cannot see: structural pushability
verdicts, per-subtree fallback around non-pushable nodes, the
MirrorUnsupported escape hatch for values SQLite cannot round-trip,
incremental (UPSERT-canonical) mirror maintenance including NULL rows
and over-deletes, adoption of initially-empty tables, and the
version-stamped result memo.
"""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import DupElim, Literal, Monus, Project, UnionAll, join
from repro.algebra.predicates import Attr, Comparison, Const
from repro.algebra.schema import Schema
from repro.exec.pushdown import PushdownExecutor
from repro.storage.database import Database


@pytest.fixture
def db():
    database = Database(exec_mode="sqlite")
    database.create_table("R", ["a", "b"], rows=[(1, 10), (2, 20), (3, 30), (1, 10)])
    database.create_table("S", ["c"], rows=[(1,), (3,), (3,)])
    return database


def oracle_for(db):
    other = Database(exec_mode="interpreted")
    for name in db.external_tables():
        other.create_table(name, db.schema_of(name).attributes, rows=[])
        other.set_table(name, db[name])
    return other


def delta(rows, schema):
    return Literal(Bag(rows), schema)


JOIN_EXPR = None  # built per-db in tests (TableRefs carry schemas)


def join_expr(db):
    return join(
        db.ref("R").where(Comparison(">", Attr("b"), Const(5))),
        db.ref("S"),
        on=Comparison("=", Attr("a"), Attr("c")),
    ).project(["a", "b"])


class TestPushability:
    def test_database_dispatches_pushdown(self, db):
        assert isinstance(db.executor, PushdownExecutor)

    def test_join_tree_is_pushable(self, db):
        assert db.executor._is_pushable(join_expr(db))

    def test_zero_arity_projection_is_not_pushable(self, db):
        expr = Project((), db.ref("S"), ())
        assert not db.executor._is_pushable(expr)

    def test_literal_with_unrepresentable_value_is_not_pushable(self, db):
        literal = Literal(Bag([((1, 2),)]), Schema(("x",)))
        assert not db.executor._is_pushable(literal)

    def test_pushed_join_matches_interpreted_and_counts(self, db):
        counter = CostCounter()
        expr = join_expr(db)
        result = db.evaluate(expr, counter=counter)
        assert result == oracle_for(db).evaluate(expr)
        assert counter.by_operator.get("pushdown", 0) > 0


class TestFallback:
    def test_maximal_subtrees_pushed_around_blocker(self, db):
        # The union's right leg holds a value SQLite cannot store, so the
        # top of the tree runs vectorized — with the left leg still
        # evaluated in SQL and substituted back as a literal.
        blocked = Literal(Bag([((1, 2), 0)]), Schema(("a", "b")))
        expr = UnionAll(join_expr(db).project(["a", "b"]), blocked)
        counter = CostCounter()
        result = db.evaluate(expr, counter=counter)
        oracle = oracle_for(db)
        assert result == oracle.evaluate(UnionAll(join_expr(oracle), blocked))
        assert counter.by_operator.get("pushdown", 0) > 0

    def test_table_with_unrepresentable_values_falls_back(self, db):
        db.create_table("T", ["x"], rows=[((1, 2),), ((3, 4),)])
        expr = DupElim(db.ref("T"))
        assert db.evaluate(expr) == Bag([((1, 2),), ((3, 4),)])
        assert not db.executor.mirror.is_mirrored("T")

    def test_unrepresentable_patch_unmirrors_table(self, db):
        expr = DupElim(db.ref("S"))
        db.evaluate(expr)
        assert db.executor.mirror.is_mirrored("S")
        schema = db.schema_of("S")
        db.apply(patches={"S": (delta([], schema), delta([((9, 9),)], schema))})
        assert not db.executor.mirror.is_mirrored("S")
        # Still correct, just no longer pushed for this table.
        assert db.evaluate(expr) == Bag([(1,), (3,), ((9, 9),)])


class TestMirrorMaintenance:
    def test_patch_is_incremental_not_reload(self, db):
        mirror = db.executor.mirror
        expr = DupElim(db.ref("R"))
        db.evaluate(expr)
        schema = db.schema_of("R")
        db.apply(patches={"R": (delta([], schema), delta([(4, 40)], schema))})
        # The mirror absorbed the delta without waiting for the next scan.
        assert mirror.physical_rows("R") == 4
        assert db.evaluate(expr) == Bag([(1, 10), (2, 20), (3, 30), (4, 40)])

    def test_mirror_stays_canonical_under_duplicate_churn(self, db):
        mirror = db.executor.mirror
        expr = DupElim(db.ref("R"))
        db.evaluate(expr)
        schema = db.schema_of("R")
        for __ in range(5):
            db.apply(patches={"R": (delta([], schema), delta([(1, 10), (1, 10)], schema))})
        # One physical row per distinct value tuple, whatever the churn.
        assert mirror.physical_rows("R") == db["R"].distinct_count()
        assert db.evaluate(expr) == Bag([(1, 10), (2, 20), (3, 30)])

    def test_over_delete_clamps_like_bag_patch(self, db):
        expr = DupElim(db.ref("R"))
        db.evaluate(expr)
        schema = db.schema_of("R")
        delete = Bag(counts={(1, 10): 99, (7, 70): 1})
        before = db["R"]
        db.apply(patches={"R": (Literal(delete, schema), delta([(5, 50)], schema))})
        assert db["R"] == before.patch(delete, Bag([(5, 50)]))
        assert db.evaluate(expr) == Bag([(2, 20), (3, 30), (5, 50)])
        assert db.executor.mirror.physical_rows("R") == db["R"].distinct_count()

    def test_null_rows_take_the_manual_path(self, db):
        db.create_table("N", ["x", "y"], rows=[(None, 1), (None, 1), (2, None)])
        expr = DupElim(db.ref("N"))
        assert db.evaluate(expr) == Bag([(None, 1), (2, None)])
        schema = db.schema_of("N")
        db.apply(patches={"N": (delta([(None, 1)], schema), delta([(None, 3)], schema))})
        assert db.evaluate(expr) == Bag([(None, 1), (2, None), (None, 3)])
        assert db.executor.mirror.physical_rows("N") == db["N"].distinct_count()

    def test_replace_with_empty_bag_truncates_in_place(self, db):
        mirror = db.executor.mirror
        db.evaluate(DupElim(db.ref("S")))
        db.set_table("S", Bag.empty())
        assert mirror.is_mirrored("S")
        assert mirror.physical_rows("S") == 0
        assert db.evaluate(DupElim(db.ref("S"))) == Bag.empty()

    def test_initially_empty_table_adopted_at_first_write(self, db):
        db.create_table("L", ["x"], rows=[])
        mirror = db.executor.mirror
        schema = db.schema_of("L")
        db.apply(patches={"L": (delta([], schema), delta([(1,), (2,)], schema))})
        # Adopted for free at the first patch: no reload needed later.
        assert mirror.is_mirrored("L")
        assert mirror.physical_rows("L") == 2
        assert db.evaluate(DupElim(db.ref("L"))) == Bag([(1,), (2,)])


class TestResultMemo:
    def test_unchanged_expression_hits_memo(self, db):
        expr = join_expr(db)
        counter = CostCounter()
        first = db.evaluate(expr, counter=counter)
        second = db.evaluate(expr, counter=counter)
        assert second is first
        assert counter.memo_hits >= 1

    def test_write_invalidates_memo(self, db):
        expr = DupElim(db.ref("S"))
        db.evaluate(expr)
        schema = db.schema_of("S")
        db.apply(patches={"S": (delta([], schema), delta([(7,)], schema))})
        assert db.evaluate(expr) == Bag([(1,), (3,), (7,)])

    def test_sql_plan_cache_reused_across_versions(self, db):
        expr = join_expr(db)
        counter = CostCounter()
        db.evaluate(expr, counter=counter)
        schema = db.schema_of("S")
        db.apply(patches={"S": (delta([], schema), delta([(2,)], schema))})
        db.evaluate(expr, counter=counter)
        assert counter.plan_hits >= 1


class TestMonusPushdown:
    def test_monus_clamps_multiplicities(self, db):
        schema = db.schema_of("S")
        left = Literal(Bag(counts={(1,): 2, (2,): 1}), schema)
        right = Literal(Bag(counts={(1,): 5, (3,): 1}), schema)
        assert db.evaluate(Monus(left, right)) == Bag([(2,)])

    def test_monus_over_tables_matches_interpreted(self, db):
        expr = Monus(db.ref("S"), DupElim(db.ref("S")))
        assert db.evaluate(expr) == oracle_for(db).evaluate(expr)
