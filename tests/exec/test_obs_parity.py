"""Observability parity on the compiled-vs-interpreted grid.

Two guarantees, on the same seeded retail lifecycle the oracle tests
use:

1. **Tracing is free, per engine** — running with the full
   observability stack enabled must leave the :class:`CostCounter`
   byte-identical to a disabled run.  Spans *absorb* counter deltas;
   they never produce them, and the accountant/metrics never evaluate
   anything.

2. **Traces and metrics agree across engines** — modulo timing
   (``TIMING_FIELDS``) and engine-internal spans (``plan_compile``,
   ``index_sync`` exist only under the compiled engine), the span
   forest and the deterministic metrics (transactions, refreshes,
   propagations, delta-row histogram) are structurally identical:
   both engines run the same maintenance algorithm.
"""

import pytest

from repro import obs
from repro.core.scenarios import CombinedScenario
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

MODES = ("interpreted", "compiled")

#: Spans only one engine emits (compiled-engine cache/index internals).
ENGINE_INTERNAL_SPANS = frozenset({"plan_compile", "index_sync"})

def lifecycle(mode: str, *, enabled: bool):
    """One deterministic maintenance lifetime; returns (counter, obs stack)."""
    config = RetailConfig(customers=15, initial_sales=50, txn_inserts=5, seed=7)
    workload = RetailWorkload(config)
    db = Database(exec_mode=mode)
    workload.setup_database(db)
    scenario = CombinedScenario(db, sql_to_view(VIEW_SQL, db))
    scenario.install()

    def drive():
        for index, txn in enumerate(workload.transactions(db, 6), start=1):
            scenario.execute(txn)
            if index % 2 == 0:
                scenario.propagate()
            if index % 3 == 0:
                scenario.partial_refresh()
        scenario.refresh()

    if enabled:
        with obs.observed() as stack:
            drive()
        return scenario.counter, stack
    obs.disable()
    drive()
    return scenario.counter, None


def prune(structure: dict, drop: frozenset) -> dict:
    """A span-structure tree with engine-internal spans removed."""
    return {
        "name": structure["name"],
        "attrs": structure["attrs"],
        "children": [
            prune(child, drop) for child in structure["children"] if child["name"] not in drop
        ],
    }


@pytest.mark.parametrize("mode", MODES)
def test_observability_does_not_move_the_cost_counter(mode):
    baseline, _ = lifecycle(mode, enabled=False)
    observed, _ = lifecycle(mode, enabled=True)
    assert observed.snapshot() == baseline.snapshot()


def test_span_forest_identical_across_engines():
    forests = {}
    for mode in MODES:
        _, stack = lifecycle(mode, enabled=True)
        forests[mode] = [
            prune(root.structure(), ENGINE_INTERNAL_SPANS) for root in stack.tracer.roots
        ]
    assert forests["interpreted"], "tracer collected nothing"
    assert forests["interpreted"] == forests["compiled"]


def test_compiled_engine_emits_its_internal_spans():
    _, stack = lifecycle("compiled", enabled=True)
    assert stack.tracer.find("plan_compile"), "compiled engine should trace plan compiles"
    _, interpreted_stack = lifecycle("interpreted", enabled=True)
    assert not interpreted_stack.tracer.find("plan_compile")


#: Metrics both engines must report identically: pure counts of
#: maintenance events and the delta-size distribution, none of which
#: depend on wall time or on engine cache behavior.
DETERMINISTIC_METRICS = ("transactions", "refreshes", "propagations", "lock_sections", "delta_rows")


def test_deterministic_metrics_identical_across_engines():
    snapshots = {}
    for mode in MODES:
        _, stack = lifecycle(mode, enabled=True)
        full = stack.metrics.snapshot()
        snapshots[mode] = {name: full.get(name) for name in DETERMINISTIC_METRICS}
    assert snapshots["interpreted"]["transactions"] is not None
    assert snapshots["interpreted"] == snapshots["compiled"]
