"""Unit tests for incrementally-maintained hash indexes.

Includes the randomized ``Bag.patch`` / index consistency check: after
any sequence of patch-driven writes, an index lookup must return exactly
what a full-scan selection over the table returns.
"""

import random

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.exec.indexes import HashIndex, IndexManager


def bag_of(*rows):
    return Bag(rows)


class TestHashIndex:
    def test_build_and_lookup(self):
        bag = bag_of((1, "a"), (1, "b"), (2, "c"), (1, "a"))
        index = HashIndex.build((0,), bag)
        assert index.lookup((1,)) == {(1, "a"): 2, (1, "b"): 1}
        assert index.lookup((2,)) == {(2, "c"): 1}
        assert index.lookup((9,)) == {}
        assert len(index) == len(bag)

    def test_compound_key(self):
        bag = bag_of((1, "a", 5), (1, "b", 5), (1, "a", 6))
        index = HashIndex.build((0, 2), bag)
        assert index.lookup((1, 5)) == {(1, "a", 5): 1, (1, "b", 5): 1}

    def test_apply_delta_mirrors_patch(self):
        bag = bag_of((1, "a"), (2, "b"))
        index = HashIndex.build((0,), bag)
        delete, insert = bag_of((1, "a")), bag_of((3, "c"), (3, "c"))
        index.apply_delta(delete, insert)
        patched = bag.patch(delete, insert)
        assert index.lookup((1,)) == {}
        assert index.lookup((3,)) == {(3, "c"): 2}
        assert len(index) == len(patched)

    def test_delete_floors_at_zero(self):
        # Bag.patch floors multiplicities at zero; the index must agree.
        bag = bag_of((1, "a"))
        index = HashIndex.build((0,), bag)
        index.apply_delta(bag_of((1, "a"), (1, "a"), (1, "a")), Bag.empty())
        assert index.lookup((1,)) == {}
        assert index.bucket_count() == 0

    def test_delete_of_absent_row_is_noop(self):
        index = HashIndex.build((0,), bag_of((1, "a")))
        index.apply_delta(bag_of((7, "z")), Bag.empty())
        assert index.lookup((1,)) == {(1, "a"): 1}


class TestIndexManager:
    def test_lazy_build_charges_once(self):
        manager = IndexManager()
        counter = CostCounter()
        bag = bag_of((1,), (2,), (3,))
        first = manager.get("R", (0,), bag, counter=counter)
        second = manager.get("R", (0,), bag, counter=counter)
        assert first is second
        assert counter.by_operator["index_build"] == 3
        assert counter.by_operator.get("index_maint") is None

    def test_on_patch_defers_until_next_probe(self):
        manager = IndexManager()
        bag = bag_of((1, "a"), (2, "b"))
        manager.get("R", (0,), bag)
        manager.get("R", (1,), bag)
        counter = CostCounter()
        patched = bag.patch(bag_of((1, "a")), bag_of((1, "z")))
        manager.on_patch("R", bag_of((1, "a")), bag_of((1, "z")), counter=counter)
        # The write itself charges nothing — maintenance is deferred.
        assert counter.tuples_out == 0
        assert manager.pending_deltas("R") == 1
        by_key = manager.get("R", (0,), patched, counter=counter)
        assert by_key.lookup((1,)) == {(1, "z"): 1}
        # Draining one (delete, insert) pair costs O(|delta|) for one index.
        assert counter.by_operator["index_maint"] == 2
        by_val = manager.get("R", (1,), patched, counter=counter)
        assert by_val.lookup(("a",)) == {}
        assert by_val.lookup(("z",)) == {(1, "z"): 1}
        assert counter.by_operator["index_maint"] == 4
        # Both indexes drained: the queue is trimmed.
        assert manager.pending_deltas("R") == 0

    def test_on_patch_without_indexes_is_free(self):
        manager = IndexManager()
        counter = CostCounter()
        manager.on_patch("unindexed", bag_of((1,)), bag_of((2,)), counter=counter)
        assert counter.tuples_out == 0
        assert manager.pending_deltas("unindexed") == 0

    def test_big_pending_backlog_rebuilds_instead_of_draining(self):
        manager = IndexManager()
        bag = bag_of((1, "a"))
        manager.get("R", (0,), bag)
        # Churn: many D/I pairs whose net effect is small.
        for _ in range(10):
            manager.on_patch("R", Bag.empty(), bag_of((2, "b")))
            manager.on_patch("R", bag_of((2, "b")), Bag.empty())
        counter = CostCounter()
        index = manager.get("R", (0,), bag, counter=counter)
        # Pending volume (20 rows) exceeds the table (1 row): rebuild wins.
        assert counter.by_operator["index_build"] == 1
        assert "index_maint" not in counter.by_operator
        assert index.lookup((1,)) == {(1, "a"): 1}
        assert index.lookup((2,)) == {}

    def test_on_replace_rebuilds_lazily(self):
        manager = IndexManager()
        index = manager.get("R", (0,), bag_of((1, "a")))
        replaced = bag_of((5, "e"), (5, "f"))
        manager.on_replace("R", replaced)
        rebuilt = manager.get("R", (0,), replaced)
        assert rebuilt is not index
        assert rebuilt.lookup((5,)) == {(5, "e"): 1, (5, "f"): 1}
        # The cleared-log case: replacing with empty keeps the index alive.
        manager.on_replace("R", Bag.empty())
        assert manager.get("R", (0,), Bag.empty()).lookup((5,)) == {}
        assert manager.indexes_on("R") != ()

    def test_drop(self):
        manager = IndexManager()
        manager.get("R", (0,), bag_of((1,)))
        manager.drop("R")
        assert manager.indexes_on("R") == ()


class TestRandomizedPatchConsistency:
    """Randomized patch sequences keep index lookups == full-scan selects."""

    def test_random_patch_sequences(self):
        rng = random.Random(1996)
        for trial in range(20):
            table = Bag((rng.randrange(6), rng.randrange(4)) for _ in range(rng.randrange(30)))
            manager = IndexManager()
            manager.get("T", (0,), table)
            for _ in range(15):
                delete = Bag(
                    (rng.randrange(6), rng.randrange(4)) for _ in range(rng.randrange(5))
                )
                insert = Bag(
                    (rng.randrange(6), rng.randrange(4)) for _ in range(rng.randrange(5))
                )
                table = table.patch(delete, insert)
                manager.on_patch("T", delete, insert)
                # A probe drains the deferred deltas and must then agree
                # with a full scan of the current table value.
                index = manager.get("T", (0,), table)
                for key in range(6):
                    scanned = table.select(lambda row, key=key: row[0] == key)
                    assert dict(index.lookup((key,))) == dict(scanned.items()), (
                        f"trial {trial}: index diverged from full scan for key {key}"
                    )
                assert len(index) == len(table)
