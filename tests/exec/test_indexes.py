"""Unit tests for incrementally-maintained hash indexes.

Includes the randomized ``Bag.patch`` / index consistency check: after
any sequence of patch-driven writes, an index lookup must return exactly
what a full-scan selection over the table returns.
"""

import random

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.exec.indexes import HashIndex, IndexManager


def bag_of(*rows):
    return Bag(rows)


class TestHashIndex:
    def test_build_and_lookup(self):
        bag = bag_of((1, "a"), (1, "b"), (2, "c"), (1, "a"))
        index = HashIndex.build((0,), bag)
        assert index.lookup((1,)) == {(1, "a"): 2, (1, "b"): 1}
        assert index.lookup((2,)) == {(2, "c"): 1}
        assert index.lookup((9,)) == {}
        assert len(index) == len(bag)

    def test_compound_key(self):
        bag = bag_of((1, "a", 5), (1, "b", 5), (1, "a", 6))
        index = HashIndex.build((0, 2), bag)
        assert index.lookup((1, 5)) == {(1, "a", 5): 1, (1, "b", 5): 1}

    def test_apply_delta_mirrors_patch(self):
        bag = bag_of((1, "a"), (2, "b"))
        index = HashIndex.build((0,), bag)
        delete, insert = bag_of((1, "a")), bag_of((3, "c"), (3, "c"))
        index.apply_delta(delete, insert)
        patched = bag.patch(delete, insert)
        assert index.lookup((1,)) == {}
        assert index.lookup((3,)) == {(3, "c"): 2}
        assert len(index) == len(patched)

    def test_delete_floors_at_zero(self):
        # Bag.patch floors multiplicities at zero; the index must agree.
        bag = bag_of((1, "a"))
        index = HashIndex.build((0,), bag)
        index.apply_delta(bag_of((1, "a"), (1, "a"), (1, "a")), Bag.empty())
        assert index.lookup((1,)) == {}
        assert index.bucket_count() == 0

    def test_delete_of_absent_row_is_noop(self):
        index = HashIndex.build((0,), bag_of((1, "a")))
        index.apply_delta(bag_of((7, "z")), Bag.empty())
        assert index.lookup((1,)) == {(1, "a"): 1}


class TestIndexManager:
    def test_lazy_build_charges_once(self):
        manager = IndexManager()
        counter = CostCounter()
        bag = bag_of((1,), (2,), (3,))
        first = manager.get("R", (0,), bag, counter=counter)
        second = manager.get("R", (0,), bag, counter=counter)
        assert first is second
        assert counter.by_operator["index_build"] == 3
        assert counter.by_operator.get("index_maint") is None

    def test_on_patch_defers_until_next_probe(self):
        manager = IndexManager()
        bag = bag_of((1, "a"), (2, "b"))
        manager.get("R", (0,), bag)
        manager.get("R", (1,), bag)
        counter = CostCounter()
        patched = bag.patch(bag_of((1, "a")), bag_of((1, "z")))
        manager.on_patch("R", bag_of((1, "a")), bag_of((1, "z")), counter=counter)
        # The write itself charges nothing — maintenance is deferred.
        assert counter.tuples_out == 0
        assert manager.pending_deltas("R") == 1
        by_key = manager.get("R", (0,), patched, counter=counter)
        assert by_key.lookup((1,)) == {(1, "z"): 1}
        # Draining one (delete, insert) pair costs O(|delta|) for one index.
        assert counter.by_operator["index_maint"] == 2
        by_val = manager.get("R", (1,), patched, counter=counter)
        assert by_val.lookup(("a",)) == {}
        assert by_val.lookup(("z",)) == {(1, "z"): 1}
        assert counter.by_operator["index_maint"] == 4
        # Both indexes drained: the queue is trimmed.
        assert manager.pending_deltas("R") == 0

    def test_on_patch_without_indexes_is_free(self):
        manager = IndexManager()
        counter = CostCounter()
        manager.on_patch("unindexed", bag_of((1,)), bag_of((2,)), counter=counter)
        assert counter.tuples_out == 0
        assert manager.pending_deltas("unindexed") == 0

    def test_churny_backlog_nets_to_nothing(self):
        manager = IndexManager()
        bag = bag_of((1, "a"))
        manager.get("R", (0,), bag)
        # Churn: many D/I pairs whose net effect is zero.
        for _ in range(10):
            manager.on_patch("R", Bag.empty(), bag_of((2, "b")))
            manager.on_patch("R", bag_of((2, "b")), Bag.empty())
        counter = CostCounter()
        index = manager.get("R", (0,), bag, counter=counter)
        # The queued run is netted before the rebuild-vs-drain decision:
        # 20 raw delta rows collapse to nothing, so the drain is free.
        assert "index_build" not in counter.by_operator
        assert "index_maint" not in counter.by_operator
        assert index.lookup((1,)) == {(1, "a"): 1}
        assert index.lookup((2,)) == {}

    def test_big_net_backlog_rebuilds_instead_of_draining(self):
        manager = IndexManager()
        bag = bag_of((1, "a"))
        manager.get("R", (0,), bag)
        # Net churn (3 distinct surviving rows) exceeds the table's
        # distinct size (1 row): rebuilding from the bag is cheaper.
        for value in ("b", "c", "d"):
            manager.on_patch("R", Bag.empty(), bag_of((2, value)))
        counter = CostCounter()
        index = manager.get("R", (0,), bag, counter=counter)
        assert counter.by_operator["index_build"] == 1
        assert "index_maint" not in counter.by_operator
        assert index.lookup((1,)) == {(1, "a"): 1}
        assert index.lookup((2,)) == {}

    def test_on_replace_rebuilds_lazily(self):
        manager = IndexManager()
        index = manager.get("R", (0,), bag_of((1, "a")))
        replaced = bag_of((5, "e"), (5, "f"))
        manager.on_replace("R", replaced)
        rebuilt = manager.get("R", (0,), replaced)
        assert rebuilt is not index
        assert rebuilt.lookup((5,)) == {(5, "e"): 1, (5, "f"): 1}
        # The cleared-log case: replacing with empty keeps the index alive.
        manager.on_replace("R", Bag.empty())
        assert manager.get("R", (0,), Bag.empty()).lookup((5,)) == {}
        assert manager.indexes_on("R") != ()

    def test_drop(self):
        manager = IndexManager()
        manager.get("R", (0,), bag_of((1,)))
        manager.drop("R")
        assert manager.indexes_on("R") == ()


class TestRandomizedPatchConsistency:
    """Randomized patch sequences keep index lookups == full-scan selects."""

    def test_random_patch_sequences(self):
        rng = random.Random(1996)
        for trial in range(20):
            table = Bag((rng.randrange(6), rng.randrange(4)) for _ in range(rng.randrange(30)))
            manager = IndexManager()
            manager.get("T", (0,), table)
            for _ in range(15):
                delete = Bag(
                    (rng.randrange(6), rng.randrange(4)) for _ in range(rng.randrange(5))
                )
                insert = Bag(
                    (rng.randrange(6), rng.randrange(4)) for _ in range(rng.randrange(5))
                )
                table = table.patch(delete, insert)
                manager.on_patch("T", delete, insert)
                # A probe drains the deferred deltas and must then agree
                # with a full scan of the current table value.
                index = manager.get("T", (0,), table)
                for key in range(6):
                    scanned = table.select(lambda row, key=key: row[0] == key)
                    assert dict(index.lookup((key,))) == dict(scanned.items()), (
                        f"trial {trial}: index diverged from full scan for key {key}"
                    )
                assert len(index) == len(table)


class TestComposedDrain:
    """The net-composition drain of a queued patch run (satellite of the
    vectorized-engine PR): composing the queue must be indistinguishable
    from applying it sequentially, including ``Bag.patch`` flooring."""

    def test_composition_matches_sequential_floored_patches(self):
        rng = random.Random(42)
        values = ["a", "b", "c"]
        for trial in range(30):
            table = Bag([(key, value) for key in range(3) for value in values])
            sequential = IndexManager()
            composed = IndexManager()
            sequential.get("R", (0,), table)
            composed.get("R", (0,), table)
            for _ in range(rng.randrange(1, 8)):
                delete = Bag(
                    [
                        (rng.randrange(4), rng.choice(values))
                        for _ in range(rng.randrange(0, 4))
                    ]
                )
                insert = Bag(
                    [
                        (rng.randrange(4), rng.choice(values))
                        for _ in range(rng.randrange(0, 4))
                    ]
                )
                table = table.patch(delete, insert)
                # Sequential oracle: drain after *every* patch (tail of
                # length one, so composition is the identity).
                sequential.on_patch("R", delete, insert)
                sequential.get("R", (0,), table)
                # Composed: just enqueue; one drain at the end.
                composed.on_patch("R", delete, insert)
            expected = sequential.get("R", (0,), table)
            # Force the drain path (not a rebuild) to test composition.
            counter = CostCounter()
            actual = composed.get("R", (0,), table, counter=counter)
            for key in range(5):
                assert actual.lookup((key,)) == expected.lookup((key,)), f"trial {trial}"
            assert len(actual) == len(table)

    def test_over_delete_is_floored_like_bag_patch(self):
        manager = IndexManager()
        table = bag_of((1, "a"), (1, "a"), (2, "b"))
        manager.get("R", (0,), table)
        # Delete 5 copies of a row present twice, then re-insert one.
        delete, insert = Bag(counts={(1, "a"): 5}), bag_of((1, "a"))
        patched = table.patch(delete, insert)
        manager.on_patch("R", delete, insert)
        index = manager.get("R", (0,), patched)
        assert index.lookup((1,)) == {(1, "a"): 1}
        assert len(index) == len(patched)

    def test_empty_replace_keeps_index_warm(self):
        manager = IndexManager()
        log = bag_of((1, "a"), (2, "b"), (3, "c"))
        manager.get("L", (0,), log)
        # Refresh truncates the log by assignment of the empty bag...
        manager.on_replace("L", Bag.empty())
        # ...then the next round of transactions appends to it.
        appended = Bag.empty()
        counter = CostCounter()
        for row in [(4, "d"), (5, "e")]:
            delete, insert = Bag.empty(), bag_of(row)
            appended = appended.patch(delete, insert)
            manager.on_patch("L", delete, insert)
        index = manager.get("L", (0,), appended, counter=counter)
        # The cleared index stayed warm and current: the probe pays an
        # O(|net delta|) drain, never an O(|log|) rebuild.
        assert "index_build" not in counter.by_operator
        assert counter.by_operator["index_maint"] == 2
        assert index.lookup((4,)) == {(4, "d"): 1}
        assert index.lookup((1,)) == {}


class TestE7RefreshCounters:
    """E7-shaped regression: with priming at install time, the composed
    drain, and the warm empty-replace path, a refresh after a round of
    log appends performs **zero** index rebuilds — upkeep is bounded by
    the net log content (``index_maint``), never the table sizes."""

    def test_refresh_pays_no_index_build(self):
        from repro.core.scenarios import BaseLogScenario
        from repro.sqlfront import sql_to_view
        from repro.storage.database import Database
        from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

        config = RetailConfig(customers=30, initial_sales=90, txn_inserts=5, seed=96)
        workload = RetailWorkload(config)
        db = Database(exec_mode="compiled")
        workload.setup_database(db)
        scenario = BaseLogScenario(db, sql_to_view(VIEW_SQL, db))
        scenario.install()

        def refresh_counters():
            before = dict(scenario.counter.by_operator)
            scenario.refresh()
            return {
                op: count - before.get(op, 0)
                for op, count in scenario.counter.by_operator.items()
                if count != before.get(op, 0)
            }

        for round_index in range(3):
            for txn in workload.transactions(db, 4):
                scenario.execute(txn)
            net_log_rows = sum(
                len(db[name]) for name in db.table_names() if "__log" in name
            )
            ops = refresh_counters()
            assert scenario.is_consistent()
            # Install-time priming built every index once; refreshes
            # never rebuild, and the deferred sync they pay is bounded
            # by what the transactions actually appended to the logs.
            assert "index_build" not in ops, f"round {round_index}: {ops}"
            assert ops.get("index_maint", 0) <= 2 * net_log_rows, f"round {round_index}: {ops}"
