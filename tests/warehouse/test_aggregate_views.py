"""ViewManager + SQL GROUP BY integration for aggregate views."""

import pytest

from repro.algebra.bag import Bag
from repro.errors import ParseError, PolicyError, SchemaError
from repro.sqlfront.compiler import sql_to_expr
from repro.warehouse import ViewManager


@pytest.fixture
def manager():
    vm = ViewManager()
    vm.create_table("orders", ["region", "amount"], rows=[("e", 10), ("e", 5), ("w", 7)])
    return vm


AGG_SQL = "SELECT region, COUNT(*), SUM(amount) AS total FROM orders GROUP BY region"


class TestDefinition:
    def test_group_by_sql_creates_aggregate_scenario(self, manager):
        scenario = manager.define_view("rev", AGG_SQL)
        assert scenario.tag == "AGG"
        assert manager.query("rev") == Bag([("e", 2, 15), ("w", 1, 7)])

    def test_create_view_form(self, manager):
        manager.define_view("rev", f"CREATE VIEW rev AS {AGG_SQL}")
        assert manager.query("rev") == Bag([("e", 2, 15), ("w", 1, 7)])

    def test_count_added_implicitly(self, manager):
        manager.define_view("rev", "SELECT region, SUM(amount) AS t FROM orders GROUP BY region")
        # implicit COUNT(*) comes first in the output schema
        assert manager.query("rev") == Bag([("e", 2, 15), ("w", 1, 7)])

    def test_global_aggregate_without_group_by(self, manager):
        manager.define_view("totals", "SELECT COUNT(*), SUM(amount) AS total FROM orders")
        assert manager.query("totals") == Bag([(3, 22)])

    def test_where_clause_respected(self, manager):
        manager.define_view(
            "big", "SELECT region, COUNT(*) FROM orders WHERE amount > 6 GROUP BY region"
        )
        assert manager.query("big") == Bag([("e", 1), ("w", 1)])

    def test_aggregates_over_join(self, manager):
        manager.create_table("names", ["region", "label"], rows=[("e", "east"), ("w", "west")])
        manager.define_view(
            "rev",
            """SELECT n.label, COUNT(*), SUM(o.amount) AS total
               FROM orders o, names n WHERE o.region = n.region
               GROUP BY n.label""",
        )
        assert manager.query("rev") == Bag([("east", 2, 15), ("west", 1, 7)])

    def test_non_group_column_rejected(self, manager):
        with pytest.raises(SchemaError, match="GROUP BY"):
            manager.define_view("bad", "SELECT amount, COUNT(*) FROM orders GROUP BY region")

    def test_options_rejected(self, manager):
        with pytest.raises(PolicyError):
            manager.define_view("bad", AGG_SQL, scenario="immediate")
        with pytest.raises(PolicyError):
            manager.define_view("bad2", AGG_SQL, strong_minimality=True)

    def test_adhoc_aggregate_query_rejected(self, manager):
        with pytest.raises(ParseError):
            sql_to_expr(AGG_SQL, manager.db)


class TestMaintenance:
    def test_deferred_updates_then_refresh(self, manager):
        manager.define_view("rev", AGG_SQL)
        manager.execute_sql("INSERT INTO orders VALUES ('e', 100), ('n', 1)")
        assert manager.is_stale("rev")
        manager.check_invariants()
        manager.refresh("rev")
        assert manager.query("rev") == Bag([("e", 3, 115), ("w", 1, 7), ("n", 1, 1)])

    def test_propagate_and_partial_refresh(self, manager):
        manager.define_view("rev", AGG_SQL)
        manager.execute_sql("DELETE FROM orders WHERE region = 'w'")
        manager.propagate("rev")
        manager.partial_refresh("rev")
        assert manager.query("rev") == Bag([("e", 2, 15)])
        assert not manager.is_stale("rev")

    def test_update_statement_flows_through(self, manager):
        manager.define_view("rev", AGG_SQL)
        manager.execute_sql("UPDATE orders SET amount = amount + 1 WHERE region = 'e'")
        manager.refresh("rev")
        assert manager.query("rev") == Bag([("e", 2, 17), ("w", 1, 7)])

    def test_mixed_with_plain_views(self, manager):
        manager.define_view("rev", AGG_SQL)
        manager.define_view("plain", "SELECT region FROM orders", scenario="combined")
        manager.execute_sql("INSERT INTO orders VALUES ('e', 1)")
        manager.check_invariants()
        manager.refresh_all()
        assert manager.query("rev").multiplicity(("e", 3, 16)) == 1
        assert manager.query("plain").multiplicity(("e",)) == 3

    def test_downtime_accounted(self, manager):
        manager.define_view("rev", AGG_SQL)
        manager.execute_sql("INSERT INTO orders VALUES ('e', 2)")
        manager.refresh("rev")
        # Ops-counted, not wall-clocked: a coarse timer can legally
        # measure a fast refresh as 0.0 seconds, but the exclusive
        # section and its tuple work are deterministic.
        mv = manager.scenario("rev").view.mv_table
        assert manager.ledger.downtime_tuple_ops(mv) > 0
        assert any(s.resource == mv for s in manager.ledger.sections)
        assert manager.downtime_seconds("rev") >= 0.0


class TestShell:
    def test_cli_aggregate_view(self):
        from repro.cli import WarehouseShell

        shell = WarehouseShell()
        shell.handle_line("CREATE TABLE orders (region, amount);")
        shell.handle_line("INSERT INTO orders VALUES ('e', 10), ('w', 7);")
        out = shell.handle_line(
            "CREATE VIEW rev AS SELECT region, COUNT(*), SUM(amount) AS total "
            "FROM orders GROUP BY region;"
        )
        assert "materialized" in out
        shell.handle_line("INSERT INTO orders VALUES ('e', 5);")
        shell.handle_line(".refresh rev")
        result = shell.handle_line("SELECT region, total FROM rev;")
        assert "15" in result
