"""Tests for view removal (uninstall) across scenarios."""

import pytest

from repro.errors import UnknownTableError
from repro.warehouse import ViewManager


@pytest.fixture
def manager():
    vm = ViewManager()
    vm.create_table("t", ["a"], rows=[(1,), (2,)])
    return vm


@pytest.mark.parametrize("scenario", ["immediate", "base_log", "diff_table", "combined"])
def test_drop_view_removes_all_internal_tables(manager, scenario):
    manager.define_view("V", "SELECT a FROM t", scenario=scenario)
    assert manager.db.internal_tables()
    manager.drop_view("V")
    assert manager.db.internal_tables() == ()
    assert "V" not in manager.views()


def test_drop_aggregate_view(manager):
    manager.define_view("agg", "SELECT a, COUNT(*) FROM t GROUP BY a")
    manager.drop_view("agg")
    assert manager.db.internal_tables() == ()


def test_drop_unknown_view(manager):
    with pytest.raises(UnknownTableError):
        manager.drop_view("nope")


def test_redefine_after_drop(manager):
    manager.define_view("V", "SELECT a FROM t", scenario="combined")
    manager.drop_view("V")
    manager.define_view("V", "SELECT a FROM t WHERE a > 1", scenario="combined")
    assert manager.query("V").support == frozenset({(2,)})


def test_drop_leaves_other_views_working(manager):
    manager.define_view("V", "SELECT a FROM t", scenario="combined")
    manager.define_view("W", "SELECT a FROM t WHERE a > 0", scenario="combined")
    manager.drop_view("V")
    manager.transaction().insert("t", [(3,)]).run()
    manager.check_invariants()
    assert (3,) in manager.query_fresh("W")


def test_transactions_after_drop_do_no_maintenance_work(manager):
    manager.define_view("V", "SELECT a FROM t", scenario="combined")
    manager.drop_view("V")
    before = manager.counter.tuples_out
    manager.transaction().insert("t", [(9,)]).run()
    # Only the user patch itself: one inserted row plus its literal.
    assert manager.counter.tuples_out - before <= 3


def test_drop_with_attached_driver(manager):
    from repro.core.policies import Policy2

    manager.define_view("V", "SELECT a FROM t", scenario="combined", policy=Policy2(k=1, m=2))
    manager.drop_view("V")
    from repro.errors import PolicyError

    with pytest.raises(PolicyError):
        manager.driver("V")
