"""ViewManager-level group refresh: shared_log views, RVM501, mixed scenarios."""

import warnings

import pytest

from repro.algebra.bag import Bag
from repro.analysis.diagnostics import AnalysisError, AnalysisWarning
from repro.errors import ReproError
from repro.extensions.sharedlog import SharedLogView
from repro.warehouse import ViewManager
from repro.warehouse.persistence import load_warehouse, save_warehouse

JOIN_SQL = "SELECT R.a, S.b FROM R, S WHERE R.a = S.a"


@pytest.fixture
def manager():
    vm = ViewManager()
    vm.create_table("R", ["a"], rows=[(1,), (2,)])
    vm.create_table("S", ["a", "b"], rows=[(2, "x"), (3, "y")])
    return vm


def churn(manager):
    txn = manager.transaction()
    txn.delete("R", [(1,)])
    txn.insert("R", [(3,), (3,)])
    txn.insert("S", [(3, "z")])
    txn.run()


class TestSharedLogScenario:
    def test_define_and_refresh(self, manager):
        manager.define_view("V", JOIN_SQL, scenario="shared_log")
        churn(manager)
        assert manager.is_stale("V")
        manager.refresh("V")
        assert manager.query("V") == manager.sql(JOIN_SQL)
        assert not manager.is_stale("V")

    def test_views_share_one_group(self, manager):
        manager.define_view("V1", JOIN_SQL, scenario="shared_log")
        manager.define_view("V2", "SELECT a FROM R", scenario="shared_log")
        s1, s2 = manager.scenario("V1"), manager.scenario("V2")
        assert isinstance(s1, SharedLogView)
        assert s1.group is s2.group
        assert set(s1.group.views()) == {"V1", "V2"}

    def test_strong_minimality_rejected(self, manager):
        with pytest.raises(ReproError):
            manager.define_view("V", JOIN_SQL, scenario="shared_log", strong_minimality=True)

    def test_unknown_scenario_lists_shared_log(self, manager):
        with pytest.raises(ReproError, match="shared_log"):
            manager.define_view("V", JOIN_SQL, scenario="bogus")

    def test_drop_view_detaches_from_group(self, manager):
        manager.define_view("V1", JOIN_SQL, scenario="shared_log")
        manager.define_view("V2", "SELECT a FROM R", scenario="shared_log")
        manager.drop_view("V1")
        assert manager.views() == ("V2",)
        group = manager.scenario("V2").group
        assert set(group.views()) == {"V2"}
        churn(manager)
        manager.refresh("V2")
        assert manager.query("V2") == manager.sql("SELECT a FROM R")


class TestGroupRefreshMixedScenarios:
    SCENARIOS = ("shared_log", "base_log", "combined", "immediate", "diff_table")

    def test_all_views_fresh_and_correct(self, manager):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", AnalysisWarning)
            for index, scenario in enumerate(self.SCENARIOS):
                manager.define_view(f"V{index}", JOIN_SQL, scenario=scenario)
        churn(manager)
        manager.refresh_group(parallel=True)
        expected = manager.sql(JOIN_SQL)
        for index in range(len(self.SCENARIOS)):
            assert manager.query(f"V{index}") == expected, f"V{index}"
            assert not manager.is_stale(f"V{index}")
        manager.check_invariants()

    def test_shared_structure_hits_delta_cache(self, manager):
        for index in range(4):
            manager.define_view(f"V{index}", JOIN_SQL, scenario="shared_log")
        churn(manager)
        manager.refresh_group()
        assert manager.exec_stats()["delta_cache_hits"] >= 3

    def test_subset_refresh_leaves_others_stale(self, manager):
        manager.define_view("A", JOIN_SQL, scenario="shared_log")
        manager.define_view("B", "SELECT a FROM R", scenario="shared_log")
        churn(manager)
        manager.refresh_group(["A"])
        assert not manager.is_stale("A")
        assert manager.is_stale("B")


class TestLintGroupOverlap:
    def test_warns_when_overlapping_view_outside_group(self, manager):
        manager.define_view("Grouped", JOIN_SQL, scenario="shared_log")
        with pytest.warns(AnalysisWarning, match="RVM501"):
            manager.define_view("Outside", JOIN_SQL, scenario="base_log")

    def test_strict_mode_raises(self, manager):
        manager.define_view("Grouped", JOIN_SQL, scenario="shared_log")
        with pytest.raises(AnalysisError, match="RVM501"):
            manager.define_view("Outside", JOIN_SQL, scenario="base_log", strict=True)

    def test_disjoint_view_is_silent(self, manager):
        manager.define_view("Grouped", JOIN_SQL, scenario="shared_log")
        with warnings.catch_warnings():
            warnings.simplefilter("error", AnalysisWarning)
            manager.define_view("Outside", "SELECT a FROM R", scenario="base_log")

    def test_joining_the_group_is_silent(self, manager):
        manager.define_view("Grouped", JOIN_SQL, scenario="shared_log")
        with warnings.catch_warnings():
            warnings.simplefilter("error", AnalysisWarning)
            manager.define_view("Also", JOIN_SQL, scenario="shared_log")


class TestSharedLogPersistence:
    def test_round_trip_mid_deferral(self, manager, tmp_path):
        manager.define_view("V1", JOIN_SQL, scenario="shared_log")
        manager.define_view("V2", "SELECT a FROM R", scenario="shared_log")
        churn(manager)
        manager.refresh("V1")  # V1 caught up; V2 still behind
        path = tmp_path / "wh.db"
        save_warehouse(manager, path)

        reloaded = load_warehouse(path)
        group = reloaded.scenario("V1").group
        assert set(group.views()) == {"V1", "V2"}
        assert group.cursor("V1") > group.cursor("V2")
        assert not reloaded.is_stale("V1")
        assert reloaded.is_stale("V2")
        # The restored sequence keeps climbing past the saved head.
        seq_before = group.shared_log.current_seq
        txn = reloaded.transaction()
        txn.insert("R", [(7,)])
        txn.run()
        assert group.shared_log.current_seq > seq_before
        reloaded.refresh_group(parallel=True)
        assert reloaded.query("V1") == reloaded.sql(JOIN_SQL)
        assert reloaded.query("V2") == reloaded.sql("SELECT a FROM R")
        reloaded.check_invariants()

    def test_exec_stats_reports_cache_hits(self, manager):
        assert manager.exec_stats()["delta_cache_hits"] == 0
        for index in range(3):
            manager.define_view(f"V{index}", JOIN_SQL, scenario="shared_log")
        churn(manager)
        manager.refresh_group()
        assert manager.exec_stats()["delta_cache_hits"] == 2


class TestGroupRefreshFallbacks:
    def test_aggregate_views_fall_back_to_refresh(self, manager):
        manager.define_view("Agg", "SELECT a, COUNT(*) AS n FROM R GROUP BY a")
        manager.define_view("Shared", JOIN_SQL, scenario="shared_log")
        churn(manager)
        manager.refresh_group(parallel=True)
        assert not manager.is_stale("Agg")
        assert not manager.is_stale("Shared")
        assert manager.scenario("Agg").is_consistent()

    def test_empty_group_is_a_no_op(self, manager):
        manager.refresh_group()  # no views registered

    def test_unknown_member_rejected(self, manager):
        with pytest.raises(ReproError):
            manager.refresh_group(["Missing"])
