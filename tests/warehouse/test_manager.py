"""Unit tests for the user-facing ViewManager."""

import pytest

from repro.algebra.bag import Bag
from repro.core.policies import Policy2
from repro.core.scenarios import ImmediateScenario
from repro.core.views import ViewDefinition
from repro.errors import PolicyError, SchemaError, UnknownTableError
from repro.warehouse import ViewManager


@pytest.fixture
def manager():
    vm = ViewManager()
    vm.create_table("R", ["a"], rows=[(1,), (2,)])
    vm.create_table("S", ["a"], rows=[(2,), (3,)])
    return vm


class TestTables:
    def test_create_with_rows(self, manager):
        assert manager.db["R"] == Bag([(1,), (2,)])

    def test_load_before_views(self, manager):
        manager.load("R", [(9,)])
        assert (9,) in manager.db["R"]

    def test_load_after_views_rejected(self, manager):
        manager.define_view("V", manager.db.ref("R"))
        with pytest.raises(PolicyError):
            manager.load("R", [(9,)])


class TestDefineView:
    def test_from_sql(self, manager):
        manager.define_view("V", "SELECT a FROM R", scenario="combined")
        assert manager.query("V") == Bag([(1,), (2,)])

    def test_from_create_view_sql(self, manager):
        manager.define_view("V", "CREATE VIEW V AS SELECT a FROM R")
        assert "V" in manager.views()

    def test_from_expr(self, manager):
        manager.define_view("V", manager.db.ref("R"))
        assert manager.query("V") == Bag([(1,), (2,)])

    def test_from_view_definition(self, manager):
        view = ViewDefinition("V", manager.db.ref("R"))
        manager.define_view("V", view)
        assert manager.query("V") == Bag([(1,), (2,)])

    def test_view_definition_renamed_to_requested_name(self, manager):
        view = ViewDefinition("other", manager.db.ref("R"))
        scenario = manager.define_view("V", view)
        assert scenario.view.name == "V"

    def test_duplicate_view_rejected(self, manager):
        manager.define_view("V", manager.db.ref("R"))
        with pytest.raises(SchemaError):
            manager.define_view("V", manager.db.ref("S"))

    @pytest.mark.parametrize("name", ["immediate", "base_log", "diff_table", "combined"])
    def test_all_scenarios_available(self, manager, name):
        scenario = manager.define_view(f"V_{name}", manager.db.ref("R"), scenario=name)
        assert scenario.tag in {"IM", "BL", "DT", "C"}

    def test_unknown_scenario(self, manager):
        with pytest.raises(PolicyError, match="unknown scenario"):
            manager.define_view("V", manager.db.ref("R"), scenario="wat")

    def test_strong_minimality_only_for_dt_scenarios(self, manager):
        with pytest.raises(PolicyError):
            manager.define_view("V", manager.db.ref("R"), scenario="immediate", strong_minimality=True)
        manager.define_view("W", manager.db.ref("R"), scenario="combined", strong_minimality=True)

    def test_scenario_accessor(self, manager):
        manager.define_view("V", manager.db.ref("R"), scenario="immediate")
        assert isinstance(manager.scenario("V"), ImmediateScenario)
        with pytest.raises(UnknownTableError):
            manager.scenario("missing")


class TestTransactions:
    def test_single_view_maintained(self, manager):
        manager.define_view("V", "SELECT a FROM R", scenario="immediate")
        manager.transaction().insert("R", [(7,)]).run()
        assert (7,) in manager.query("V")

    def test_multiple_views_same_transaction(self, manager):
        manager.define_view("V_imm", "SELECT a FROM R", scenario="immediate")
        manager.define_view("V_bl", "SELECT a FROM R", scenario="base_log")
        manager.define_view("V_c", "SELECT a FROM R UNION ALL SELECT a FROM S", scenario="combined")
        manager.transaction().insert("R", [(7,)]).delete("S", [(3,)]).run()
        manager.check_invariants()
        assert (7,) in manager.query("V_imm")  # immediate: fresh
        assert (7,) not in manager.query("V_bl")  # deferred: stale
        manager.refresh_all()
        manager.check_invariants()
        assert (7,) in manager.query("V_bl")
        assert manager.query("V_c").multiplicity((2,)) == 2

    def test_delete_and_insert_combined(self, manager):
        manager.define_view("V", "SELECT a FROM R", scenario="diff_table")
        manager.transaction().delete("R", [(1,)]).insert("R", [(4,)]).run()
        assert manager.query_fresh("V") == Bag([(2,), (4,)])

    def test_query_deltas_supported(self, manager):
        manager.define_view("V", "SELECT a FROM S", scenario="combined")
        txn = manager.transaction()
        txn.insert_query("S", manager.db.ref("R"))
        txn.delete_query("S", manager.db.ref("S"))
        txn.run()
        assert manager.query_fresh("V") == Bag([(1,), (2,)])


class TestMaintenanceOperations:
    def test_propagate_and_partial_refresh(self, manager):
        manager.define_view("V", "SELECT a FROM R", scenario="combined")
        manager.transaction().insert("R", [(7,)]).run()
        manager.propagate("V")
        assert manager.is_stale("V")
        manager.partial_refresh("V")
        assert not manager.is_stale("V")

    def test_propagate_requires_combined(self, manager):
        manager.define_view("V", "SELECT a FROM R", scenario="base_log")
        with pytest.raises(PolicyError):
            manager.propagate("V")
        with pytest.raises(PolicyError):
            manager.partial_refresh("V")

    def test_query_fresh(self, manager):
        manager.define_view("V", "SELECT a FROM R", scenario="base_log")
        manager.transaction().insert("R", [(7,)]).run()
        assert (7,) in manager.query_fresh("V")

    def test_downtime_accounted(self, manager):
        manager.define_view("V", "SELECT a FROM R", scenario="base_log")
        manager.transaction().insert("R", [(7,)]).run()
        manager.refresh("V")
        # Deterministic downtime evidence: the refresh held exactly one
        # exclusive section on MV and did tuple work inside it.  (Wall
        # seconds are clock-dependent and can round to zero on a coarse
        # timer, so the ops-counted signal is what we assert on.)
        mv = manager.scenario("V").view.mv_table
        sections = [s for s in manager.ledger.sections if s.resource == mv]
        assert len(sections) == 1
        assert sections[0].tuple_ops > 0
        assert manager.ledger.downtime_tuple_ops(mv) > 0
        assert manager.downtime_seconds("V") >= 0.0


class TestPolicies:
    def test_driver_attached(self, manager):
        manager.define_view("V", "SELECT a FROM R", scenario="combined", policy=Policy2(k=1, m=2))
        driver = manager.driver("V")
        manager.tick([])
        manager.tick([])
        assert driver.now == 2
        assert driver.stats.partial_refreshes == 1

    def test_tick_applies_transactions(self, manager):
        manager.define_view("V", "SELECT a FROM R", scenario="combined", policy=Policy2(k=1, m=2))
        txn = manager.transaction()
        txn.insert("R", [(42,)])
        manager.tick([txn._txn])
        manager.tick([])
        assert (42,) in manager.query("V")

    def test_driver_missing(self, manager):
        manager.define_view("V", "SELECT a FROM R")
        with pytest.raises(PolicyError):
            manager.driver("V")


class TestAdHocSQL:
    def test_sql_query(self, manager):
        result = manager.sql("SELECT a FROM R WHERE a > 1")
        assert result == Bag([(2,)])

    def test_sql_join(self, manager):
        result = manager.sql("SELECT r.a FROM R r, S s WHERE r.a = s.a")
        assert result == Bag([(2,)])
