"""Tests for whole-warehouse save/load (views reattached)."""

import pytest

from repro.algebra.bag import Bag
from repro.errors import ReproError
from repro.warehouse import ViewManager
from repro.warehouse.persistence import load_warehouse, save_warehouse


@pytest.fixture
def manager():
    vm = ViewManager()
    vm.create_table("t", ["a", "qty"], rows=[(1, 5), (2, 7)])
    vm.define_view("plain", "SELECT a FROM t", scenario="combined")
    vm.define_view("computed", "SELECT a, qty * 2 AS dbl FROM t", scenario="diff_table")
    vm.define_view("agg", "SELECT a, COUNT(*), SUM(qty) AS total FROM t GROUP BY a")
    return vm


class TestRoundTrip:
    def test_views_reattached(self, manager, tmp_path):
        path = tmp_path / "wh.db"
        save_warehouse(manager, path)
        loaded = load_warehouse(path)
        assert set(loaded.views()) == {"plain", "computed", "agg"}
        assert loaded.query("plain") == manager.query("plain")
        assert loaded.query("agg") == manager.query("agg")

    def test_scenarios_preserved(self, manager, tmp_path):
        path = tmp_path / "wh.db"
        save_warehouse(manager, path)
        loaded = load_warehouse(path)
        assert loaded.scenario("plain").tag == "C"
        assert loaded.scenario("computed").tag == "DT"
        assert loaded.scenario("agg").tag == "AGG"

    def test_strong_minimality_flag_survives(self, tmp_path):
        vm = ViewManager()
        vm.create_table("t", ["a"], rows=[(1,)])
        vm.define_view("V", "SELECT a FROM t", scenario="combined", strong_minimality=True)
        path = tmp_path / "wh.db"
        save_warehouse(vm, path)
        loaded = load_warehouse(path)
        assert loaded.scenario("V").strong_minimality is True

    def test_pending_deferral_survives_restart(self, manager, tmp_path):
        """The headline behavior: mid-deferral state resumes exactly."""
        manager.execute_sql("INSERT INTO t VALUES (3, 9); UPDATE t SET qty = qty + 1 WHERE a = 1")
        manager.propagate("plain")
        path = tmp_path / "wh.db"
        save_warehouse(manager, path)

        loaded = load_warehouse(path)
        assert loaded.is_stale("plain")
        loaded.check_invariants()
        loaded.refresh_all()
        assert loaded.query("plain") == Bag([(1,), (2,), (3,)])
        assert loaded.query("agg") == Bag([(1, 1, 6), (2, 1, 7), (3, 1, 9)])

    def test_maintenance_continues_after_restart(self, manager, tmp_path):
        path = tmp_path / "wh.db"
        save_warehouse(manager, path)
        loaded = load_warehouse(path)
        loaded.execute_sql("INSERT INTO t VALUES (9, 1)")
        loaded.check_invariants()
        assert (9,) in loaded.query_fresh("plain")

    def test_save_is_repeatable(self, manager, tmp_path):
        path = tmp_path / "wh.db"
        save_warehouse(manager, path)
        save_warehouse(manager, path)
        loaded = load_warehouse(path)
        assert set(loaded.views()) == {"plain", "computed", "agg"}

    def test_save_leaves_manager_usable(self, manager, tmp_path):
        save_warehouse(manager, tmp_path / "wh.db")
        assert "__viewdefs__" not in manager.db.table_names()
        manager.execute_sql("INSERT INTO t VALUES (4, 4)")
        manager.check_invariants()

    def test_plain_database_loads_without_views(self, tmp_path):
        from repro.storage.database import Database
        from repro.storage.persistence import save_database

        db = Database()
        db.create_table("t", ["a"], rows=[(1,)])
        save_database(db, tmp_path / "plain.db")
        loaded = load_warehouse(tmp_path / "plain.db")
        assert loaded.views() == ()
        assert loaded.db["t"] == Bag([(1,)])

    def test_corrupt_catalog_detected(self, manager, tmp_path):
        path = tmp_path / "wh.db"
        save_warehouse(manager, path)
        # Simulate a file missing an MV table.
        from repro.storage.persistence import load_database, save_database

        db = load_database(path)
        db.drop_table("__mv__plain")
        save_database(db, path)
        with pytest.raises(ReproError, match="lacks materialized table"):
            load_warehouse(path)


class TestSerializer:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_expression_round_trip(self, seed):
        from repro.algebra.serialize import expr_from_dict, expr_to_dict
        from repro.workloads.randgen import RandomExpressionGenerator
        import json

        generator = RandomExpressionGenerator(seed)
        db = generator.database()
        expr = generator.query(db, depth=5)
        encoded = json.loads(json.dumps(expr_to_dict(expr)))
        assert expr_from_dict(encoded) == expr

    def test_mapproject_round_trip(self):
        from repro.algebra.expr import MapProject, table
        from repro.algebra.predicates import Arith, attr, const
        from repro.algebra.serialize import expr_from_dict, expr_to_dict

        expr = MapProject(
            (Arith("+", attr("a"), const(1)), const(None), const(True)),
            table("t", ["a"]),
            ("x", "n", "b"),
        )
        assert expr_from_dict(expr_to_dict(expr)) == expr

    def test_predicate_round_trip(self):
        from repro.algebra.predicates import And, Comparison, Not, Or, TruePredicate, attr, const
        from repro.algebra.serialize import predicate_from_dict, predicate_to_dict

        predicate = Or(
            And(Comparison("=", attr("a"), const("x")), Not(TruePredicate())),
            Comparison("<", attr("b"), const(2.5)),
        )
        assert predicate_from_dict(predicate_to_dict(predicate)) == predicate

    def test_literal_bag_round_trip(self):
        from repro.algebra.bag import Bag
        from repro.algebra.expr import Literal
        from repro.algebra.schema import Schema
        from repro.algebra.serialize import expr_from_dict, expr_to_dict

        lit = Literal(Bag([(1, True), (1, True), (None, "s")]), Schema(["a", "b"]))
        decoded = expr_from_dict(expr_to_dict(lit))
        assert decoded == lit
