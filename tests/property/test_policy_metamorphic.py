"""Metamorphic refresh-policy tests over seeded random streams.

The metamorphic relation: feed the *same* transaction stream through
maintenance schedules that interleave propagate / partial_refresh /
refresh differently — Policy 1, Policy 2 at several ``(k, m)``, and no
maintenance at all — and after one closing ``refresh`` every run must
land on the same view value, which must equal the full-recompute
oracle (the view query evaluated over the final base tables).  Along
the way every tick must preserve the scenario invariant (``INV_C``).

Runs under both execution engines and the fixed seed matrix of
``tests/property/gen``.
"""

import pytest

from tests.property.gen import SEED_MATRIX

from repro.core.policies import MaintenanceDriver, Policy1, Policy2
from repro.core.scenarios import CombinedScenario
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.workloads.retail import VIEW_SQL, RetailConfig, RetailWorkload

ENGINES = ("interpreted", "compiled")
HORIZON = 10
TXNS_PER_TICK = 2

#: The interleavings compared; None = no scheduled maintenance.
POLICIES = {
    "policy1_k2_m4": lambda: Policy1(k=2, m=4),
    "policy1_k3_m5": lambda: Policy1(k=3, m=5),
    "policy2_k2_m4": lambda: Policy2(k=2, m=4),
    "policy2_k3_m5": lambda: Policy2(k=3, m=5),
    "no_maintenance": lambda: None,
}


def _fresh(engine: str, seed: int):
    config = RetailConfig(customers=15, initial_sales=40, txn_inserts=4, seed=seed)
    workload = RetailWorkload(config)
    db = Database(exec_mode=engine)
    workload.setup_database(db)
    view = sql_to_view(VIEW_SQL, db)
    return db, view, workload


def _run(engine: str, seed: int, policy_factory):
    """One maintenance lifetime; returns (final_view, oracle, sales_len)."""
    db, view, workload = _fresh(engine, seed)
    scenario = CombinedScenario(db, view)
    scenario.install()
    policy = policy_factory()
    if policy is None:
        for txn in workload.transactions(db, HORIZON * TXNS_PER_TICK):
            scenario.execute(txn)
            scenario.check_invariant()
    else:
        driver = MaintenanceDriver(scenario, policy)
        for tick, txns in workload.schedule(db, horizon=HORIZON, txns_per_tick=TXNS_PER_TICK):
            driver.tick(txns)
            scenario.check_invariant()  # INV_C must hold at every tick
    scenario.refresh()
    scenario.check_invariant()
    assert scenario.is_consistent()
    oracle = db.evaluate(view.query)
    return scenario.read_view(), oracle, len(db["sales"])


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEED_MATRIX)
def test_policy_interleavings_converge(engine, seed):
    results = {name: _run(engine, seed, factory) for name, factory in POLICIES.items()}

    # Every schedule saw the identical stream: same final base tables.
    sales_sizes = {r[2] for r in results.values()}
    assert len(sales_sizes) == 1, sales_sizes

    # Each run individually matches the full-recompute oracle...
    for name, (final_view, oracle, _) in results.items():
        assert final_view == oracle, f"{name} (seed={seed}, {engine}) diverged from recompute"

    # ...hence all interleavings agree with one another.
    views = {name: r[0] for name, r in results.items()}
    baseline = views.pop("no_maintenance")
    for name, value in views.items():
        assert value == baseline, f"{name} != no_maintenance (seed={seed}, {engine})"


@pytest.mark.parametrize("seed", SEED_MATRIX)
def test_engines_agree_per_policy(seed):
    """The same (seed, policy) run must not depend on the engine."""
    for name, factory in POLICIES.items():
        outcomes = {engine: _run(engine, seed, factory)[0] for engine in ENGINES}
        assert outcomes["interpreted"] == outcomes["compiled"], f"{name} (seed={seed})"
