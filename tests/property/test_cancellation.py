"""The Cancellation Lemma (Lemma 1), exhaustively over the seed matrix.

The lemma — for all bags ``B`` and ``S``::

    (B ∸ S) ⊎ (S min B) ≡ B

is what makes deferred maintenance *reversible*: the part of ``S``
actually present in ``B`` (``S min B``) is exactly what the monus
removed, so splitting a bag along any ``S`` loses nothing.  Section 4
instantiates it with ``B`` = the current view value and ``S`` = the
recorded deletions to reconstruct pre-update states, and the refresh
operators rely on it to apply ``(▼, ▲)`` patches without recomputing.

Checked here per multiplicity (the form the paper proves) and at bag
level, for arbitrary pairs, subbag pairs, and the degenerate corners.
"""

from tests.property.gen import cases

from repro.algebra.bag import Bag


def cancel(b: Bag, s: Bag) -> Bag:
    return b.monus(s).union_all(s.min_(b))


def test_cancellation_arbitrary_pairs():
    for case_id, gen in cases():
        b, s = gen.bag(), gen.bag()
        assert cancel(b, s) == b, case_id


def test_cancellation_subbag_pairs():
    # S ⊑ B is the weakly-minimal-log case; then S min B = S and the
    # lemma degenerates to (B ∸ S) ⊎ S = B.
    for case_id, gen in cases():
        b = gen.bag()
        s = gen.subbag(b)
        assert s.min_(b) == s, case_id
        assert b.monus(s).union_all(s) == b, case_id


def test_cancellation_per_multiplicity():
    # The arithmetic heart: max(0, b - s) + min(s, b) = b for b, s ≥ 0.
    for case_id, gen in cases():
        b, s = gen.bag(), gen.bag()
        result = cancel(b, s)
        for row in b.support | s.support:
            want = b.multiplicity(row)
            assert result.multiplicity(row) == want, f"{case_id} row={row}"


def test_cancellation_corners():
    empty = Bag.empty()
    some = Bag([(1, 2), (1, 2), (3, 4)])
    assert cancel(empty, empty) == empty
    assert cancel(some, empty) == some
    assert cancel(empty, some) == empty
    assert cancel(some, some) == some


def test_cancellation_is_not_plain_union_minus():
    # Sanity: the lemma needs `min`; replacing S min B with S itself
    # overshoots whenever S ⋢ B.  Guards against "simplifying" it away.
    b = Bag([(1,)])
    s = Bag([(1,), (1,)])
    assert b.monus(s).union_all(s) != b
    assert cancel(b, s) == b
