"""Section 2.1 bag-algebra laws under the fixed seed matrix.

Each law is checked on 240 generated cases (80 per seed in
:data:`tests.property.gen.SEED_MATRIX`) — the zero-dependency
counterpart to the Hypothesis suite in
``tests/algebra/test_bag_properties.py``.  Every assertion carries the
``(seed, case)`` id of the failing instance for replay.
"""

from tests.property.gen import cases

from repro.algebra.bag import Bag


# ----------------------------------------------------------------------
# ⊎ — additive union: a commutative monoid with identity φ
# ----------------------------------------------------------------------


def test_union_all_commutative_associative_identity():
    for case_id, gen in cases():
        x, y, z = gen.bag(), gen.bag(), gen.bag()
        assert x.union_all(y) == y.union_all(x), case_id
        assert x.union_all(y).union_all(z) == x.union_all(y.union_all(z)), case_id
        assert x.union_all(Bag.empty()) == x, case_id


# ----------------------------------------------------------------------
# ∸ — monus (truncated difference)
# ----------------------------------------------------------------------


def test_monus_identities():
    for case_id, gen in cases():
        x, y = gen.bag(), gen.bag()
        assert x.monus(Bag.empty()) == x, case_id
        assert Bag.empty().monus(x) == Bag.empty(), case_id
        assert x.monus(x) == Bag.empty(), case_id
        # Inserting then deleting the same bag is a no-op...
        assert x.union_all(y).monus(y) == x, case_id
        # ...and the result of a monus is always a subbag of the left arm.
        assert x.monus(y).issubbag(x), case_id


def test_monus_right_union_curries():
    # x ∸ (y ⊎ z) ≡ (x ∸ y) ∸ z — deleting a batch equals deleting
    # its parts in sequence (what lets propagate fold deltas).
    for case_id, gen in cases():
        x, y, z = gen.bag(), gen.bag(), gen.bag()
        assert x.monus(y.union_all(z)) == x.monus(y).monus(z), case_id


def test_patch_is_monus_then_union():
    # The storage layer's one-pass patch must match the algebra exactly.
    for case_id, gen in cases():
        x = gen.bag()
        delete, insert = gen.delta(x)
        assert x.patch(delete, insert) == x.monus(delete).union_all(insert), case_id
        arbitrary = gen.bag()  # patch also tolerates non-subbag deletes
        assert x.patch(arbitrary, insert) == x.monus(arbitrary).union_all(insert), case_id


# ----------------------------------------------------------------------
# min / max — the multiplicity lattice
# ----------------------------------------------------------------------


def test_min_max_lattice_laws():
    for case_id, gen in cases():
        x, y, z = gen.bag(), gen.bag(), gen.bag()
        assert x.min_(y) == y.min_(x), case_id
        assert x.max_(y) == y.max_(x), case_id
        assert x.min_(y).min_(z) == x.min_(y.min_(z)), case_id
        assert x.max_(y).max_(z) == x.max_(y.max_(z)), case_id
        assert x.min_(x) == x and x.max_(x) == x, case_id
        # Absorption ties the two into a lattice.
        assert x.min_(x.max_(y)) == x, case_id
        assert x.max_(x.min_(y)) == x, case_id
        # Ordering: min is the meet, max the join, under ⊑.
        assert x.min_(y).issubbag(x) and x.issubbag(x.max_(y)), case_id


def test_max_decomposes_into_monus_and_union():
    # X max Y ≡ (X ∸ Y) ⊎ Y — the identity behind refresh folding.
    for case_id, gen in cases():
        x, y = gen.bag(), gen.bag()
        assert x.max_(y) == x.monus(y).union_all(y), case_id


def test_min_via_double_monus():
    # X min Y ≡ X ∸ (X ∸ Y) — min is expressible in the core algebra.
    for case_id, gen in cases():
        x, y = gen.bag(), gen.bag()
        assert x.min_(y) == x.monus(x.monus(y)), case_id


# ----------------------------------------------------------------------
# ε — duplicate elimination
# ----------------------------------------------------------------------


def test_dedup_laws():
    for case_id, gen in cases():
        x, y = gen.bag(), gen.bag()
        assert x.dedup().dedup() == x.dedup(), case_id
        assert x.union_all(x).dedup() == x.dedup(), case_id
        # ε(X ⊎ Y) = ε(X) max ε(Y): support of a union is the union of
        # supports, each at multiplicity one.
        assert x.union_all(y).dedup() == x.dedup().max_(y.dedup()), case_id


# ----------------------------------------------------------------------
# σ / × — pointwise operators distribute over ⊎ and ∸
# ----------------------------------------------------------------------


def _even_first(row):
    return row[0] % 2 == 0


def test_select_is_a_homomorphism():
    for case_id, gen in cases():
        x, y = gen.bag(), gen.bag()
        assert (
            x.union_all(y).select(_even_first)
            == x.select(_even_first).union_all(y.select(_even_first))
        ), case_id
        assert (
            x.monus(y).select(_even_first) == x.select(_even_first).monus(y.select(_even_first))
        ), case_id


def test_product_distributes_over_union():
    for case_id, gen in cases(40):
        x, y, z = gen.bag(), gen.bag(), gen.bag()
        assert x.union_all(y).product(z) == x.product(z).union_all(y.product(z)), case_id
        assert len(x.product(y)) == len(x) * len(y), case_id
