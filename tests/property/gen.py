"""A self-contained seeded case generator for the property harness.

The Hypothesis-based suites (``tests/algebra/test_bag_properties.py``,
``tests/core/test_lemma_properties.py``) shrink well but depend on an
optional package and re-randomize between runs unless configured.  This
harness is the zero-dependency complement: plain :mod:`random` with a
**fixed seed matrix** (:data:`SEED_MATRIX`), so every CI run and every
developer machine checks byte-identical cases, and a failure message
always carries the ``(seed, index)`` pair needed to replay one case.

Value ranges are deliberately tiny (values in ``0..3``, bags of up to
ten rows, multiplicities up to 3): the bag laws fail, when they fail,
on *collisions* — equal rows meeting across operands — and small ranges
force collisions in nearly every case instead of one in millions.

Override the matrix with ``REPRO_TEST_SEED`` (a single integer) to
probe a fresh region, e.g. ``REPRO_TEST_SEED=7 pytest tests/property``;
see ``tests/README.md``.
"""

from __future__ import annotations

import os
import random
from collections.abc import Iterator

from repro.algebra.bag import Bag, Row

__all__ = ["SEED_MATRIX", "CASES_PER_SEED", "BagGen", "cases"]

#: The fixed seeds CI runs the harness under (see .github/workflows).
SEED_MATRIX: tuple[int, ...] = (96, 1996, 2024)

#: Cases generated per seed; with three seeds every law sees 240 cases.
CASES_PER_SEED = 80


def _seeds() -> tuple[int, ...]:
    override = os.environ.get("REPRO_TEST_SEED")
    return (int(override),) if override else SEED_MATRIX


class BagGen:
    """Seeded generator of small bags, subbags, and deltas."""

    def __init__(self, seed: int, *, arity: int = 2, max_rows: int = 10,
                 max_value: int = 3, max_mult: int = 3) -> None:
        self.rng = random.Random(seed)
        self.arity = arity
        self.max_rows = max_rows
        self.max_value = max_value
        self.max_mult = max_mult

    def row(self) -> Row:
        return tuple(self.rng.randint(0, self.max_value) for _ in range(self.arity))

    def bag(self) -> Bag:
        counts: dict[Row, int] = {}
        for _ in range(self.rng.randint(0, self.max_rows)):
            row = self.row()
            counts[row] = counts.get(row, 0) + self.rng.randint(1, self.max_mult)
        return Bag.from_counts(counts)

    def subbag(self, whole: Bag) -> Bag:
        """A uniformly chosen subbag (``result ⊑ whole``)."""
        return Bag.from_counts(
            {row: kept for row, count in whole.items() if (kept := self.rng.randint(0, count))}
        )

    def delta(self, current: Bag) -> tuple[Bag, Bag]:
        """A weakly minimal delta against ``current``: deletes ⊑ current."""
        return self.subbag(current), self.bag()


def cases(count: int = CASES_PER_SEED, **gen_options) -> Iterator[tuple[str, BagGen]]:
    """Yield ``(case_id, generator)`` pairs across the seed matrix.

    Each case gets a generator advanced to a fresh state; ``case_id`` is
    ``"seed=S case=N"`` so assertion messages identify the replay target.
    """
    for seed in _seeds():
        gen = BagGen(seed, **gen_options)
        for index in range(count):
            yield f"seed={seed} case={index}", gen
