"""Seeded snapshot-isolation property harness over the view server.

The property: a reader that pins a snapshot sees the pin-time state of
the view **forever**, bit-identical to what an interpreted-oracle twin
(fed the byte-identical seeded schedule) held at that moment — no
matter how writer transactions, propagates, and refresh epochs
interleave afterwards, and no matter which execution engine maintains
the live database.  Live reads must likewise always match the oracle's
current state.

Runs the fixed seed matrix of ``tests/property/gen`` across all four
engines; override with ``REPRO_TEST_SEED=<int>`` to probe a fresh
region (the failure message carries the ``engine/seed/tick`` triple to
replay).
"""

from __future__ import annotations

import os
import random

import pytest

from tests.property.gen import SEED_MATRIX
from tests.serve.conftest import build_server

from repro.robustness.journal import bag_digest

ENGINES = ("interpreted", "compiled", "vectorized", "sqlite")
HORIZON = 14
TXNS_PER_TICK = 2


def _seeds() -> tuple[int, ...]:
    override = os.environ.get("REPRO_TEST_SEED")
    return (int(override),) if override else SEED_MATRIX


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", _seeds())
def test_pinned_reads_survive_any_interleaving(engine, seed):
    server, workload = build_server(engine, k=2, m=5, seed=seed)
    oracle, oracle_workload = build_server("interpreted", k=2, m=5, seed=seed)
    # The op interleaving is itself seeded (and decoupled from the data
    # seed) so every run replays bit-identically.
    rng = random.Random(seed * 7919 + 11)
    pins: list[tuple[str, object, str]] = []

    for tick in range(1, HORIZON + 1):
        case = f"engine={engine} seed={seed} tick={tick}"
        server.tick([workload.next_transaction(server.db) for _ in range(TXNS_PER_TICK)])
        oracle.tick(
            [oracle_workload.next_transaction(oracle.db) for _ in range(TXNS_PER_TICK)]
        )

        # Live reads track the oracle at every tick.
        live = bag_digest(server.read("V"))
        assert live == bag_digest(oracle.read("V")), case

        # Maybe open a reader session: its expectation is frozen now.
        if rng.random() < 0.6:
            pins.append((case, server.pin(), live))

        # Maybe close a random session: it must still see its pin-time state.
        if pins and rng.random() < 0.35:
            opened_at, handle, expected = pins.pop(rng.randrange(len(pins)))
            assert bag_digest(server.read_at(handle, "V")) == expected, opened_at
            handle.release()

    # Sessions still open at the end saw every interleaving there was.
    for opened_at, handle, expected in pins:
        assert bag_digest(server.read_at(handle, "V")) == expected, opened_at
        handle.release()

    # With every session closed only the served cut stays retained.
    assert server.registry.live_count() == 1

    # Closing refresh: both arms converge to the full-recompute state.
    assert bag_digest(server.read_fresh("V")) == bag_digest(oracle.read_fresh("V"))
