"""The state-bug detector: known positives flagged, the fix passes."""

from repro.algebra.expr import Monus
from repro.analysis import audit_refresh_pair, check_log_polarity
from repro.baselines.preupdate_bug import (
    _log_as_transaction_substitution,
    buggy_post_update_delta,
)
from repro.core.differential import post_update_delta
from repro.core.logs import Log
from repro.storage.database import Database


def _fixture():
    """The paper's Example 1.3: U = R - S with R={a,b,c}, S={c,d}."""
    db = Database()
    r = db.create_table("R", ("x",), rows=[("a",), ("b",), ("c",)])
    s = db.create_table("S", ("x",), rows=[("c",), ("d",)])
    log = Log(db, ("R", "S"), owner="statebug_test")
    log.install()
    return db, log, Monus(r, s)


class TestPolarityCheck:
    def test_buggy_substitution_flagged_per_table(self):
        db, log, _query = _fixture()
        eta = _log_as_transaction_substitution(log, db)
        report = check_log_polarity(eta, log)
        assert [d.code for d in report.errors] == ["RVM301", "RVM301"]
        assert {d.path for d in report.errors} == {"R", "S"}
        assert "pre-update polarity" in report.errors[0].message

    def test_correct_substitution_clean(self):
        db, log, _query = _fixture()
        report = check_log_polarity(log.substitution(), log)
        assert report.ok()


class TestSemanticOracle:
    def test_buggy_pair_fails_the_past_state_oracle(self):
        db, log, query = _fixture()
        delete, insert = buggy_post_update_delta(log, db, query)
        report = audit_refresh_pair(log, query, delete, insert)
        assert [d.code for d in report.errors] == ["RVM302"]
        assert "state bug" in report.errors[0].message

    def test_correct_pair_passes(self):
        _db, log, query = _fixture()
        delete, insert = post_update_delta(log, query)
        report = audit_refresh_pair(log, query, delete, insert)
        assert report.ok()

    def test_conservative_pair_also_passes(self):
        # The min-guarded form is correct with or without weak minimality.
        _db, log, query = _fixture()
        delete, insert = post_update_delta(log, query, assume_weakly_minimal_log=False)
        report = audit_refresh_pair(log, query, delete, insert)
        assert report.ok()

    def test_oracle_is_deterministic(self):
        db, log, query = _fixture()
        delete, insert = buggy_post_update_delta(log, db, query)
        first = audit_refresh_pair(log, query, delete, insert)
        second = audit_refresh_pair(log, query, delete, insert)
        assert [d.message for d in first] == [d.message for d in second]
