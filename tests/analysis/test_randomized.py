"""Property tests: the analyzer's judgements are sound on random inputs.

Reuses :mod:`repro.workloads.randgen` (the same distribution the E3/E4
correctness experiments sample) to check, over many seeds:

* analyzer-clean expressions evaluate without schema errors in **both**
  the interpreted and the compiled engine, and the two engines agree —
  including with the analysis-backed pruning enabled;
* every rewrite in :mod:`repro.algebra.rewrite` preserves the inferred
  schema and keeps the derived property judgements sound.
"""

from repro.algebra.evaluation import evaluate
from repro.algebra.expr import Monus, UnionAll, empty
from repro.algebra.rewrite import optimize
from repro.analysis import always_empty, check_expr, duplicate_free, redundant_min_guard
from repro.analysis.properties import degrees
from repro.storage.database import Database
from repro.workloads.randgen import RandomExpressionGenerator

SEEDS = range(30)


def _compiled_twin(db):
    """The same state in an explicitly compiled database."""
    twin = Database(exec_mode="compiled")
    for name in db.external_tables():
        twin.create_table(name, db.schema_of(name).attributes, rows=db[name])
    return twin


def _generated(seed, depth=4):
    gen = RandomExpressionGenerator(seed)
    db = gen.database()
    return db, gen.query(db, depth)


class TestCleanExpressionsEvaluate:
    def test_generated_queries_are_analyzer_clean(self):
        for seed in SEEDS:
            db, query = _generated(seed)
            report = check_expr(query, db)
            assert not report.errors, f"seed {seed}: {report.format()}"
            assert not report.warnings, f"seed {seed}: {report.format()}"

    def test_clean_queries_agree_across_engines(self):
        for seed in SEEDS:
            db, query = _generated(seed)
            if not check_expr(query, db).ok():
                continue
            interpreted = evaluate(query, db.snapshot())
            compiled = _compiled_twin(db).evaluate(query)
            assert interpreted == compiled, f"seed {seed}: engines disagree"

    def test_pruned_forms_agree_with_the_oracle(self):
        # Exercise the analysis-backed folds the compiler applies: the
        # self-cancelling monus, the empty union branch, and the
        # redundant min-guard — all must stay oracle-equal.
        for seed in SEEDS:
            db, query = _generated(seed, depth=3)
            schema = query.schema()
            cancelled = Monus(query, query)
            padded = UnionAll(empty(schema), query)
            guarded = Monus(query, Monus(query, query))  # query min query
            assert always_empty(cancelled)
            assert redundant_min_guard(guarded) is not None
            twin = _compiled_twin(db)
            state = db.snapshot()
            for expr in (cancelled, padded, guarded):
                assert twin.evaluate(expr) == evaluate(expr, state), f"seed {seed}"


class TestRewritePreservation:
    def test_optimize_preserves_schema(self):
        for seed in SEEDS:
            db, query = _generated(seed)
            optimized = optimize(query)
            assert optimized.schema().attributes == query.schema().attributes, f"seed {seed}"

    def test_optimize_preserves_value(self):
        for seed in SEEDS:
            db, query = _generated(seed)
            state = db.snapshot()
            assert evaluate(optimize(query), state) == evaluate(query, state), f"seed {seed}"

    def test_optimize_preserves_derived_properties(self):
        # The judgements are conservative (True = proven), so a proof on
        # the original must remain *semantically true* of the optimized
        # form: provably-empty stays empty, duplicate-free stays
        # duplicate-free, and linearity never increases actual degree.
        for seed in SEEDS:
            db, query = _generated(seed)
            optimized = optimize(query)
            state = db.snapshot()
            result = evaluate(optimized, state)
            if always_empty(query):
                assert not len(result), f"seed {seed}: emptiness proof broken"
            if duplicate_free(query):
                assert all(count == 1 for count in result.counts().values()), (
                    f"seed {seed}: duplicate-freeness proof broken"
                )

    def test_optimize_preserves_emptiness_proofs_structurally(self):
        # Folding an expression must never *lose* an emptiness proof:
        # optimize() turns provably-empty trees into empty literals.
        for seed in SEEDS:
            db, query = _generated(seed, depth=3)
            cancelled = Monus(query, query)
            optimized = optimize(cancelled)
            assert always_empty(optimized), f"seed {seed}"

    def test_optimize_never_raises_degree(self):
        for seed in SEEDS:
            db, query = _generated(seed)
            before = degrees(query)
            after = degrees(optimize(query))
            for table, degree in after.items():
                assert degree <= before.get(table, 0), f"seed {seed}: {table}"
