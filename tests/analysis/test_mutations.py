"""The seeded-mutation harness: every fault caught, the clean stack silent."""

import os

import pytest

from repro.analysis.mutations import MUTATIONS, apply_mutation, run_clean, run_mutation

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURES = os.path.join(REPO_ROOT, "examples", "mutations")

#: What each seeded fault must be caught by (subset of the report's codes).
EXPECTED_CODES = {
    "dropped_lock": {"RVM601", "RVM602"},
    "swapped_batch_order": {"RVM603"},
    "narrowed_write_set": {"RVM604"},
    "stale_polarity": {"RVM301", "RVM601"},
    "omitted_journal_table": {"RVM605"},
    "overlapping_view": {"RVM501"},
}


class TestHarness:
    def test_registry_matches_expectations(self):
        assert set(MUTATIONS) == set(EXPECTED_CODES)

    def test_clean_stack_has_zero_findings(self):
        report = run_clean()
        assert len(report) == 0, report.format()

    @pytest.mark.parametrize("name", sorted(EXPECTED_CODES))
    def test_mutation_is_caught(self, name):
        report = run_mutation(name)
        codes = {d.code for d in report}
        assert EXPECTED_CODES[name] <= codes, f"{name}: got {sorted(codes)}\n{report.format()}"

    def test_unknown_mutation_raises(self):
        with pytest.raises(ValueError, match="unknown concurrency mutation"):
            run_mutation("nonsense")
        with pytest.raises(ValueError, match="unknown concurrency mutation"):
            apply_mutation("nonsense")

    def test_mutations_restore_their_seams(self):
        # After seeding and unwinding every mutation, the stack is clean.
        for name in MUTATIONS:
            with apply_mutation(name):
                pass
        report = run_clean()
        assert len(report) == 0, report.format()


class TestTrackedOpsPin:
    def test_sanitizer_tracked_ops_match_effects_refresh_ops(self):
        # obs.sanitizer cannot import repro.analysis at module level
        # (layering), so it duplicates the set; this pin keeps the two
        # definitions from drifting.
        from repro.analysis.effects import REFRESH_OPS
        from repro.obs.sanitizer import TRACKED_OPS

        assert TRACKED_OPS == REFRESH_OPS

    def test_op_spans_cover_the_whole_protocol_vocabulary(self):
        from repro.obs.sanitizer import OP_SPANS, TRACKED_OPS

        assert TRACKED_OPS <= OP_SPANS
        assert OP_SPANS == {"makesafe", "refresh", "partial_refresh", "propagate"}


class TestFixtures:
    def test_every_mutation_has_a_fixture(self):
        fixtures = {
            name[: -len("_demo.py")]
            for name in os.listdir(FIXTURES)
            if name.endswith("_demo.py")
        }
        assert fixtures == set(MUTATIONS)

    @pytest.mark.parametrize("name", sorted(EXPECTED_CODES))
    def test_fixture_declares_its_mutation(self, name):
        path = os.path.join(FIXTURES, f"{name}_demo.py")
        with open(path) as handle:
            source = handle.read()
        assert f'CONCURRENCY_MUTATION = "{name}"' in source

    def test_lint_concurrency_flags_fixture(self):
        from repro.analysis.lint import lint_concurrency

        report = lint_concurrency(os.path.join(FIXTURES, "dropped_lock_demo.py"))
        assert {d.code for d in report} == {"RVM601", "RVM602"}

    def test_lint_concurrency_clean_without_target(self):
        from repro.analysis.lint import lint_concurrency

        report = lint_concurrency()
        assert len(report) == 0, report.format()
