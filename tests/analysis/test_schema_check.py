"""Unit tests for the expression-level schema checker."""

from repro.algebra.expr import Monus, Product, UnionAll, rename
from repro.algebra.schema import Schema
from repro.analysis import check_expr
from repro.analysis.schema_check import _MappingCatalog
from repro.storage.database import Database


def _db():
    db = Database()
    db.create_table("R", ("a", "b"), rows=[(1, 2)])
    db.create_table("S", ("c",), rows=[(3,)])
    return db


class TestCatalogChecks:
    def test_clean_expression(self):
        db = _db()
        report = check_expr(db.ref("R"), db)
        assert report.ok()

    def test_unknown_table_rvm107(self):
        db = _db()
        expr = db.ref("R")
        catalog = _MappingCatalog({})
        report = check_expr(expr, catalog)
        assert [d.code for d in report.errors] == ["RVM107"]
        assert "'R'" in report.errors[0].message

    def test_schema_drift_rvm108(self):
        db = _db()
        expr = db.ref("R")  # carries schema (a, b)
        catalog = _MappingCatalog({"R": Schema(("a",))})
        report = check_expr(expr, catalog)
        assert [d.code for d in report.errors] == ["RVM108"]

    def test_no_catalog_skips_table_checks(self):
        db = _db()
        report = check_expr(db.ref("R"))
        assert report.ok()


class TestStructuralChecks:
    def test_duplicate_root_names_rvm106_warning(self):
        db = _db()
        expr = Product(db.ref("R"), db.ref("R"))
        report = check_expr(expr, db)
        assert [d.code for d in report.warnings] == ["RVM106"]
        assert not report.errors
        assert not report.ok()

    def test_duplicate_names_below_root_not_flagged(self):
        # Interior self-products are legal as long as the *result* schema
        # is disambiguated (exactly what randgen's rename wrappers do).
        db = _db()
        inner = Product(db.ref("R"), db.ref("R"))
        expr = rename(inner, ("w", "x", "y", "z"))
        report = check_expr(expr, db)
        assert report.ok()

    def test_union_name_mismatch_rvm104_is_info(self):
        db = _db()
        left = db.ref("S")
        right = rename(db.ref("S"), ("other",))
        report = check_expr(UnionAll(left, right), db)
        assert report.ok()  # infos do not fail the report
        assert [d.code for d in report.infos] == ["RVM104"]

    def test_paths_locate_the_offending_node(self):
        db = _db()
        bad = Monus(db.ref("S"), db.ref("S"))
        expr = UnionAll(bad, db.ref("S"))
        catalog = _MappingCatalog({"S": Schema(("c",))})
        report = check_expr(expr, catalog, root="V")
        # Walking reaches every TableRef; paths are rooted at "V".
        assert report.ok()
        deep = check_expr(expr, _MappingCatalog({}), root="V")
        paths = {d.path for d in deep.errors}
        assert all(path.startswith("V") for path in paths)
        assert any(".left" in path or ".right" in path for path in paths)

    def test_position_is_threaded_through(self):
        db = _db()
        report = check_expr(db.ref("R"), _MappingCatalog({}), position=12)
        assert report.errors[0].position == 12
