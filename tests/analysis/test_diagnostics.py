"""Unit tests for the diagnostic registry and report container."""

import pytest

from repro.analysis import AnalysisReport, Diagnostic, Severity
from repro.analysis.diagnostics import CODES
from repro.errors import AnalysisError


class TestDiagnostic:
    def test_format_includes_code_severity_path_position(self):
        diag = Diagnostic("RVM101", Severity.ERROR, "unknown column 'c'", path="Q.left", position=37)
        text = diag.format()
        assert text == "RVM101 error [at Q.left, offset 37]: unknown column 'c'"

    def test_format_without_location(self):
        diag = Diagnostic("RVM203", Severity.INFO, "provably empty")
        assert diag.format() == "RVM203 info: provably empty"

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("RVM999", Severity.ERROR, "no such code")

    def test_registry_covers_all_families(self):
        families = {code[:4] + code[4] for code in CODES}
        # parse (RVM0xx), schema (RVM1xx), properties (RVM2xx), state (RVM3xx)
        assert any(code.startswith("RVM0") for code in CODES)
        assert any(code.startswith("RVM1") for code in CODES)
        assert any(code.startswith("RVM2") for code in CODES)
        assert any(code.startswith("RVM3") for code in CODES)
        assert families  # registry is non-empty


class TestAnalysisReport:
    def test_ok_requires_no_errors_and_no_warnings(self):
        report = AnalysisReport()
        assert report.ok()
        report.add("RVM204", Severity.INFO, "note")
        assert report.ok()  # infos do not fail a report
        report.add("RVM106", Severity.WARNING, "dup names")
        assert not report.ok()

    def test_severity_buckets(self):
        report = AnalysisReport()
        report.add("RVM101", Severity.ERROR, "e")
        report.add("RVM106", Severity.WARNING, "w")
        report.add("RVM204", Severity.INFO, "i")
        assert [d.code for d in report.errors] == ["RVM101"]
        assert [d.code for d in report.warnings] == ["RVM106"]
        assert [d.code for d in report.infos] == ["RVM204"]
        assert len(report) == 3
        assert [d.code for d in report] == ["RVM101", "RVM106", "RVM204"]

    def test_raise_if_failed_carries_diagnostics(self):
        report = AnalysisReport()
        report.add("RVM101", Severity.ERROR, "unknown column", path="V")
        with pytest.raises(AnalysisError) as excinfo:
            report.raise_if_failed(context="install of view 'V'")
        assert "install of view 'V'" in str(excinfo.value)
        assert [d.code for d in excinfo.value.diagnostics] == ["RVM101"]

    def test_raise_if_failed_passes_clean_report(self):
        report = AnalysisReport()
        report.add("RVM204", Severity.INFO, "note")
        report.raise_if_failed()  # must not raise

    def test_extend_merges(self):
        left = AnalysisReport()
        left.add("RVM101", Severity.ERROR, "e")
        right = AnalysisReport()
        right.add("RVM106", Severity.WARNING, "w")
        left.extend(right)
        assert [d.code for d in left] == ["RVM101", "RVM106"]
