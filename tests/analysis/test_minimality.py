"""Analysis-backed minimality decisions in the differential hot path."""

from repro.analysis.properties import match_min
from repro.core import BaseLogScenario, ViewDefinition
from repro.core.differential import post_update_delta
from repro.core.logs import Log
from repro.storage.database import Database
from repro.workloads.randgen import RandomExpressionGenerator


def _log_fixture():
    db = Database()
    r = db.create_table("R", ("x",), rows=[("a",), ("b",), ("c",)])
    s = db.create_table("S", ("x",), rows=[("c",), ("d",)])
    log = Log(db, ("R", "S"), owner="minimality_test")
    log.install()
    return db, log, r, s


class TestAnalysisBackedDefault:
    def test_default_matches_provenance_for_logs(self):
        # Log substitutions carry Lemma 4's weak-minimality provenance,
        # so the analysis-backed default must pick the simplified form.
        from repro.algebra.expr import Monus

        _db, log, r, s = _log_fixture()
        query = Monus(r, s)
        assert post_update_delta(log, query) == post_update_delta(
            log, query, assume_weakly_minimal_log=True
        )

    def test_forced_conservative_emits_min_guard(self):
        from repro.algebra.expr import Monus

        _db, log, r, s = _log_fixture()
        query = Monus(r, s)
        _delete, insert = post_update_delta(log, query, assume_weakly_minimal_log=False)
        assert match_min(insert) is not None

    def test_simplified_and_guarded_refresh_agree(self):
        # Both forms are correct on weakly-minimal logs; a full random
        # workload must refresh to identical view contents either way.
        for seed in range(8):
            results = []
            for forced in (True, False):
                gen = RandomExpressionGenerator(seed)
                db = gen.database()
                query = gen.query(db, depth=3)
                view = ViewDefinition("V", query)
                scenario = BaseLogScenario(db, view)
                scenario.install()
                for _ in range(3):
                    scenario.execute(gen.transaction(db))
                delete, insert = post_update_delta(
                    scenario.log, query, assume_weakly_minimal_log=forced
                )
                refreshed = (
                    db[view.mv_table]
                    .monus(db.evaluate(delete))
                    .union_all(db.evaluate(insert))
                )
                results.append(refreshed)
                assert refreshed == db.evaluate(query), f"seed {seed}"
            assert results[0] == results[1], f"seed {seed}"
