"""Static partition-pruning analysis and the RVM7xx lint diagnostics."""

from repro.algebra.bag import Bag
from repro.analysis.lint import lint_view
from repro.analysis.partitioning import analyze_deltas, key_positions, prune_expr
from repro.core.differential import post_update_delta
from repro.core.logs import Log
from repro.sqlfront.compiler import sql_to_view
from repro.storage.partition import PartitionedDatabase

JOIN_SQL = "SELECT c.k, s.v FROM C c, S s WHERE c.k = s.k"
CROSS_SQL = "SELECT c.k, s.v FROM C c, S s WHERE c.k != s.k"
SINGLE_SQL = "SELECT k, v FROM S"


def make_db(*, c_parts=4, s_parts=4):
    db = PartitionedDatabase()
    db.create_table("C", ["k", "name"], rows=[(i, f"n{i}") for i in range(6)])
    db.create_table("S", ["k", "v"], rows=[(i % 6, f"v{i}") for i in range(12)])
    db.declare_partitioning("C", "k", parts=c_parts, domain="k")
    db.declare_partitioning("S", "k", parts=s_parts, domain="k")
    return db


def deltas_for(db, sql):
    view = sql_to_view(sql, db, name="V")
    base = sorted(view.base_tables())
    log = Log(db, base, owner="__test__")
    log.install()
    specs = {t: db.partition_spec(t) for t in base}
    log_map = {}
    for t in base:
        log_map[log.delete_ref(t).name] = t
        log_map[log.insert_ref(t).name] = t
    return view, log, specs, log_map, post_update_delta(log, view.query)


class TestAnalyzeDeltas:
    def test_equijoin_is_prunable_and_chunkable(self):
        db = make_db()
        _, _, specs, log_map, deltas = deltas_for(db, JOIN_SQL)
        plan = analyze_deltas(deltas, specs, log_map)
        assert plan.prunable
        assert plan.chunkable
        assert plan.fallbacks == ()
        assert plan.domains == ("k",)

    def test_non_equijoin_falls_back(self):
        db = make_db()
        _, _, specs, log_map, deltas = deltas_for(db, CROSS_SQL)
        plan = analyze_deltas(deltas, specs, log_map)
        assert not plan.prunable
        assert plan.fallbacks  # at least one table referenced whole
        assert not plan.chunkable

    def test_single_table_view_is_vacuously_prunable(self):
        # The deltas are log-only (delta-proportional already): nothing
        # to restrict, nothing falling back — partition-at-a-time apply
        # and per-chunk refresh are both sound.
        db = make_db()
        _, _, specs, log_map, deltas = deltas_for(db, SINGLE_SQL)
        specs = {"S": specs["S"]}
        plan = analyze_deltas(deltas, specs, log_map)
        assert plan.prunable
        assert plan.chunkable

    def test_layout_drift_reported(self):
        db = make_db(c_parts=4, s_parts=8)
        _, _, specs, log_map, deltas = deltas_for(db, JOIN_SQL)
        plan = analyze_deltas(deltas, specs, log_map)
        assert ("C", "S") in plan.mismatched


class TestPruneExpr:
    def test_restricted_literals_substituted(self):
        db = make_db()
        _, _, specs, log_map, (delete, insert) = deltas_for(db, JOIN_SQL)
        calls = []

        def restrict(table, domain):
            calls.append((table, domain))
            return db.restrict(table, [1])

        result = prune_expr(insert, specs, log_map, restrict)
        assert not result.fallbacks
        assert result.prunes > 0
        assert not (result.expr.tables() & {"C", "S"})
        assert all(domain == "k" for _, domain in calls)

    def test_chunk_mode_filters_log_leaves(self):
        db = make_db()
        _, log, specs, log_map, (delete, insert) = deltas_for(db, JOIN_SQL)
        # Record changes touching keys 1 and 2, then evaluate the chunk
        # for key 1 only: the pruned expr must see only key-1 log rows.
        db.set_table(log.insert_ref("S").name, Bag([(1, "a"), (2, "b")]))
        log_bags = {name: db[name] for name in log.table_names()}
        result = prune_expr(
            insert,
            specs,
            log_map,
            lambda table, domain: db.restrict(table, [1]),
            chunk_keys=frozenset([1]),
            log_bags=log_bags,
        )
        assert result.chunk_safe
        bag = db.evaluate(result.expr)
        assert all(row[0] == 1 for row in bag.support)


class TestKeyPositions:
    def test_join_output_carries_key(self):
        db = make_db()
        view = sql_to_view(JOIN_SQL, db, name="V")
        specs = {t: db.partition_spec(t) for t in ("C", "S")}
        assert key_positions(view.query, specs) == {0: "k"}

    def test_projected_out_key_not_reported(self):
        db = make_db()
        view = sql_to_view("SELECT s.v FROM S s", db, name="V")
        assert key_positions(view.query, {"S": db.partition_spec("S")}) == {}


class TestPartitionLint:
    def test_clean_view_has_no_rvm7xx(self):
        db = make_db()
        view = sql_to_view(JOIN_SQL, db, name="V")
        report = lint_view(view, db, properties=False)
        codes = {d.code for d in report.errors + report.warnings}
        assert "RVM701" not in codes and "RVM702" not in codes

    def test_unprunable_view_warns_rvm701(self):
        db = make_db()
        view = sql_to_view(CROSS_SQL, db, name="V")
        report = lint_view(view, db, properties=False)
        assert "RVM701" in {d.code for d in report.warnings}

    def test_layout_drift_warns_rvm702(self):
        db = make_db(c_parts=4, s_parts=8)
        view = sql_to_view(JOIN_SQL, db, name="V")
        report = lint_view(view, db, properties=False)
        assert "RVM702" in {d.code for d in report.warnings}

    def test_unpartitioned_database_is_silent(self):
        from repro.storage.database import Database

        db = Database()
        db.create_table("S", ["k", "v"], rows=[(1, "a")])
        view = sql_to_view(SINGLE_SQL, db, name="V")
        report = lint_view(view, db, properties=False)
        codes = {d.code for d in report.errors + report.warnings}
        assert not codes & {"RVM701", "RVM702"}
