"""Effect-set inference: footprints, plan effects, scenario protocols."""

import pytest

from repro.analysis.effects import (
    REFRESH_OPS,
    EffectSet,
    OpEffects,
    Step,
    plan_effects,
    read_footprint,
)
from repro.core.naming import mv_name
from repro.core.plan import MaintenancePlan
from repro.core.scenarios import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
)
from repro.sqlfront import sql_to_view
from repro.storage.database import Database

VIEW_SQL = "CREATE VIEW {name} (a, c) AS SELECT r.a, s.c FROM R r, S s WHERE r.b = s.b"


def make_db(exec_mode="compiled"):
    db = Database(exec_mode=exec_mode)
    db.create_table("R", ["a", "b"], rows=[(1, 1), (1, 2), (2, 2)])
    db.create_table("S", ["b", "c"], rows=[(1, 10), (2, 20)])
    return db


def install(scenario_cls, exec_mode="compiled"):
    db = make_db(exec_mode)
    scenario = scenario_cls(db, sql_to_view(VIEW_SQL.format(name="V"), db))
    scenario.install()
    return scenario


class TestEffectSet:
    def test_union(self):
        a = EffectSet(reads=frozenset({"R"}), writes=frozenset({"X"}))
        b = EffectSet(reads=frozenset({"S"}), writes=frozenset({"X", "Y"}))
        merged = a | b
        assert merged.reads == {"R", "S"}
        assert merged.writes == {"X", "Y"}

    def test_covers(self):
        wide = EffectSet(reads=frozenset({"R", "S"}), writes=frozenset({"X"}))
        narrow = EffectSet(reads=frozenset({"R"}), writes=frozenset({"X"}))
        assert wide.covers(narrow)
        assert not narrow.covers(wide)

    def test_mv_filters(self):
        effects = EffectSet(
            reads=frozenset({"R", mv_name("V")}),
            writes=frozenset({mv_name("V"), "log"}),
        )
        assert effects.mv_reads() == {mv_name("V")}
        assert effects.mv_writes() == {mv_name("V")}

    def test_op_effects_aggregation(self):
        op = OpEffects(
            op="refresh",
            view="V",
            scenario="BL",
            steps=(
                Step("a", EffectSet(reads=frozenset({"R"}))),
                Step("b", EffectSet(writes=frozenset({"X"})), locks=frozenset({"X"})),
            ),
        )
        assert op.reads == {"R"}
        assert op.writes == {"X"}
        assert op.locks == {"X"}
        assert "refresh[BL]" in op.describe()


class TestReadFootprint:
    def test_compiled_footprint_matches_expression_tables(self):
        db = make_db("compiled")
        view = sql_to_view(VIEW_SQL.format(name="V"), db)
        assert read_footprint(db, view.query) == {"R", "S"}

    def test_interpreted_falls_back_to_syntactic_tables(self):
        db = make_db("interpreted")
        view = sql_to_view(VIEW_SQL.format(name="V"), db)
        assert read_footprint(db, view.query) == view.query.tables()

    def test_no_database_uses_syntactic_tables(self):
        db = make_db()
        view = sql_to_view(VIEW_SQL.format(name="V"), db)
        assert read_footprint(None, view.query) == view.query.tables()


class TestPlanEffects:
    def test_patch_target_is_read_and_written(self):
        db = make_db()
        plan = MaintenancePlan()
        plan.add_patch("T", db.ref("R"), db.ref("S"))
        effects = plan_effects(db, plan)
        # R := (R - del) + ins is a read-modify-write of the target.
        assert "T" in effects.reads
        assert effects.writes == {"T"}
        assert {"R", "S"} <= effects.reads

    def test_assignment_reads_rhs(self):
        db = make_db()
        plan = MaintenancePlan()
        plan.add_assignment("T", db.ref("R"))
        effects = plan_effects(db, plan)
        assert "R" in effects.reads
        assert effects.writes == {"T"}


class TestScenarioProtocols:
    @pytest.mark.parametrize(
        "scenario_cls", [ImmediateScenario, BaseLogScenario, DiffTableScenario, CombinedScenario]
    )
    def test_refresh_steps_lock_exactly_the_mv_table(self, scenario_cls):
        scenario = install(scenario_cls)
        mv = scenario.view.mv_table
        for op in scenario.maintenance_protocol():
            if op.op in REFRESH_OPS:
                for step in op.steps:
                    assert step.locks == {mv}

    def test_immediate_has_only_makesafe(self):
        scenario = install(ImmediateScenario)
        ops = {op.op for op in scenario.maintenance_protocol()}
        assert ops == {"makesafe"}

    def test_base_log_refresh_writes_mv_and_clears_log(self):
        scenario = install(BaseLogScenario)
        refresh = next(op for op in scenario.maintenance_protocol() if op.op == "refresh")
        assert scenario.view.mv_table in refresh.writes
        assert set(scenario.log.table_names()) <= refresh.writes

    def test_combined_propagate_is_lock_free_and_mv_free(self):
        scenario = install(CombinedScenario)
        propagate = next(op for op in scenario.maintenance_protocol() if op.op == "propagate")
        assert propagate.locks == frozenset()
        for step in propagate.steps:
            assert not step.effects.mv_reads()
            assert not step.effects.mv_writes()

    def test_combined_protocol_covers_all_four_ops(self):
        scenario = install(CombinedScenario)
        ops = {op.op for op in scenario.maintenance_protocol()}
        assert ops == {"makesafe", "propagate", "partial_refresh", "refresh"}

    def test_group_task_carries_inferred_footprint(self):
        scenario = install(BaseLogScenario)
        task = scenario.group_refresh_task(order=0)
        assert task.inferred_reads is not None
        assert task.inferred_writes is not None
        # Sound declaration: inference never exceeds what is declared.
        assert task.inferred_writes <= task.writes
        assert task.inferred_reads <= task.reads | task.writes

    def test_footprint_consistent_across_engines(self):
        protocols = {}
        for engine in ("interpreted", "compiled"):
            scenario = install(BaseLogScenario, engine)
            refresh = next(op for op in scenario.maintenance_protocol() if op.op == "refresh")
            protocols[engine] = (refresh.writes, refresh.locks)
        assert protocols["interpreted"] == protocols["compiled"]
