"""Static concurrency checks (RVM601-RVM605) and the demo-stack lint."""

import pytest

from repro.algebra.bag import Bag
from repro.analysis.concurrency_check import (
    check_journal_coverage,
    check_protocol,
    check_scenario,
    check_schedule,
    check_stack,
    check_tasks,
    demo_stack_report,
)
from repro.analysis.effects import EffectSet, OpEffects, Step
from repro.core.naming import mv_name
from repro.core.scenarios import BaseLogScenario
from repro.exec.group import GroupTask
from repro.sqlfront import sql_to_view
from repro.storage.database import Database

VIEW_SQL = "CREATE VIEW V (a, c) AS SELECT r.a, s.c FROM R r, S s WHERE r.b = s.b"


def make_scenario(exec_mode="compiled"):
    db = Database(exec_mode=exec_mode)
    db.create_table("R", ["a", "b"], rows=[(1, 1), (2, 2)])
    db.create_table("S", ["b", "c"], rows=[(1, 10), (2, 20)])
    scenario = BaseLogScenario(db, sql_to_view(VIEW_SQL, db))
    scenario.install()
    return scenario


def make_task(name, order, reads=(), writes=(), inferred_reads=None, inferred_writes=None):
    empty = (Bag.empty(), Bag.empty())
    return GroupTask(
        name=name,
        order=order,
        key=lambda: None,
        compute=lambda counter: empty,
        apply=lambda deltas: None,
        reads=frozenset(reads),
        writes=frozenset(writes),
        inferred_reads=None if inferred_reads is None else frozenset(inferred_reads),
        inferred_writes=None if inferred_writes is None else frozenset(inferred_writes),
    )


class TestLockCoverage:
    def test_clean_scenario_has_no_findings(self):
        assert len(check_scenario(make_scenario())) == 0

    def test_unlocked_mv_read_fires_rvm601(self):
        mv = mv_name("V")
        op = OpEffects(
            op="refresh",
            view="V",
            scenario="BL",
            steps=(Step("apply", EffectSet(reads=frozenset({mv})), locks=frozenset()),),
        )
        codes = [d.code for d in check_protocol([op])]
        assert codes == ["RVM601"]

    def test_unlocked_mv_write_fires_rvm602(self):
        mv = mv_name("V")
        op = OpEffects(
            op="refresh",
            view="V",
            scenario="BL",
            steps=(Step("apply", EffectSet(writes=frozenset({mv})), locks=frozenset()),),
        )
        codes = [d.code for d in check_protocol([op])]
        assert codes == ["RVM602"]

    def test_makesafe_mv_access_is_not_judged(self):
        # makesafe runs inside the user transaction's atomicity.
        mv = mv_name("V")
        op = OpEffects(
            op="makesafe",
            view="V",
            scenario="IM",
            steps=(Step("patch", EffectSet(writes=frozenset({mv}))),),
        )
        assert len(check_protocol([op])) == 0

    def test_propagate_touching_mv_is_judged(self):
        # propagate is lock-free *because* it is MV-free; one that
        # touches MV state has lost that excuse.
        mv = mv_name("V")
        op = OpEffects(
            op="propagate",
            view="V",
            scenario="C",
            steps=(Step("fold", EffectSet(writes=frozenset({mv}))),),
        )
        codes = [d.code for d in check_protocol([op])]
        assert codes == ["RVM602"]

    def test_non_mv_tables_need_no_lock(self):
        op = OpEffects(
            op="refresh",
            view="V",
            scenario="BL",
            steps=(Step("delta", EffectSet(reads=frozenset({"R", "S"}))),),
        )
        assert len(check_protocol([op])) == 0


class TestTaskFootprints:
    def test_covering_declaration_is_clean(self):
        task = make_task(
            "V", 0, reads={"R"}, writes={"__mv__V"},
            inferred_reads={"R", "__mv__V"}, inferred_writes={"__mv__V"},
        )
        assert len(check_tasks([task])) == 0

    def test_undeclared_write_fires_rvm604(self):
        task = make_task("V", 0, reads={"R"}, writes=set(), inferred_writes={"__mv__V"})
        codes = [d.code for d in check_tasks([task])]
        assert codes == ["RVM604"]

    def test_undeclared_read_fires_rvm604(self):
        task = make_task("V", 0, reads={"R"}, writes={"__mv__V"}, inferred_reads={"R", "log_V"})
        codes = [d.code for d in check_tasks([task])]
        assert codes == ["RVM604"]

    def test_declared_write_covers_inferred_read(self):
        # writer-vs-anything conflicts serialize, so a declared write is
        # enough to cover an inferred read of the same table.
        task = make_task("V", 0, reads=set(), writes={"__mv__V"}, inferred_reads={"__mv__V"})
        assert len(check_tasks([task])) == 0

    def test_no_inference_no_finding(self):
        assert len(check_tasks([make_task("V", 0, writes={"__mv__V"})])) == 0


class TestSchedule:
    def _dependent_pair(self):
        upstream = make_task("up", 0, reads={"R"}, writes={"__mv__up"})
        downstream = make_task("down", 1, reads={"__mv__up"}, writes={"__mv__down"})
        return [upstream, downstream]

    def test_conflict_respecting_schedule_is_clean(self):
        assert len(check_schedule(self._dependent_pair())) == 0

    def test_cobatched_conflict_fires_rvm603(self):
        tasks = self._dependent_pair()
        report = check_schedule(tasks, batches=[tasks])
        codes = [d.code for d in report]
        assert "RVM603" in codes

    def test_reversed_batches_fire_rvm603(self):
        tasks = self._dependent_pair()
        report = check_schedule(tasks, batches=[[tasks[1]], [tasks[0]]])
        codes = [d.code for d in report]
        assert codes == ["RVM603"]
        assert "cycle" in report.diagnostics[0].message

    def test_independent_tasks_any_order(self):
        a = make_task("a", 0, reads={"R"}, writes={"__mv__a"})
        b = make_task("b", 1, reads={"S"}, writes={"__mv__b"})
        assert len(check_schedule([a, b], batches=[[b], [a]])) == 0


class TestJournalCoverage:
    def test_live_payload_seam_covers_everything(self):
        scenario = make_scenario()
        report = check_journal_coverage(scenario.db, scenario.maintenance_protocol())
        assert len(report) == 0

    def test_missing_digest_fires_rvm605(self):
        scenario = make_scenario()
        mv = scenario.view.mv_table
        payload = frozenset(scenario.db.table_names()) - {mv}
        report = check_journal_coverage(
            scenario.db, scenario.maintenance_protocol(), payload_tables=payload
        )
        codes = {d.code for d in report}
        assert codes == {"RVM605"}
        assert any(mv in d.message for d in report)


class TestStack:
    @pytest.mark.parametrize("exec_mode", ["compiled", "interpreted"])
    def test_demo_stack_is_clean(self, exec_mode):
        report = demo_stack_report(exec_mode=exec_mode)
        assert len(report) == 0, report.format()

    def test_check_stack_aggregates_scenario_and_tasks(self):
        scenario = make_scenario()
        task = scenario.group_refresh_task(order=0)
        report = check_stack([scenario], tasks=[task], db=scenario.db)
        assert len(report) == 0, report.format()
