"""Unit tests for the conservative property-derivation engine."""

from repro.algebra.bag import Bag
from repro.algebra.expr import (
    DupElim,
    Literal,
    Monus,
    Product,
    Project,
    Select,
    UnionAll,
    empty,
    rename,
)
from repro.algebra.predicates import Comparison, attr, const
from repro.algebra.schema import Schema
from repro.analysis import (
    Minimality,
    always_empty,
    classify_substitution,
    degrees,
    duplicate_free,
    empty_when_empty,
    is_linear,
    redundant_min_guard,
    subsumed_by,
)
from repro.analysis.properties import match_min
from repro.core.logs import Log
from repro.storage.database import Database
from repro.workloads.randgen import RandomExpressionGenerator


def _db():
    db = Database()
    db.create_table("R", ("a", "b"), rows=[(1, 2), (1, 2), (3, 4)])
    db.create_table("S", ("a", "b"), rows=[(1, 2)])
    return db


class TestEmptiness:
    def test_empty_literal(self):
        assert always_empty(empty(Schema(("x",))))

    def test_self_cancelling_monus(self):
        db = _db()
        assert always_empty(Monus(db.ref("R"), db.ref("R")))

    def test_nonempty_table_is_unknown(self):
        db = _db()
        assert not always_empty(db.ref("R"))

    def test_empty_when_empty(self):
        db = _db()
        joined = Product(db.ref("R"), db.ref("S"))
        assert empty_when_empty(joined, ["R"])
        assert empty_when_empty(joined, ["S"])
        union = UnionAll(db.ref("R"), db.ref("S"))
        assert not empty_when_empty(union, ["R"])
        assert empty_when_empty(union, ["R", "S"])


class TestDuplicateFreeness:
    def test_dup_elim(self):
        db = _db()
        assert duplicate_free(DupElim(db.ref("R")))

    def test_table_with_duplicates_unknown(self):
        db = _db()
        assert not duplicate_free(db.ref("R"))

    def test_projection_of_all_columns_preserves(self):
        db = _db()
        clean = DupElim(db.ref("R"))
        permuted = Project((1, 0), clean, ("b", "a"))
        assert duplicate_free(permuted)
        narrowed = Project((0,), clean, ("a",))
        assert not duplicate_free(narrowed)  # narrowing can merge rows

    def test_monus_inherits_from_left(self):
        db = _db()
        assert duplicate_free(Monus(DupElim(db.ref("R")), db.ref("S")))
        assert not duplicate_free(Monus(db.ref("R"), DupElim(db.ref("S"))))

    def test_literal_counts(self):
        flat = Literal(Bag([(1,), (2,)]), Schema(("x",)))
        dup = Literal(Bag([(1,), (1,)]), Schema(("x",)))
        assert duplicate_free(flat)
        assert not duplicate_free(dup)


class TestLinearity:
    def test_product_degree_sums(self):
        db = _db()
        self_join = Product(db.ref("R"), db.ref("R"))
        assert degrees(self_join)["R"] == 2
        assert not is_linear(self_join, "R")

    def test_select_is_linear(self):
        db = _db()
        shrunk = Select(Comparison("=", attr("a"), const(1)), db.ref("R"))
        assert is_linear(shrunk, "R")
        assert is_linear(shrunk, "S")  # degree 0 is linear too

    def test_union_takes_max(self):
        db = _db()
        union = UnionAll(db.ref("R"), rename(db.ref("S"), ("a", "b")))
        assert degrees(union)["R"] == 1
        assert is_linear(union, "R")


class TestMinRecognition:
    def test_match_min(self):
        db = _db()
        x, y = db.ref("R"), db.ref("S")
        guard = Monus(x, Monus(x, y))
        assert match_min(guard) == (x, y)
        assert match_min(Monus(x, y)) is None

    def test_subsumption(self):
        db = _db()
        r = db.ref("R")
        shrunk = Select(Comparison("=", attr("a"), const(1)), r)
        assert subsumed_by(shrunk, r)
        assert subsumed_by(Monus(r, db.ref("S")), r)
        assert subsumed_by(r, UnionAll(r, db.ref("S")))
        assert not subsumed_by(r, db.ref("S"))

    def test_redundant_min_guard(self):
        db = _db()
        r = db.ref("R")
        shrunk = Monus(r, db.ref("S"))  # shrunk ⊆ R provable
        guard = Monus(shrunk, Monus(shrunk, r))  # shrunk min R
        assert redundant_min_guard(guard) == shrunk
        # An unprovable guard is left in place.
        other = Monus(r, Monus(r, db.ref("S")))
        assert redundant_min_guard(other) is None


class TestClassifier:
    def test_log_substitution_is_weakly_minimal_by_provenance(self):
        db = _db()
        log = Log(db, ("R", "S"), owner="test")
        log.install()
        eta = log.substitution()
        assert eta.claims_weak_minimality
        assert classify_substitution(eta) is Minimality.WEAKLY_MINIMAL

    def test_literal_substitution_with_deletes_is_unknown(self):
        gen = RandomExpressionGenerator(0)
        db = gen.database()
        eta = gen.substitution(db, weakly_minimal=False)
        assert not eta.claims_weak_minimality
        assert classify_substitution(eta) is Minimality.UNKNOWN

    def test_weakly_minimal_wrapper_sets_provenance(self):
        gen = RandomExpressionGenerator(1)
        db = gen.database()
        eta = gen.substitution(db, weakly_minimal=False).weakly_minimal()
        assert classify_substitution(eta) is Minimality.WEAKLY_MINIMAL
