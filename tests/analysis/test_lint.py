"""The `repro lint` driver: SQL scripts, examples, experiments, CLI."""

import os
import warnings

import pytest

from repro.analysis import AnalysisReport
from repro.analysis.diagnostics import AnalysisWarning
from repro.analysis.lint import (
    experiment_queries,
    lint_example,
    lint_experiments,
    lint_sql,
    main,
)
from repro.core import BaseLogScenario, ViewDefinition
from repro.errors import AnalysisError
from repro.storage.database import Database

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
EXAMPLES = os.path.join(REPO_ROOT, "examples")


class TestLintSql:
    def test_clean_script(self):
        report = lint_sql("CREATE TABLE r (a, b);\nSELECT a FROM r WHERE b = 1")
        assert report.ok()

    def test_unknown_column_positioned(self):
        source = "CREATE TABLE r (a, b);\nSELECT a FROM r WHERE c = 1"
        report = lint_sql(source)
        assert [d.code for d in report.errors] == ["RVM101"]
        diag = report.errors[0]
        assert diag.position is not None
        assert source[diag.position] == "c"  # offset points at the bad token

    def test_parse_error_rvm001_with_position(self):
        report = lint_sql("SELECT FROM")
        assert [d.code for d in report.errors] == ["RVM001"]
        assert report.errors[0].position is not None

    def test_unknown_table_rvm107(self):
        report = lint_sql("SELECT a FROM nowhere")
        codes = [d.code for d in report.errors]
        assert codes and all(code in ("RVM107", "RVM109", "RVM101") for code in codes)

    def test_multi_statement_paths(self):
        report = lint_sql(
            "CREATE TABLE r (a);\nSELECT a FROM r;\nSELECT z FROM r"
        )
        assert len(report.errors) == 1
        assert report.errors[0].path is not None
        assert report.errors[0].path.startswith("stmt")

    def test_views_join_the_catalog(self):
        report = lint_sql(
            "CREATE TABLE r (a, b);"
            "CREATE VIEW v (a) AS SELECT a FROM r;"
            "SELECT a FROM v"
        )
        assert report.ok()

    def test_existing_database_catalog(self):
        db = Database()
        db.create_table("orders", ("id", "region"))
        assert lint_sql("SELECT id FROM orders", db).ok()
        report = lint_sql("SELECT missing FROM orders", db)
        assert [d.code for d in report.errors] == ["RVM101"]


class TestExamples:
    def test_all_examples_clean_except_state_bug_demo(self):
        flagged = {}
        for name in sorted(os.listdir(EXAMPLES)):
            if not name.endswith(".py"):
                continue
            report = lint_example(os.path.join(EXAMPLES, name))
            flagged[name] = not report.ok()
        assert flagged.pop("state_bug_demo.py") is True
        assert not any(flagged.values()), f"unexpectedly flagged: {flagged}"

    def test_state_bug_demo_reports_verified_detectors(self):
        report = lint_example(os.path.join(EXAMPLES, "state_bug_demo.py"))
        codes = sorted({d.code for d in report.errors})
        assert codes == ["RVM301", "RVM302"]


class TestExperiments:
    def test_registry_is_nonempty(self):
        registry = experiment_queries()
        assert "retail.V" in registry
        assert all(isinstance(pair, tuple) and len(pair) == 2 for pair in registry.values())

    def test_all_experiment_queries_clean(self):
        report = lint_experiments()
        assert isinstance(report, AnalysisReport)
        assert report.ok(), report.format()


class TestCli:
    def test_inline_sql_clean_exit_zero(self, capsys):
        status = main(["CREATE TABLE r (a); SELECT a FROM r"])
        assert status == 0
        assert "clean" in capsys.readouterr().out

    def test_inline_sql_error_exit_two(self, capsys):
        status = main(["SELECT z FROM nowhere"])
        assert status == 2
        out = capsys.readouterr().out
        assert "RVM" in out

    def test_usage_without_targets(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_strict_promotes_warnings(self, capsys):
        # A self-join product without rename → RVM106 warning at the root.
        sql = "CREATE TABLE r (a); SELECT * FROM r x, r y"
        lax = main([sql])
        strict = main(["--strict", sql])
        capsys.readouterr()
        if lax == 0 and strict == 0:
            pytest.skip("front-end renames made the query clean")
        assert strict == 1

    def test_example_driver(self, capsys):
        demo = os.path.join(EXAMPLES, "state_bug_demo.py")
        assert main([demo]) == 2
        assert "RVM30" in capsys.readouterr().out

    def test_experiments_flag(self, capsys):
        assert main(["--experiments"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_engine_flag_accepted(self, capsys):
        status = main(["--engine", "sqlite", "CREATE TABLE r (a); SELECT a FROM r"])
        assert status == 0
        assert "clean" in capsys.readouterr().out

    def test_engine_flag_equals_form(self, capsys):
        status = main(["--engine=vectorized", "--experiments"])
        assert status == 0
        capsys.readouterr()

    def test_unknown_engine_exits_two(self, capsys):
        assert main(["--engine", "turbo", "SELECT 1"]) == 2
        assert "unknown execution mode" in capsys.readouterr().out

    def test_json_output_clean(self, capsys):
        import json

        status = main(["--json", "CREATE TABLE r (a); SELECT a FROM r"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["status"] == 0
        (section,) = payload["sections"]
        assert section["clean"] is True
        assert section["diagnostics"] == []

    def test_json_output_error(self, capsys):
        import json

        status = main(["--json", "SELECT z FROM nowhere"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 2
        assert payload["status"] == 2
        (section,) = payload["sections"]
        assert section["clean"] is False
        assert section["errors"] >= 1
        diag = section["diagnostics"][0]
        assert set(diag) == {"code", "severity", "message", "path", "position"}
        assert diag["severity"] == "error"

    def test_concurrency_flag_clean_stack(self, capsys):
        assert main(["--concurrency"]) == 0
        assert "concurrency: clean" in capsys.readouterr().out

    def test_concurrency_flag_on_mutation_fixture(self, capsys):
        import json

        fixture = os.path.join(EXAMPLES, "mutations", "narrowed_write_set_demo.py")
        status = main(["--json", "--concurrency", fixture])
        payload = json.loads(capsys.readouterr().out)
        assert status == 2
        codes = {
            diag["code"]
            for section in payload["sections"]
            for diag in section["diagnostics"]
        }
        assert "RVM604" in codes

    def test_diagnostics_identical_across_engines(self):
        # Lints are static: the selected engine must change nothing.
        source = "CREATE TABLE r (a, b);\nSELECT a FROM r WHERE c = 1"
        reports = {
            engine: lint_sql(source, engine=engine)
            for engine in ("interpreted", "compiled", "vectorized", "sqlite")
        }
        rendered = {
            engine: [d.format() for d in report]
            for engine, report in reports.items()
        }
        baseline = rendered["interpreted"]
        assert all(diags == baseline for diags in rendered.values())


class TestInstallTimeLint:
    def _dup_name_scenario(self, strict):
        from repro.algebra.expr import Product

        db = Database()
        r = db.create_table("R", ("a", "b"), rows=[(1, 2)])
        view = ViewDefinition("V", Product(r, r))  # duplicate result names
        return BaseLogScenario(db, view, strict=strict)

    def test_install_warns_by_default(self):
        scenario = self._dup_name_scenario(strict=False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            scenario.install()
        messages = [str(w.message) for w in caught if issubclass(w.category, AnalysisWarning)]
        assert any("RVM106" in message for message in messages)

    def test_strict_install_raises(self):
        scenario = self._dup_name_scenario(strict=True)
        with pytest.raises(AnalysisError) as excinfo:
            scenario.install()
        assert any(d.code == "RVM106" for d in excinfo.value.diagnostics)

    def test_clean_view_installs_silently(self):
        db = Database()
        db.create_table("R", ("a", "b"), rows=[(1, 2)])
        view = ViewDefinition("V", db.ref("R"))
        scenario = BaseLogScenario(db, view, strict=True)
        scenario.install()  # must not raise or warn
        assert scenario.read_view() == db["R"]
