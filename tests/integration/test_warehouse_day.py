"""Integration: a full warehouse lifecycle across every feature.

One simulated "business day" combines everything the library offers:
plain, computed, EXCEPT and aggregate views over two domains, SQL DML
(including UPDATE), policies on drivers, mid-day persistence, view
drops, scoped refresh — with invariants checked continuously and final
contents validated against from-scratch recomputation and SQLite.
"""

import pytest

from repro.algebra.predicates import Comparison, attr, const
from repro.core.policies import Policy2
from repro.extensions.scoped import scoped_query
from repro.storage.persistence import load_database, save_database
from repro.storage.sqlite_backend import SQLiteBackend
from repro.warehouse import ViewManager
from repro.workloads.retail import RetailConfig, RetailWorkload


@pytest.fixture
def warehouse():
    workload = RetailWorkload(RetailConfig(customers=40, initial_sales=200, txn_inserts=6, seed=77))
    manager = ViewManager()
    manager.create_table("customer", ["custId", "name", "address", "score"])
    manager.create_table("sales", ["custId", "itemNo", "quantity", "salesPrice"])
    manager.load("customer", workload.customer_rows())
    manager.load("sales", workload.initial_sales_rows())
    return manager, workload


VIEWS = {
    "high_value": (
        """SELECT c.custId, s.itemNo, s.quantity FROM customer c, sales s
           WHERE c.custId = s.custId AND c.score = 'High' AND s.quantity != 0""",
        "combined",
    ),
    "revenue": (
        """SELECT s.custId, s.quantity * s.salesPrice AS amount FROM sales s
           WHERE s.quantity > 0""",
        "diff_table",
    ),
    "idle_customers": (
        "SELECT DISTINCT custId FROM customer EXCEPT SELECT DISTINCT custId FROM sales",
        "base_log",
    ),
}


def define_all(manager):
    for name, (sql, scenario) in VIEWS.items():
        manager.define_view(name, sql, scenario=scenario)
    manager.define_view(
        "qty_by_customer",
        "SELECT custId, COUNT(*), SUM(quantity) AS qty FROM sales GROUP BY custId",
    )


def verify_all(manager):
    manager.check_invariants()
    manager.refresh_all()
    for name, (sql, __) in VIEWS.items():
        from repro.sqlfront import sql_to_view

        expected = manager.db.evaluate(sql_to_view(sql, manager.db, name=name).query)
        assert manager.query(name) == expected, name
    agg = manager.scenario("qty_by_customer")
    assert agg.is_consistent()


def test_full_day(warehouse, tmp_path):
    manager, workload = warehouse
    define_all(manager)

    # Morning: a burst of point-of-sale transactions.
    for txn in workload.transactions(manager.db, 25):
        manager.execute(txn)
    manager.check_invariants()

    # Midday corrections via SQL, one simultaneous script.
    manager.execute_sql(
        "UPDATE sales SET quantity = quantity + 1 WHERE custId = 0;"
        "DELETE FROM sales WHERE quantity = 0;"
        "INSERT INTO sales VALUES (1, 999, 3, 12.5)"
    )
    manager.check_invariants()

    # An analyst needs just one customer's slice fresh, immediately.
    combined = manager.scenario("high_value")
    fresh_slice = scoped_query(combined, Comparison("=", attr("custId"), const(1)))
    assert all(row[0] == 1 for row in fresh_slice.support)
    manager.check_invariants()

    # Snapshot the warehouse to disk mid-day and restore it.
    path = tmp_path / "midday.db"
    save_database(manager.db, path)
    restored = load_database(path)
    assert restored.snapshot() == manager.db.snapshot()

    # Afternoon traffic, then full verification.
    for txn in workload.transactions(manager.db, 25):
        manager.execute(txn)
    verify_all(manager)

    # Cross-check one refreshed view against SQLite.
    from repro.sqlfront import sql_to_view

    view = sql_to_view(VIEWS["high_value"][0], manager.db, name="high_value")
    with SQLiteBackend() as backend:
        backend.sync_from(manager.db)
        assert backend.evaluate(view.query) == manager.query("high_value")

    # Evening: drop a view; traffic continues unaffected.
    manager.drop_view("idle_customers")
    for txn in workload.transactions(manager.db, 10):
        manager.execute(txn)
    manager.check_invariants()
    manager.refresh_all()
    assert not any(manager.is_stale(name) for name in manager.views())


def test_policy_driven_day(warehouse):
    manager, workload = warehouse
    manager.define_view(
        "high_value",
        VIEWS["high_value"][0],
        scenario="combined",
        policy=Policy2(k=2, m=6),
    )
    for tick in range(1, 25):
        txns = [workload.next_transaction(manager.db)]
        manager.tick(txns)
        manager.check_invariants()
    driver = manager.driver("high_value")
    assert driver.stats.partial_refreshes == 4
    assert driver.stats.propagates >= 12
    manager.refresh("high_value")
    assert not manager.is_stale("high_value")
