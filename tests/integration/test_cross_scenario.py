"""Integration: all maintenance paths converge to identical views.

The strongest end-to-end statement in the paper is implicit in
Theorem 5: whatever scenario maintains a view, after a full refresh the
materialized table equals ``Q`` — so *every* maintenance strategy
(immediate, deferred in all three flavors, shared-log, Hanson, plain
recomputation) must agree exactly, duplicates included, on any workload.
"""

import pytest

from repro.baselines.hanson import HansonDifferentialFiles
from repro.baselines.recompute import RecomputeScenario
from repro.core.scenarios import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
)
from repro.core.views import ViewDefinition
from repro.extensions.sharedlog import SharedLogScenario
from repro.workloads.randgen import RandomExpressionGenerator

SCENARIO_CLASSES = [
    ImmediateScenario,
    BaseLogScenario,
    DiffTableScenario,
    CombinedScenario,
    RecomputeScenario,
]


def run_standard(scenario_cls, seed, *, strong=False):
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    view = ViewDefinition("V", generator.query(db, depth=3))
    kwargs = {"strong_minimality": True} if strong else {}
    scenario = scenario_cls(db, view, **kwargs)
    scenario.install()
    for __ in range(5):
        scenario.execute(generator.transaction(db, allow_over_delete=True))
    scenario.refresh()
    return db[view.mv_table], db.snapshot()


def run_shared_log(seed):
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    view = ViewDefinition("V", generator.query(db, depth=3))
    scenario = SharedLogScenario(db)
    scenario.add_view(view)
    for __ in range(5):
        scenario.execute(generator.transaction(db, allow_over_delete=True))
    scenario.refresh("V")
    return db[view.mv_table], db.snapshot()


def run_hanson(seed):
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    view = ViewDefinition("V", generator.query(db, depth=3))
    system = HansonDifferentialFiles(db, view)
    system.install()
    for __ in range(5):
        system.execute(generator.transaction(db, allow_over_delete=True))
    system.refresh()
    return db[view.mv_table], db.snapshot()


@pytest.mark.parametrize("seed", range(8))
def test_all_paths_agree(seed):
    results = {}
    base_states = {}
    for scenario_cls in SCENARIO_CLASSES:
        results[scenario_cls.tag], base_states[scenario_cls.tag] = run_standard(scenario_cls, seed)
    results["C-strong"], base_states["C-strong"] = run_standard(CombinedScenario, seed, strong=True)
    results["SL"], base_states["SL"] = run_shared_log(seed)
    results["HAN"], base_states["HAN"] = run_hanson(seed)

    # Identical base-table end states (external tables only — auxiliary
    # bookkeeping legitimately differs per path).
    reference_tag = "IM"
    external = [name for name in base_states[reference_tag] if not name.startswith("__")]
    for tag, state in base_states.items():
        for table in external:
            assert state[table] == base_states[reference_tag][table], f"{tag}:{table}"

    # Identical view contents, duplicates included.
    reference = results[reference_tag]
    for tag, value in results.items():
        assert value == reference, f"scenario {tag} disagrees at seed {seed}"


@pytest.mark.parametrize("seed", range(4))
def test_sqlite_backend_agrees_on_final_views(seed):
    """The deferred-maintenance result matches SQLite evaluating Q directly."""
    from repro.storage.sqlite_backend import SQLiteBackend

    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    view = ViewDefinition("V", generator.query(db, depth=3))
    scenario = CombinedScenario(db, view)
    scenario.install()
    for __ in range(4):
        scenario.execute(generator.transaction(db, allow_over_delete=True))
    scenario.refresh()
    with SQLiteBackend() as backend:
        backend.sync_from(db)
        assert backend.evaluate(view.query) == db[view.mv_table]
