"""The paper, section by section, as executable assertions.

Reading companion: each test corresponds to a numbered artifact of
Colby et al. (SIGMOD 1996) in order of appearance, using the library
exactly as the paper uses its formalism.  If the reproduction drifts
from the paper, this file says where.
"""

from repro.algebra.bag import Bag
from repro.algebra.expr import Monus
from repro.core import (
    BaseLogScenario,
    CombinedScenario,
    Log,
    UserTransaction,
    ViewDefinition,
    differentiate,
    future_query,
    past_query,
)
from repro.core.substitution import FactoredSubstitution
from repro.algebra.schema import Schema
from repro.sqlfront import sql_to_view
from repro.storage.database import Database


class TestSection2Preliminaries:
    def test_2_1_monus_vs_except(self):
        """§2.1: monus subtracts multiplicities; EXCEPT removes all copies."""
        q1 = Bag([("a",), ("a",), ("b",)])
        q2 = Bag([("a",)])
        assert q1.monus(q2) == Bag([("a",), ("b",)])
        assert q1.except_(q2) == Bag([("b",)])

    def test_2_1_min_max_definitions(self):
        """§2.1: min/max defined through monus and union."""
        q1 = Bag([(1,), (1,), (2,)])
        q2 = Bag([(1,), (2,), (2,)])
        assert q1.min_(q2) == q1.monus(q1.monus(q2))
        assert q1.max_(q2) == q1.union_all(q2.monus(q1))

    def test_2_2_simple_transactions_simultaneous(self):
        """§2.2: all assignment RHS read the pre-transaction state."""
        db = Database()
        db.create_table("R", ["x"], rows=[(1,)])
        db.create_table("S", ["x"], rows=[(2,)])
        db.apply({"R": db.ref("S"), "S": db.ref("R")})
        assert db["R"] == Bag([(2,)]) and db["S"] == Bag([(1,)])

    def test_2_3_log_records_transition(self):
        """§2.3: R(s_p) = ((R ∸ ▲R) ⊎ ▼R)(s_c)."""
        db = Database()
        db.create_table("R", ["x"], rows=[(1,), (2,)])
        log = Log(db, ["R"], owner="w")
        log.install()
        past_value = db["R"]
        txn = UserTransaction(db).insert("R", [(3,)]).delete("R", [(1,)]).weakly_minimal()
        patches = txn.patches()
        patches.update(log.extend_patches(txn))
        db.apply(patches=patches)
        recovered = db["R"].monus(db["__log_ins__w__R"]).union_all(db["__log_del__w__R"])
        assert recovered == past_value

    def test_2_5_future_and_past_queries(self):
        """§2.5 Definition 1: FUTURE anticipates, PAST compensates."""
        db = Database()
        db.create_table("R", ["x"], rows=[(1,)])
        txn = UserTransaction(db).insert("R", [(2,)])
        anticipated = db.evaluate(future_query(db.ref("R"), txn, db))
        txn.apply()
        assert anticipated == db["R"]


class TestSection3Scenarios:
    def make(self, scenario_cls):
        db = Database()
        db.create_table("R", ["x"], rows=[(1,), (2,)])
        scenario = scenario_cls(db, ViewDefinition("V", db.ref("R")))
        scenario.install()
        return db, scenario

    def test_3_3_empty_log_means_consistent(self):
        """§3.3: if the log is empty, PAST(L,Q) ≡ Q, so MV is consistent."""
        db, scenario = self.make(BaseLogScenario)
        assert scenario.log.is_empty()
        assert scenario.is_consistent()

    def test_3_4_empty_differentials_mean_consistent(self):
        """§3.4: empty ∇MV/ΔMV means the view table is consistent."""
        from repro.core.scenarios import DiffTableScenario

        db, scenario = self.make(DiffTableScenario)
        assert not db[scenario.view.dt_delete_table]
        assert not db[scenario.view.dt_insert_table]
        assert scenario.is_consistent()

    def test_3_5_three_states_story(self):
        """§3.5: MV is Q(s_p); applying ∇MV/ΔMV gives Q(s_i) = PAST(L,Q)."""
        db, scenario = self.make(CombinedScenario)
        scenario.execute(UserTransaction(db).insert("R", [(3,)]))   # s_p → s_i changes
        scenario.propagate()                                        # dt now holds s_p→s_i
        scenario.execute(UserTransaction(db).insert("R", [(4,)]))   # s_i → s_c in the log
        patched = (
            db[scenario.view.mv_table]
            .monus(db[scenario.view.dt_delete_table])
            .union_all(db[scenario.view.dt_insert_table])
        )
        assert patched == db.evaluate(past_query(scenario.view.query, scenario.log))


class TestSection4Duality:
    def test_lemma1_cancellation(self):
        """Lemma 1 on concrete bags."""
        o = Bag([(1,), (1,), (2,)])
        d = Bag([(1,), (3,)])
        i = Bag([(4,)])
        n = o.monus(d).union_all(i)
        assert o == n.monus(i).union_all(o.min_(d))

    def test_theorem2_on_the_paper_like_join(self):
        """Theorem 2 instance on a join with a self-overlapping delta."""
        db = Database()
        db.create_table("R", ["a"], rows=[(1,), (1,)])
        query = Monus(db.ref("R"), db.ref("R"))  # trivially empty, still legal
        eta = FactoredSubstitution.literal(
            {"R": (Bag([(1,)]), Bag([(2,)]))}, {"R": Schema(["a"])}
        )
        delete, insert = differentiate(eta, query)
        new_value = db.evaluate(eta.apply(query))
        patched = (
            db.evaluate(query).monus(db.evaluate(delete)).union_all(db.evaluate(insert))
        )
        assert new_value == patched

    def test_4_2_remark1_positive_side(self):
        """Remark 1: SPJ view + single-table insert-only txn — pre- and
        post-update deltas coincide when evaluated post-update."""
        from repro.baselines.preupdate_bug import buggy_post_update_refresh

        db = Database()
        db.create_table("R", ["a", "b"], rows=[(1, 1)])
        db.create_table("S", ["b", "c"], rows=[(1, 9)])
        view = sql_to_view(
            "CREATE VIEW U (a, c) AS SELECT r.a, s.c FROM R r, S s WHERE r.b = s.b", db
        )
        scenario = BaseLogScenario(db, view)
        scenario.install()
        scenario.execute(UserTransaction(db).insert("R", [(2, 1)]))
        buggy = buggy_post_update_refresh(scenario.log, db, view.query, view.mv_table)
        scenario.refresh()
        assert buggy == db[view.mv_table]  # inside the restricted class: safe


class TestSection5Policies:
    def test_figure3_specs_in_one_run(self):
        """Theorem 5's four Hoare triples on one concrete run."""
        db = Database()
        db.create_table("R", ["x"], rows=[(1,)])
        scenario = CombinedScenario(db, ViewDefinition("V", db.ref("R")))
        scenario.install()
        # makesafe_C preserves INV_C:
        scenario.execute(UserTransaction(db).insert("R", [(2,)]))
        assert scenario.invariant_holds()
        # {INV_C} propagate_C {Q ≡ (MV ∸ ∇MV) ⊎ ΔMV}:
        scenario.propagate()
        from repro.core.invariants import diff_table_invariant

        assert diff_table_invariant(db, scenario.view)
        # {INV_C} partial_refresh_C {PAST(L,Q) ≡ MV}:
        scenario.execute(UserTransaction(db).insert("R", [(3,)]))
        scenario.partial_refresh()
        assert db.evaluate(past_query(scenario.view.query, scenario.log)) == scenario.read_view()
        # {INV_C} refresh_C {Q ≡ MV}:
        scenario.refresh()
        assert scenario.is_consistent()

    def test_example_5_4_downtime_shape(self):
        """Example 5.4: with hourly propagation, Policy 2's refresh lock
        touches only the precomputed differentials."""
        from repro.core.policies import MaintenanceDriver, Policy2

        db = Database()
        db.create_table("R", ["x"], rows=[(index,) for index in range(50)])
        scenario = CombinedScenario(db, ViewDefinition("V", db.ref("R")))
        scenario.install()
        driver = MaintenanceDriver(scenario, Policy2(k=1, m=24))
        for tick in range(24):
            driver.tick([UserTransaction(db).insert("R", [(1000 + driver.now,)])])
        lock_ops = scenario.ledger.downtime_tuple_ops(scenario.view.mv_table)
        # The single partial refresh applies the day's precomputed
        # differentials (24 rows): lock work ∝ the deltas, independent of
        # the base-table size the unlocked propagations scanned.
        assert scenario.is_consistent()
        assert lock_ops <= 3 * 24
