"""Unit + randomized tests for incremental aggregate maintenance."""

import pytest

from repro.algebra.bag import Bag
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import SchemaError
from repro.extensions.aggregates import AggregateScenario, AggregateSpec, AggregateView
from repro.storage.database import Database

COUNT = AggregateSpec("count")


def make_scenario(aggregates=(COUNT, AggregateSpec("sum", "amount"))):
    db = Database()
    db.create_table(
        "orders",
        ["region", "amount"],
        rows=[("east", 10), ("east", 5), ("west", 7)],
    )
    view = AggregateView(
        "sales_by_region",
        ViewDefinition("base", db.ref("orders")),
        group_by=("region",),
        aggregates=tuple(aggregates),
    )
    scenario = AggregateScenario(db, view)
    scenario.install()
    return db, scenario


class TestSpecs:
    def test_sum_requires_attribute(self):
        with pytest.raises(SchemaError):
            AggregateSpec("sum")

    def test_count_rejects_attribute(self):
        with pytest.raises(SchemaError):
            AggregateSpec("count", "x")

    def test_unknown_function(self):
        with pytest.raises(SchemaError):
            AggregateSpec("avg", "x")

    def test_column_names(self):
        assert COUNT.column_name == "count"
        assert AggregateSpec("sum", "amount").column_name == "sum_amount"

    def test_group_by_validated(self):
        db = Database()
        db.create_table("t", ["a"], rows=[(1,)])
        with pytest.raises(SchemaError):
            AggregateView("v", ViewDefinition("b", db.ref("t")), ("nope",), (COUNT,))

    def test_count_required(self):
        db = Database()
        db.create_table("t", ["a"], rows=[(1,)])
        view = AggregateView(
            "v", ViewDefinition("b", db.ref("t")), ("a",), (AggregateSpec("sum", "a"),)
        )
        scenario = AggregateScenario(db, view)
        with pytest.raises(SchemaError):
            scenario.install()


class TestInstall:
    def test_initial_aggregation(self):
        __, scenario = make_scenario()
        assert scenario.read_view() == Bag([("east", 2, 15), ("west", 1, 7)])

    def test_consistent_after_install(self):
        __, scenario = make_scenario()
        assert scenario.is_consistent()
        scenario.check_invariant()


class TestMaintenance:
    def test_inserts_update_counts_and_sums(self):
        db, scenario = make_scenario()
        scenario.execute(UserTransaction(db).insert("orders", [("east", 100)]))
        assert not scenario.is_consistent()  # deferred
        scenario.refresh()
        assert scenario.read_view() == Bag([("east", 3, 115), ("west", 1, 7)])

    def test_deletes_update_counts_and_sums(self):
        db, scenario = make_scenario()
        scenario.execute(UserTransaction(db).delete("orders", [("east", 5)]))
        scenario.refresh()
        assert scenario.read_view() == Bag([("east", 1, 10), ("west", 1, 7)])

    def test_group_disappears_at_zero_count(self):
        db, scenario = make_scenario()
        scenario.execute(UserTransaction(db).delete("orders", [("west", 7)]))
        scenario.refresh()
        assert scenario.read_view() == Bag([("east", 2, 15)])

    def test_new_group_appears(self):
        db, scenario = make_scenario()
        scenario.execute(UserTransaction(db).insert("orders", [("north", 1), ("north", 2)]))
        scenario.refresh()
        assert ("north", 2, 3) in scenario.read_view()

    def test_churn_leaves_aggregates_unchanged(self):
        db, scenario = make_scenario()
        scenario.execute(
            UserTransaction(db).delete("orders", [("east", 10)]).insert("orders", [("east", 10)])
        )
        before = scenario.read_view()
        scenario.refresh()
        assert scenario.read_view() == before
        assert scenario.is_consistent()

    def test_invariant_holds_while_stale(self):
        db, scenario = make_scenario()
        scenario.execute(UserTransaction(db).insert("orders", [("east", 1)]))
        scenario.check_invariant()  # AGG mirrors the stale base MV
        scenario.propagate()
        scenario.check_invariant()

    def test_partial_refresh_without_propagate_changes_nothing(self):
        db, scenario = make_scenario()
        scenario.execute(UserTransaction(db).insert("orders", [("east", 1)]))
        before = scenario.read_view()
        scenario.partial_refresh()
        assert scenario.read_view() == before

    def test_multi_step_stream(self):
        db, scenario = make_scenario()
        steps = [
            UserTransaction(db).insert("orders", [("east", 3), ("west", 4)]),
            UserTransaction(db).delete("orders", [("west", 7)]),
            UserTransaction(db).insert("orders", [("south", 9)]).delete("orders", [("east", 5)]),
        ]
        for txn in steps:
            scenario.execute(txn)
            scenario.check_invariant()
            scenario.refresh()
            assert scenario.is_consistent()

    def test_count_only_view(self):
        db, scenario = make_scenario(aggregates=(COUNT,))
        scenario.execute(UserTransaction(db).insert("orders", [("west", 1)]))
        scenario.refresh()
        assert scenario.read_view() == Bag([("east", 2), ("west", 2)])

    def test_refresh_cost_is_delta_proportional(self):
        """A one-row change to a large base must refresh in O(1) ops."""
        def build(rows):
            db = Database()
            db.create_table("orders", ["region", "amount"], rows=rows)
            view = AggregateView(
                "v", ViewDefinition("b", db.ref("orders")), ("region",), (COUNT,)
            )
            scenario = AggregateScenario(db, view)
            scenario.install()
            scenario.execute(UserTransaction(db).insert("orders", [("zzz", 1)]))
            scenario.propagate()
            before = scenario.counter.tuples_out
            scenario.partial_refresh()
            return scenario.counter.tuples_out - before

        small = build([("east", index) for index in range(10)])
        large = build([("east", index) for index in range(2000)])
        assert large <= small * 2


@pytest.mark.parametrize("seed", range(8))
def test_randomized_stream_matches_recomputation(seed):
    """Random insert/delete streams: incremental aggregates stay exact."""
    import random

    rng = random.Random(seed)
    db = Database()
    rows = [(rng.choice("abc"), rng.randint(1, 9)) for __ in range(30)]
    db.create_table("orders", ["region", "amount"], rows=rows)
    view = AggregateView(
        "v",
        ViewDefinition("base", db.ref("orders")),
        ("region",),
        (COUNT, AggregateSpec("sum", "amount")),
    )
    scenario = AggregateScenario(db, view)
    scenario.install()
    live = list(db["orders"])
    for __ in range(10):
        txn = UserTransaction(db)
        inserts = [(rng.choice("abcd"), rng.randint(1, 9)) for __ in range(rng.randint(0, 4))]
        if inserts:
            txn.insert("orders", inserts)
            live.extend(inserts)
        if live and rng.random() < 0.7:
            victims = [live.pop(rng.randrange(len(live))) for __ in range(min(3, len(live)))]
            txn.delete("orders", victims)
        if txn.is_empty():
            continue
        scenario.execute(txn)
        scenario.check_invariant()
        if rng.random() < 0.5:
            scenario.refresh()
            assert scenario.is_consistent()
    scenario.refresh()
    assert scenario.is_consistent()


class TestAggregateOverJoin:
    def test_example_1_1_with_aggregation(self):
        """The practical form of Example 1.1: quantity totals per customer."""
        from repro.sqlfront import sql_to_view

        db = Database()
        db.create_table(
            "customer", ["custId", "name", "address", "score"],
            rows=[(1, "ann", "x", "High"), (2, "bob", "y", "High")],
        )
        db.create_table(
            "sales", ["custId", "itemNo", "quantity", "salesPrice"],
            rows=[(1, 10, 2, 5.0), (1, 11, 3, 2.0), (2, 12, 1, 9.0)],
        )
        base = sql_to_view(
            """CREATE VIEW hv AS
               SELECT c.custId, s.quantity FROM customer c, sales s
               WHERE c.custId = s.custId AND c.score = 'High'""",
            db,
        )
        view = AggregateView(
            "qty_by_customer", base, ("custId",), (COUNT, AggregateSpec("sum", "quantity"))
        )
        scenario = AggregateScenario(db, view)
        scenario.install()
        assert scenario.read_view() == Bag([(1, 2, 5), (2, 1, 1)])
        scenario.execute(UserTransaction(db).insert("sales", [(1, 13, 10, 1.0)]))
        scenario.refresh()
        assert scenario.read_view() == Bag([(1, 3, 15), (2, 1, 1)])
