"""Unit tests for query-scoped partial refresh."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.expr import Select
from repro.algebra.predicates import Comparison, attr, const
from repro.core.scenarios import BaseLogScenario, CombinedScenario, DiffTableScenario
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import PolicyError, SchemaError
from repro.extensions.scoped import scoped_partial_refresh, scoped_query
from repro.storage.database import Database

HOT = Comparison("<", attr("a"), const(10))  # the "hot" slice a < 10


def make(scenario_cls):
    db = Database()
    db.create_table("R", ["a"], rows=[(1,), (2,), (50,)])
    scenario = scenario_cls(db, ViewDefinition("V", db.ref("R")))
    scenario.install()
    return db, scenario


def fill_differentials(db, scenario):
    """Push one hot and one cold change into the differential tables."""
    scenario.execute(UserTransaction(db).insert("R", [(3,), (60,)]).delete("R", [(1,), (50,)]))
    if isinstance(scenario, CombinedScenario):
        scenario.propagate()


class TestScopedPartialRefresh:
    @pytest.mark.parametrize("scenario_cls", [DiffTableScenario, CombinedScenario])
    def test_hot_slice_becomes_fresh(self, scenario_cls):
        db, scenario = make(scenario_cls)
        fill_differentials(db, scenario)
        scoped_partial_refresh(scenario, HOT)
        hot_view = db.evaluate(Select(HOT, db.ref(scenario.view.mv_table)))
        hot_truth = db.evaluate(Select(HOT, scenario.view.query))
        assert hot_view == hot_truth

    @pytest.mark.parametrize("scenario_cls", [DiffTableScenario, CombinedScenario])
    def test_cold_slice_stays_stale(self, scenario_cls):
        db, scenario = make(scenario_cls)
        fill_differentials(db, scenario)
        scoped_partial_refresh(scenario, HOT)
        mv = db[scenario.view.mv_table]
        assert (50,) in mv  # cold delete not applied
        assert (60,) not in mv  # cold insert not applied

    @pytest.mark.parametrize("scenario_cls", [DiffTableScenario, CombinedScenario])
    def test_invariant_preserved(self, scenario_cls):
        db, scenario = make(scenario_cls)
        fill_differentials(db, scenario)
        scoped_partial_refresh(scenario, HOT)
        scenario.check_invariant()

    @pytest.mark.parametrize("scenario_cls", [DiffTableScenario, CombinedScenario])
    def test_later_full_refresh_still_correct(self, scenario_cls):
        db, scenario = make(scenario_cls)
        fill_differentials(db, scenario)
        scoped_partial_refresh(scenario, HOT)
        scenario.refresh()
        assert scenario.is_consistent()

    def test_cold_differentials_remain(self):
        db, scenario = make(DiffTableScenario)
        fill_differentials(db, scenario)
        scoped_partial_refresh(scenario, HOT)
        assert db[scenario.view.dt_delete_table] == Bag([(50,)])
        assert db[scenario.view.dt_insert_table] == Bag([(60,)])

    def test_takes_view_lock(self):
        db, scenario = make(DiffTableScenario)
        fill_differentials(db, scenario)
        scoped_partial_refresh(scenario, HOT)
        assert scenario.ledger.section_count(scenario.view.mv_table) == 1

    def test_rejected_for_scenarios_without_differentials(self):
        db, scenario = make(BaseLogScenario)
        with pytest.raises(PolicyError):
            scoped_partial_refresh(scenario, HOT)

    def test_predicate_validated_against_view_schema(self):
        db, scenario = make(DiffTableScenario)
        bad = Comparison("=", attr("nope"), const(1))
        with pytest.raises(SchemaError):
            scoped_partial_refresh(scenario, bad)


class TestScopedQuery:
    def test_combined_scenario_propagates_first(self):
        db, scenario = make(CombinedScenario)
        # Changes left in the log, not yet propagated:
        scenario.execute(UserTransaction(db).insert("R", [(4,)]))
        result = scoped_query(scenario, HOT)
        assert result == db.evaluate(Select(HOT, scenario.view.query))
        assert (4,) in result

    def test_diff_table_scenario(self):
        db, scenario = make(DiffTableScenario)
        fill_differentials(db, scenario)
        result = scoped_query(scenario, HOT)
        assert result == db.evaluate(Select(HOT, scenario.view.query))

    def test_scoped_query_cheaper_than_full_refresh(self):
        """Downtime of the scoped path is below a full refresh's when the
        needed slice is a small fraction of the pending changes (the
        point of the extension)."""

        def backlog(db, scenario):
            # One hot change, many cold ones.
            cold = [(100 + index,) for index in range(40)]
            scenario.execute(UserTransaction(db).insert("R", [(3,), *cold]))
            scenario.propagate()

        db_full, full = make(CombinedScenario)
        db_scoped, scoped = make(CombinedScenario)
        backlog(db_full, full)
        backlog(db_scoped, scoped)
        full.refresh()
        scoped_partial_refresh(scoped, HOT)
        full_ops = full.ledger.downtime_tuple_ops(full.view.mv_table)
        scoped_ops = scoped.ledger.downtime_tuple_ops(scoped.view.mv_table)
        assert scoped_ops < full_ops
