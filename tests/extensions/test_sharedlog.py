"""Unit + randomized tests for the shared sequenced log extension."""

import pytest

from repro.algebra.bag import Bag
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import PolicyError, SchemaError
from repro.extensions.sharedlog import SharedLog, SharedLogScenario, shared_log_name
from repro.storage.database import Database
from repro.workloads.randgen import RandomExpressionGenerator


def make_db():
    db = Database()
    db.create_table("R", ["a"], rows=[(1,), (2,), (2,)])
    db.create_table("S", ["b"], rows=[(5,)])
    return db


class TestSharedLog:
    def test_track_creates_log_table(self):
        db = make_db()
        log = SharedLog(db)
        log.track("R")
        assert db.has_table("__shared_log__R")
        assert db.is_internal("__shared_log__R")

    def test_track_idempotent(self):
        db = make_db()
        log = SharedLog(db)
        log.track("R")
        log.track("R")
        assert log.tables == ("R",)

    def test_records_tagged_entries(self):
        db = make_db()
        log = SharedLog(db)
        log.track("R")
        txn = UserTransaction(db).insert("R", [(9,)]).delete("R", [(1,)])
        txn = txn.weakly_minimal()
        patches = txn.patches()
        patches.update(log.extend_patches(txn))
        db.apply(patches=patches)
        entries = db[shared_log_name("R")]
        assert (1, "I", 9) in entries
        assert (1, "D", 1) in entries

    def test_sequence_increments_per_transaction(self):
        db = make_db()
        log = SharedLog(db)
        log.track("R")
        for value in (7, 8):
            txn = UserTransaction(db).insert("R", [(value,)]).weakly_minimal()
            patches = txn.patches()
            patches.update(log.extend_patches(txn))
            db.apply(patches=patches)
        assert log.current_seq == 2
        seqs = {row[0] for row in db[shared_log_name("R")].support}
        assert seqs == {1, 2}

    def test_net_deltas_fold_cancellation(self):
        db = make_db()
        log = SharedLog(db)
        log.track("R")
        for txn in (
            UserTransaction(db).insert("R", [(9,)]),
            UserTransaction(db).delete("R", [(9,)]),
        ):
            txn = txn.weakly_minimal()
            patches = txn.patches()
            patches.update(log.extend_patches(txn))
            db.apply(patches=patches)
        net_delete, net_insert = log.net_deltas_since("R", 0)
        assert net_delete == Bag.empty()
        assert net_insert == Bag.empty()

    def test_net_deltas_respect_cursor(self):
        db = make_db()
        log = SharedLog(db)
        log.track("R")
        for value in (7, 8):
            txn = UserTransaction(db).insert("R", [(value,)]).weakly_minimal()
            patches = txn.patches()
            patches.update(log.extend_patches(txn))
            db.apply(patches=patches)
        __, net_insert = log.net_deltas_since("R", 1)
        assert net_insert == Bag([(8,)])

    def test_untracked_table_rejected(self):
        db = make_db()
        log = SharedLog(db)
        with pytest.raises(SchemaError):
            log.net_deltas_since("R", 0)

    def test_prune(self):
        db = make_db()
        log = SharedLog(db)
        log.track("R")
        for value in (7, 8):
            txn = UserTransaction(db).insert("R", [(value,)]).weakly_minimal()
            patches = txn.patches()
            patches.update(log.extend_patches(txn))
            db.apply(patches=patches)
        removed = log.prune(1)
        assert removed == 1
        assert {row[0] for row in db[shared_log_name("R")].support} == {2}


class TestSharedLogScenario:
    def make(self, views=2):
        db = make_db()
        scenario = SharedLogScenario(db)
        for index in range(views):
            scenario.add_view(ViewDefinition(f"V{index}", db.ref("R")))
        return db, scenario

    def test_duplicate_view_rejected(self):
        db, scenario = self.make(1)
        with pytest.raises(SchemaError):
            scenario.add_view(ViewDefinition("V0", db.ref("S")))

    def test_refresh_unregistered_view(self):
        __, scenario = self.make(1)
        with pytest.raises(PolicyError):
            scenario.refresh("nope")

    def test_invariants_hold_through_stream(self):
        db, scenario = self.make(2)
        for txn in (
            UserTransaction(db).insert("R", [(9,), (9,)]),
            UserTransaction(db).delete("R", [(2,)]),
        ):
            scenario.execute(txn)
            scenario.check_invariants()

    def test_refresh_brings_view_current(self):
        db, scenario = self.make(2)
        scenario.execute(UserTransaction(db).insert("R", [(9,)]))
        scenario.refresh("V0")
        assert scenario.is_consistent("V0")
        assert not scenario.is_consistent("V1")  # untouched view still stale
        scenario.check_invariants()

    def test_views_refresh_independently(self):
        db, scenario = self.make(2)
        scenario.execute(UserTransaction(db).insert("R", [(9,)]))
        scenario.refresh("V0")
        scenario.execute(UserTransaction(db).insert("R", [(10,)]))
        scenario.refresh("V1")  # must catch up across both transactions
        assert scenario.is_consistent("V1")
        scenario.refresh("V0")
        assert scenario.is_consistent("V0")

    def test_log_pruned_once_all_views_caught_up(self):
        db, scenario = self.make(2)
        scenario.execute(UserTransaction(db).insert("R", [(9,)]))
        scenario.refresh("V0")
        assert scenario.log_size() > 0  # V1 still needs the entry
        scenario.refresh("V1")
        assert scenario.log_size() == 0

    def test_per_transaction_cost_independent_of_view_count(self):
        """The whole point of the extension: adding views must not add
        per-transaction log work (unlike per-view logs)."""
        costs = {}
        for views in (1, 8):
            db = make_db()
            scenario = SharedLogScenario(db)
            for index in range(views):
                scenario.add_view(ViewDefinition(f"V{index}", db.ref("R")))
            before = scenario.counter.tuples_out
            scenario.execute(UserTransaction(db).insert("R", [(9,)]))
            costs[views] = scenario.counter.tuples_out - before
        assert costs[8] == costs[1]

    def test_join_view_over_two_tables(self):
        db = make_db()
        scenario = SharedLogScenario(db)
        view = ViewDefinition("J", db.ref("R").product(db.ref("S")))
        scenario.add_view(view)
        scenario.execute(UserTransaction(db).insert("R", [(9,)]).delete("S", [(5,)]))
        scenario.check_invariants()
        scenario.refresh("J")
        assert scenario.is_consistent("J")

    def test_view_added_mid_stream_sees_only_later_changes(self):
        db, scenario = self.make(1)
        scenario.execute(UserTransaction(db).insert("R", [(9,)]))
        late = ViewDefinition("late", db.ref("R"))
        scenario.add_view(late)
        assert scenario.is_consistent("late")
        scenario.execute(UserTransaction(db).insert("R", [(10,)]))
        scenario.refresh("late")
        assert scenario.is_consistent("late")


@pytest.mark.parametrize("seed", range(10))
def test_randomized_shared_log_equivalence(seed):
    """Shared-log refresh produces the same MV as direct recomputation."""
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    scenario = SharedLogScenario(db)
    views = []
    for index in range(2):
        view = ViewDefinition(f"V{index}", generator.query(db, depth=3))
        scenario.add_view(view)
        views.append(view)
    for __ in range(3):
        scenario.execute(generator.transaction(db, allow_over_delete=True))
        scenario.check_invariants()
    for view in views:
        scenario.refresh(view.name)
        assert scenario.read_view(view.name) == db.evaluate(view.query)
