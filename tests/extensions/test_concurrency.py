"""Unit tests for the reader/refresh blocking simulation."""

import pytest

from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import table
from repro.algebra.bag import Bag
from repro.extensions.concurrency import BlockingSimulation, ReaderStats
from repro.storage.locks import LockLedger


class TestReaderStats:
    def test_empty(self):
        stats = ReaderStats()
        assert stats.blocked_fraction == 0.0
        assert stats.mean_wait() == 0.0
        assert stats.max_wait() == 0.0
        assert stats.total_wait() == 0.0


class TestArrivals:
    def test_deterministic_by_seed(self):
        a = BlockingSimulation(reader_rate=5.0, horizon=10.0, seed=1).arrivals()
        b = BlockingSimulation(reader_rate=5.0, horizon=10.0, seed=1).arrivals()
        assert a == b

    def test_within_horizon(self):
        arrivals = BlockingSimulation(reader_rate=5.0, horizon=10.0, seed=2).arrivals()
        assert all(0 < t < 10.0 for t in arrivals)

    def test_rate_scales_count(self):
        low = len(BlockingSimulation(reader_rate=1.0, horizon=100.0, seed=3).arrivals())
        high = len(BlockingSimulation(reader_rate=10.0, horizon=100.0, seed=3).arrivals())
        assert high > low * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockingSimulation(reader_rate=0, horizon=10)
        with pytest.raises(ValueError):
            BlockingSimulation(reader_rate=1, horizon=0)


class TestRun:
    def test_no_sections_no_blocking(self):
        sim = BlockingSimulation(reader_rate=5.0, horizon=10.0, seed=4)
        stats = sim.run([])
        assert stats.blocked == 0
        assert stats.readers > 0

    def test_full_horizon_lock_blocks_everyone(self):
        sim = BlockingSimulation(reader_rate=5.0, horizon=10.0, seed=5)
        stats = sim.run([(0.0, 10.0)])
        assert stats.blocked == stats.readers
        assert stats.blocked_fraction == 1.0

    def test_longer_sections_block_more(self):
        sim_args = dict(reader_rate=20.0, horizon=100.0, seed=6)
        short = BlockingSimulation(**sim_args).run([(i * 10.0, 0.1) for i in range(1, 10)])
        long = BlockingSimulation(**sim_args).run([(i * 10.0, 5.0) for i in range(1, 10)])
        assert long.blocked > short.blocked
        assert long.total_wait() > short.total_wait()

    def test_wait_is_time_to_section_end(self):
        sim = BlockingSimulation(reader_rate=1.0, horizon=2.0, seed=7)
        # One reader arrives in (0,2); lock covers the whole window.
        stats = sim.run([(0.0, 2.0)])
        for arrival, wait in zip(sim.arrivals(), stats.waits):
            pass  # arrivals() is re-seeded; just sanity-check bounds below
        assert all(0 <= wait <= 2.0 for wait in stats.waits)


class TestEndToEndSmoke:
    """Seeded smoke test: a real warehouse's ledger drives the simulation."""

    def _refresh_ledger(self, period):
        from repro.warehouse import ViewManager

        manager = ViewManager()
        manager.create_table("sales", ("custId", "qty"))
        manager.load("sales", [(i % 7, i % 5) for i in range(40)])
        manager.define_view("V", "SELECT custId, qty FROM sales WHERE qty != 0", scenario="combined")
        for step in range(12):
            manager.transaction().insert("sales", [(step, step % 5 + 1)]).run()
            if step % period == period - 1:
                manager.refresh("V")
        return manager.ledger, manager.scenario("V").view.mv_table

    def test_frequent_refreshes_block_readers_less_per_section(self):
        ledger_frequent, mv = self._refresh_ledger(period=2)
        ledger_rare, __ = self._refresh_ledger(period=6)
        # Deferring longer makes each critical section strictly heavier.
        assert ledger_rare.max_section_tuple_ops(mv) > ledger_frequent.max_section_tuple_ops(mv)

        sim_args = dict(reader_rate=10.0, horizon=600.0, seed=96)
        stats = {}
        for name, ledger in [("frequent", ledger_frequent), ("rare", ledger_rare)]:
            sections = BlockingSimulation.sections_from_ledger(
                ledger, mv, interval=60.0, ops_per_second=5.0
            )
            stats[name] = BlockingSimulation(**sim_args).run(sections)
        # Same seed → same arrivals; the comparison isolates the policy.
        assert stats["frequent"].readers == stats["rare"].readers
        assert stats["rare"].max_wait() >= stats["frequent"].max_wait()

    def test_seeded_run_is_reproducible(self):
        ledger, mv = self._refresh_ledger(period=3)
        sections = BlockingSimulation.sections_from_ledger(
            ledger, mv, interval=30.0, ops_per_second=10.0
        )
        first = BlockingSimulation(reader_rate=5.0, horizon=300.0, seed=42).run(sections)
        second = BlockingSimulation(reader_rate=5.0, horizon=300.0, seed=42).run(sections)
        assert first.waits == second.waits
        assert first.blocked == second.blocked
        assert first.readers > 0


class TestLedgerBridge:
    def test_sections_from_ledger(self):
        ledger = LockLedger()
        counter = CostCounter()
        state = {"R": Bag([(1,)] * 10)}
        with ledger.exclusive("MV", counter=counter):
            evaluate(table("R", ["a"]), state, counter=counter)
        with ledger.exclusive("MV", counter=counter):
            pass
        with ledger.exclusive("other", counter=counter):
            pass
        sections = BlockingSimulation.sections_from_ledger(
            ledger, "MV", interval=60.0, ops_per_second=10.0
        )
        assert sections == [(60.0, 1.0), (120.0, 0.0)]

    def test_ops_per_second_validated(self):
        with pytest.raises(ValueError):
            BlockingSimulation.sections_from_ledger(
                LockLedger(), "MV", interval=1.0, ops_per_second=0
            )
