"""Tracer unit tests: nesting, counter absorption, threads, exports."""

import json
import threading

from repro import obs
from repro.algebra.evaluation import CostCounter
from repro.obs.tracer import NULL_HANDLE, NullTracer, Tracer


def test_spans_nest_through_the_thread_local_stack():
    tracer = Tracer()
    with tracer.span("outer", view="V"):
        with tracer.span("inner"):
            pass
        with tracer.span("sibling"):
            pass
    assert [root.name for root in tracer.roots] == ["outer"]
    outer = tracer.roots[0]
    assert [child.name for child in outer.children] == ["inner", "sibling"]
    assert outer.attrs["view"] == "V"
    assert outer.duration_s >= 0.0


def test_span_absorbs_cost_counter_delta():
    tracer = Tracer()
    counter = CostCounter()
    counter.record("setup", 5)
    with tracer.span("work", counter=counter):
        counter.record("select", 7)
        counter.record("project", 3)
    assert tracer.roots[0].attrs["tuple_ops"] == 10


def test_explicit_parent_crosses_threads():
    tracer = Tracer()
    with tracer.span("epoch") as epoch:
        worker_parent = tracer.active()

        def work():
            with tracer.span("delta_compute", view="V0", parent=worker_parent):
                pass

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        # A handle works as parent= too (not just a raw Span).
        with tracer.span("refresh", parent=epoch):
            pass
    names = [child.name for child in tracer.roots[0].children]
    assert names == ["delta_compute", "refresh"]
    assert len(tracer.roots) == 1  # nothing leaked into a second root


def test_in_flight_root_is_visible():
    # The demo renders while the root is still open; _push must register
    # roots immediately rather than on exit.
    tracer = Tracer()
    with tracer.span("txn"):
        assert [root.name for root in tracer.roots] == ["txn"]


def test_find_set_and_event():
    tracer = Tracer()
    with tracer.span("refresh") as handle:
        handle.set(view="V", watermark=12)
        handle.event("lock_acquired", resource="__mv__V")
    (refresh,) = tracer.find("refresh")
    assert refresh.attrs == {"view": "V", "watermark": 12}
    assert tracer.find("lock_acquired")[0].attrs["resource"] == "__mv__V"
    assert tracer.find("missing") == []


def test_structure_drops_timing_but_to_dict_keeps_it():
    tracer = Tracer()
    counter = CostCounter()
    with tracer.span("refresh", view="V", counter=counter):
        counter.record("select", 4)
    span = tracer.roots[0]
    assert span.to_dict()["attrs"]["tuple_ops"] == 4
    assert "tuple_ops" not in span.structure()["attrs"]
    assert "duration_s" not in span.structure()
    assert span.structure()["attrs"] == {"view": "V"}


def test_write_round_trips_json(tmp_path):
    tracer = Tracer()
    with tracer.span("txn", tables="sales"):
        with tracer.span("apply", assignments=2):
            pass
    path = tracer.write(tmp_path / "trace.json")
    document = json.loads(path.read_text())
    assert document["format"] == "repro-trace-v1"
    assert document["spans"][0]["children"][0]["name"] == "apply"


def test_null_tracer_is_inert_and_shared():
    tracer = NullTracer()
    handle = tracer.span("anything", counter=CostCounter())
    assert handle is NULL_HANDLE
    with handle:
        handle.set(view="V").event("x")
    assert tracer.active() is None
    assert tracer.to_dict()["spans"] == []
    assert tracer.find("anything") == []


def test_disabled_helpers_dispatch_to_null():
    obs.disable()
    assert not obs.is_enabled()
    with obs.span("refresh", view="V"):
        obs.metric_inc("refreshes")
        obs.accountant().mark_fresh("V")
    assert obs.current().tracer.to_dict()["spans"] == []


def test_observed_restores_previous_stack():
    obs.disable()
    with obs.observed() as stack:
        assert obs.is_enabled()
        assert obs.current() is stack
        with obs.span("txn"):
            pass
        assert len(stack.tracer.roots) == 1
    assert not obs.is_enabled()
