"""Downtime/staleness clock unit tests against a controllable clock."""

from repro.obs.accounting import DowntimeAccountant, NullAccountant


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_lock_sections_accumulate_and_track_worst():
    accountant = DowntimeAccountant()
    accountant.on_lock_section("V", seconds=0.010, ops=100, label="refresh")
    accountant.on_lock_section("V", seconds=0.002, ops=300, label="partial_refresh")
    clock = accountant.clock("V")
    assert clock.lock_sections == 2
    assert clock.locked_seconds == 0.012
    assert clock.locked_ops == 400
    assert clock.max_section_seconds == 0.010
    assert clock.max_section_ops == 300
    assert clock.mean_section_ops() == 200


def test_staleness_window_opens_once_and_samples_both_units():
    fake = FakeClock()
    accountant = DowntimeAccountant(clock=fake)

    fake.advance(1.0)
    accountant.mark_stale("V", pending_entries=10)
    fake.advance(2.0)
    accountant.mark_stale("V", pending_entries=25)  # window stays open
    fake.advance(3.0)
    accountant.mark_fresh("V")  # full refresh: residual 0

    clock = accountant.clock("V")
    assert clock.staleness_samples == [(5.0, 25)]  # since the FIRST update
    assert clock.stale_since is None
    assert clock.pending_entries == 0
    assert clock.stale_seconds == 5.0
    assert clock.max_staleness_seconds() == 5.0
    assert clock.max_staleness_entries() == 25


def test_partial_refresh_reopens_the_window_with_residual():
    fake = FakeClock()
    accountant = DowntimeAccountant(clock=fake)
    accountant.mark_stale("V", pending_entries=40)
    fake.advance(4.0)
    accountant.mark_fresh("V", residual_entries=8)  # Policy 2: k ticks behind
    clock = accountant.clock("V")
    assert clock.pending_entries == 8
    assert clock.stale_since == fake.now  # still stale, window restarted
    fake.advance(1.0)
    accountant.mark_fresh("V")
    assert clock.staleness_samples == [(4.0, 40), (1.0, 8)]


def test_fresh_view_refresh_samples_zero():
    accountant = DowntimeAccountant()
    accountant.mark_fresh("V")
    assert accountant.clock("V").staleness_samples == [(0.0, 0)]


def test_snapshot_shape_and_reset():
    accountant = DowntimeAccountant()
    accountant.on_lock_section("V", seconds=0.5, ops=10)
    accountant.mark_stale("V", pending_entries=3)
    accountant.mark_fresh("V")
    snapshot = accountant.snapshot()
    assert set(snapshot) == {"V"}
    assert set(snapshot["V"]) == {"view", "downtime", "staleness"}
    assert snapshot["V"]["downtime"]["lock_sections"] == 1
    assert snapshot["V"]["staleness"]["refreshes"] == 1
    accountant.reset()
    assert accountant.snapshot() == {}
    assert accountant.views() == ()


def test_null_accountant_is_inert():
    null = NullAccountant()
    null.on_lock_section("V", seconds=1.0, ops=5)
    null.mark_stale("V", pending_entries=9)
    null.mark_fresh("V")
    assert null.snapshot() == {}
    assert null.views() == ()
    assert null.clock("V").lock_sections == 0
