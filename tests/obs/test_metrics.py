"""Metrics registry unit tests: types, exporters, counter absorption."""

import json

from repro.algebra.evaluation import CostCounter
from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry, NullMetrics


def test_counter_gauge_histogram_snapshots():
    registry = MetricsRegistry()
    registry.inc("refreshes")
    registry.inc("refreshes", 2)
    registry.set_gauge("pending_entries", 17)
    for value in (1, 5, 5, 12000):
        registry.observe("delta_rows", value)

    snapshot = registry.snapshot()
    assert snapshot["refreshes"] == {"type": "counter", "value": 3}
    assert snapshot["pending_entries"] == {"type": "gauge", "value": 17}
    histogram = snapshot["delta_rows"]
    assert histogram["type"] == "histogram"
    assert histogram["count"] == 4
    assert histogram["sum"] == 12011
    assert histogram["min"] == 1 and histogram["max"] == 12000
    assert histogram["buckets"]["le_1"] == 1
    assert histogram["buckets"]["overflow"] == 1  # 12000 > last bound


def test_histogram_latency_buckets():
    registry = MetricsRegistry()
    registry.observe("refresh_latency_s", 0.0002, buckets=LATENCY_BUCKETS_S)
    registry.observe("refresh_latency_s", 1.0, buckets=LATENCY_BUCKETS_S)
    buckets = registry.snapshot()["refresh_latency_s"]["buckets"]
    assert sum(buckets.values()) == 2


def test_ratio_none_before_any_lookup():
    registry = MetricsRegistry()
    assert registry.ratio("plan_cache_hits", "plan_cache_misses") is None
    registry.inc("plan_cache_hits", 3)
    registry.inc("plan_cache_misses", 1)
    assert registry.ratio("plan_cache_hits", "plan_cache_misses") == 0.75


def test_absorb_counter_mirrors_cache_stats():
    counter = CostCounter()
    counter.plan_hits = 9
    counter.plan_misses = 1
    counter.memo_hits = 4
    counter.index_probes = 100
    counter.delta_cache_hits = 2
    registry = MetricsRegistry()
    registry.absorb_counter(counter)
    snapshot = registry.snapshot()
    assert snapshot["plan_cache_hits"]["value"] == 9
    assert snapshot["plan_cache_hit_ratio"]["value"] == 0.9
    assert snapshot["memo_hits"]["value"] == 4
    assert snapshot["index_probes"]["value"] == 100
    assert snapshot["delta_cache_hits"]["value"] == 2


def test_render_text_and_json_exporters():
    registry = MetricsRegistry()
    registry.inc("journal_fsyncs", 5)
    registry.set_gauge("views", 3)
    registry.observe("delta_rows", 10)

    text = registry.render_text()
    assert "journal_fsyncs 5" in text
    assert "views 3" in text
    assert "delta_rows_count 1" in text
    assert "delta_rows_sum 10" in text

    document = json.loads(registry.to_json())
    assert document["journal_fsyncs"]["value"] == 5


def test_reset_clears_everything():
    registry = MetricsRegistry()
    registry.inc("refreshes")
    registry.reset()
    assert registry.snapshot() == {}


def test_null_metrics_is_inert():
    null = NullMetrics()
    null.inc("x")
    null.set_gauge("y", 1)
    null.observe("z", 2)
    null.absorb_counter(CostCounter())
    assert null.snapshot() == {}
    assert null.ratio("a", "b") is None
