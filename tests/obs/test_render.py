"""Trace rendering and the ``python -m repro trace`` entry point."""

import json

import pytest

from repro.cli import main as repro_main
from repro.obs.render import render_trace, render_trace_file
from repro.obs.tracer import Tracer


def sample_trace() -> dict:
    tracer = Tracer()
    with tracer.span("group_epoch", views=3):
        with tracer.span("batch", index=0, tasks=3):
            with tracer.span("delta_compute", view="V0"):
                pass
            with tracer.span("refresh", view="V0", scenario="BL"):
                pass
    return tracer.to_dict()


def test_render_trace_draws_the_nested_tree():
    text = render_trace(sample_trace())
    lines = text.splitlines()
    assert lines[0].startswith("group_epoch views=3")
    assert "├─ delta_compute view=V0" in text
    assert "└─ refresh scenario=BL view=V0" in text
    # Nesting depth is visible: batch children carry the │/space gutter.
    assert any(line.startswith("│  ") or line.startswith("   ") for line in lines)
    assert "ms" in lines[0]


def test_render_empty_trace():
    assert render_trace({"spans": []}) == "(empty trace)"


def test_render_trace_file_round_trip(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(sample_trace()))
    assert "group_epoch" in render_trace_file(path)


def test_cli_trace_renders_a_file(tmp_path, capsys):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(sample_trace()))
    assert repro_main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "group_epoch" in out and "└─" in out


def test_cli_trace_demo_renders_a_group_epoch(capsys):
    assert repro_main(["trace", "--demo"]) == 0
    out = capsys.readouterr().out
    # The acceptance shape: a group-refresh epoch as a nested span tree.
    assert "group_epoch" in out
    assert "batch" in out
    assert "delta_compute" in out
    assert "txn" in out


def test_cli_trace_demo_json(capsys):
    assert repro_main(["trace", "--demo", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["format"] == "repro-trace-v1"
    names = {span["name"] for span in document["spans"]}
    assert "group_epoch" in names


def test_cli_trace_without_args_errors():
    with pytest.raises(SystemExit):
        repro_main(["trace"])
