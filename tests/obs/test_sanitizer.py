"""The dynamic lockset sanitizer: algorithm units and live integration."""

from repro import obs
from repro.analysis.mutations import apply_mutation
from repro.core.scenarios import BaseLogScenario
from repro.core.transactions import UserTransaction
from repro.obs.sanitizer import NULL_SANITIZER, LocksetSanitizer, NullSanitizer
from repro.sqlfront import sql_to_view
from repro.storage.database import Database

VIEW_SQL = "CREATE VIEW V (a, c) AS SELECT r.a, s.c FROM R r, S s WHERE r.b = s.b"
MV = "__mv__V"


def make_scenario(exec_mode="compiled"):
    db = Database(exec_mode=exec_mode)
    db.create_table("R", ["a", "b"], rows=[(1, 1), (2, 2)])
    db.create_table("S", ["b", "c"], rows=[(1, 10), (2, 20)])
    scenario = BaseLogScenario(db, sql_to_view(VIEW_SQL, db))
    scenario.install()
    return scenario


class TestLocksetAlgorithm:
    def test_access_with_lock_held_is_clean(self):
        sanitizer = LocksetSanitizer()
        sanitizer.op_enter("refresh", "V")
        sanitizer.lock_acquired(MV)
        sanitizer.on_read([MV])
        sanitizer.on_write([MV])
        sanitizer.lock_released(MV)
        sanitizer.op_exit("refresh")
        assert sanitizer.findings == []

    def test_unlocked_read_and_write_fire(self):
        sanitizer = LocksetSanitizer()
        sanitizer.op_enter("refresh", "V")
        sanitizer.on_read([MV])
        sanitizer.on_write([MV])
        sanitizer.op_exit("refresh")
        assert [f.code for f in sanitizer.findings] == ["RVM601", "RVM602"]
        assert all(f.table == MV and f.op == "refresh" for f in sanitizer.findings)

    def test_lockset_is_the_intersection_across_accesses(self):
        # First access under the lock, second without: the candidate
        # lockset shrinks to empty on the second access.
        sanitizer = LocksetSanitizer()
        sanitizer.op_enter("refresh", "V")
        sanitizer.lock_acquired(MV)
        sanitizer.on_read([MV])
        sanitizer.lock_released(MV)
        assert sanitizer.findings == []
        sanitizer.on_read([MV])
        assert [f.code for f in sanitizer.findings] == ["RVM601"]

    def test_findings_dedup_on_code_table_op(self):
        sanitizer = LocksetSanitizer()
        sanitizer.op_enter("refresh", "V")
        sanitizer.on_read([MV])
        sanitizer.on_read([MV])
        sanitizer.on_read([MV])
        assert len(sanitizer.findings) == 1

    def test_untracked_ops_are_not_judged(self):
        sanitizer = LocksetSanitizer()
        for op in ("makesafe", "propagate"):
            sanitizer.op_enter(op, "V")
            sanitizer.on_write([MV])
            sanitizer.op_exit(op)
        sanitizer.on_write([MV])  # no op open at all
        assert sanitizer.findings == []

    def test_non_mv_tables_are_not_judged(self):
        sanitizer = LocksetSanitizer()
        sanitizer.op_enter("refresh", "V")
        sanitizer.on_write(["R", "log_V"])
        assert sanitizer.findings == []

    def test_reentrant_lock_counting(self):
        sanitizer = LocksetSanitizer()
        sanitizer.lock_acquired(MV)
        sanitizer.lock_acquired(MV)
        sanitizer.lock_released(MV)
        assert MV in sanitizer.held_locks()  # still held once
        sanitizer.lock_released(MV)
        assert MV not in sanitizer.held_locks()

    def test_nested_ops_judge_by_innermost(self):
        sanitizer = LocksetSanitizer()
        sanitizer.op_enter("refresh", "V")
        sanitizer.op_enter("propagate", "V")
        sanitizer.on_write([MV])  # innermost op is untracked
        sanitizer.op_exit("propagate")
        assert sanitizer.findings == []
        sanitizer.on_write([MV])  # back under refresh, no lock
        assert [f.code for f in sanitizer.findings] == ["RVM602"]

    def test_journal_payload_diff(self):
        sanitizer = LocksetSanitizer()
        sanitizer.check_journal_payload("refresh", {MV, "R"}, frozenset({"R"}))
        assert [f.code for f in sanitizer.findings] == ["RVM605"]
        assert sanitizer.findings[0].table == MV

    def test_report_and_reset(self):
        sanitizer = LocksetSanitizer()
        sanitizer.op_enter("refresh", "V")
        sanitizer.on_read([MV])
        report = sanitizer.report()
        assert [d.code for d in report] == ["RVM601"]
        assert report.errors
        sanitizer.reset()
        assert sanitizer.findings == []
        assert len(sanitizer.report()) == 0


class TestNullSanitizer:
    def test_disabled_and_inert(self):
        null = NullSanitizer()
        assert not null.enabled
        null.op_enter("refresh", "V")
        null.lock_acquired(MV)
        null.on_read([MV])
        null.on_write([MV])
        null.check_journal_payload("refresh", {MV}, frozenset())
        null.lock_released(MV)
        null.op_exit("refresh")

    def test_default_obs_stack_has_no_sanitizer(self):
        assert obs.current().sanitizer is NULL_SANITIZER or not obs.current().sanitizer.enabled
        assert obs.active_sanitizer() is None


class TestIntegration:
    def test_clean_refresh_has_zero_findings(self):
        scenario = make_scenario()
        with obs.observed(sanitizer=True) as stack:
            scenario.execute(UserTransaction(scenario.db).insert("R", [(5, 1)]))
            scenario.refresh()
        assert stack.sanitizer.findings == []

    def test_dropped_lock_is_caught_at_runtime(self):
        scenario = make_scenario()
        with apply_mutation("dropped_lock"):
            with obs.observed(sanitizer=True) as stack:
                scenario.execute(UserTransaction(scenario.db).insert("R", [(5, 1)]))
                scenario.refresh()
        codes = {f.code for f in stack.sanitizer.findings}
        assert codes == {"RVM601", "RVM602"}

    def test_sanitizer_observed_alone(self):
        with obs.observed(tracer=False, metrics=False, accounting=False, sanitizer=True) as stack:
            assert obs.is_enabled()
            assert obs.active_sanitizer() is stack.sanitizer
        assert obs.active_sanitizer() is None

    def test_sanitizer_does_not_change_results(self):
        plain = make_scenario()
        plain.execute(UserTransaction(plain.db).insert("R", [(5, 1)]))
        plain.refresh()
        sanitized = make_scenario()
        with obs.observed(sanitizer=True):
            sanitized.execute(UserTransaction(sanitized.db).insert("R", [(5, 1)]))
            sanitized.refresh()
        assert plain.read_view() == sanitized.read_view()

    def test_observed_reset_clears_findings(self):
        with obs.observed(sanitizer=True) as stack:
            stack.sanitizer.op_enter("refresh", "V")
            stack.sanitizer.on_read([MV])
            assert stack.sanitizer.findings
            stack.reset()
            assert stack.sanitizer.findings == []
