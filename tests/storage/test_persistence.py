"""Unit tests for saving/loading databases to SQLite files."""

import sqlite3

import pytest

from repro.algebra.bag import Bag
from repro.errors import ReproError
from repro.storage.database import Database
from repro.storage.persistence import load_database, save_database


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "mixed",
        ["i", "f", "s", "b", "n"],
        rows=[(1, 2.5, "text", True, None), (1, 2.5, "text", True, None), (0, -1.0, "o'x", False, None)],
    )
    database.create_table("__mv__V", ["x"], rows=[(42,)], internal=True)
    return database


class TestRoundTrip:
    def test_contents_preserved(self, db, tmp_path):
        path = tmp_path / "state.db"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.snapshot() == db.snapshot()

    def test_schemas_preserved(self, db, tmp_path):
        path = tmp_path / "state.db"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.schema_of("mixed") == db.schema_of("mixed")

    def test_internal_flag_preserved(self, db, tmp_path):
        path = tmp_path / "state.db"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.is_internal("__mv__V")
        assert not loaded.is_internal("mixed")

    def test_multiplicities_preserved(self, db, tmp_path):
        path = tmp_path / "state.db"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded["mixed"].multiplicity((1, 2.5, "text", True, None)) == 2

    def test_bool_round_trips_as_bool(self, tmp_path):
        # (In the engine itself True == 1, per Python semantics; what
        # persistence must guarantee is that a stored bool comes back a
        # bool, not the integer SQLite would naturally return.)
        database = Database()
        database.create_table("t", ["v"], rows=[(False,)])
        path = tmp_path / "state.db"
        save_database(database, path)
        loaded = load_database(path)
        value = next(iter(loaded["t"]))[0]
        assert value is False

    def test_overwrites_existing_file(self, db, tmp_path):
        path = tmp_path / "state.db"
        save_database(db, path)
        save_database(db, path)  # second save must not fail
        assert load_database(path).snapshot() == db.snapshot()

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.db"
        save_database(Database(), path)
        assert load_database(path).table_names() == ()

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_database(tmp_path / "nope.db")

    def test_unpersistable_value_rejected(self, tmp_path):
        database = Database()
        database.create_table("t", ["v"], rows=[((1, 2),)])  # nested tuple
        with pytest.raises(ReproError):
            save_database(database, tmp_path / "bad.db")


class TestFileIsPlainSQLite:
    def test_queryable_with_sqlite3(self, db, tmp_path):
        path = tmp_path / "state.db"
        save_database(db, path)
        conn = sqlite3.connect(path)
        try:
            total = conn.execute('SELECT SUM(mult) FROM "mixed"').fetchone()[0]
            assert total == 3
        finally:
            conn.close()


class TestResumeMaintenance:
    def test_deferred_state_survives_restart(self, tmp_path):
        """Save mid-deferral, reload, refresh — the view catches up."""
        from repro.core.scenarios import CombinedScenario
        from repro.core.transactions import UserTransaction
        from repro.core.views import ViewDefinition

        database = Database()
        database.create_table("R", ["a"], rows=[(1,), (2,)])
        view = ViewDefinition("V", database.ref("R"))
        scenario = CombinedScenario(database, view)
        scenario.install()
        scenario.execute(UserTransaction(database).insert("R", [(9,)]))
        scenario.propagate()
        scenario.execute(UserTransaction(database).delete("R", [(1,)]))

        path = tmp_path / "warehouse.db"
        save_database(database, path)
        restored = load_database(path)

        resumed = CombinedScenario(restored, view)
        resumed._installed = True  # tables already exist in the file
        resumed.check_invariant()
        resumed.refresh()
        assert resumed.is_consistent()
        assert restored["__mv__V"] == Bag([(2,), (9,)])
