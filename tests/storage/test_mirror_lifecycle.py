"""Mirror lifecycle edges: unsupported fallback, forget/re-ensure,
torn loads, and post-crash digest cross-checks.

The SQLite mirror is *derived* state with a self-description of its own
health: ``_dirty`` marks tables needing a reload, ``_unsupported``
marks tables SQLite cannot represent, and the new self-healing surface
(``table_digest`` / ``divergent_tables`` / ``resync``) lets the
governor and the recovery runner prove — or restore — agreement with
the canonical :class:`~repro.storage.database.Database`.
"""

import sqlite3

import pytest

from repro.algebra.bag import Bag
from repro.algebra.schema import Schema
from repro.core.transactions import UserTransaction
from repro.robustness.faults import INJECTOR, InjectedCrash
from repro.storage.database import Database
from repro.storage.sqlite_backend import (
    MirrorUnsupported,
    SQLiteMirror,
    mirror_digest,
)


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


def sqlite_db(rows=((1, "x"), (2, "y"))):
    db = Database(exec_mode="sqlite")
    db.create_table("t", ("a", "b"), rows=list(rows))
    return db


def patch_insert(db, table, rows):
    txn = UserTransaction(db)
    txn.insert(table, rows)
    txn.apply()


# ----------------------------------------------------------------------
# MirrorUnsupported: per-table fallback, then recovery via replace
# ----------------------------------------------------------------------


class Opaque:
    """A value SQLite cannot store faithfully."""


def test_unsupported_table_falls_back_per_table():
    db = sqlite_db()
    db.create_table("blobs", ("k", "v"), rows=[(1, Opaque())])
    # Both scans answer correctly; only ``t`` is actually mirrored.
    assert db.evaluate(db.ref("t")) == Bag([(1, "x"), (2, "y")])
    assert len(db.evaluate(db.ref("blobs"))) == 1
    mirror = db.executor.mirror
    assert mirror.is_mirrored("t")
    assert not mirror.is_mirrored("blobs")
    with pytest.raises(MirrorUnsupported):
        mirror.ensure("blobs", db.schema_of("blobs"), db["blobs"])


def test_unsupported_table_recovers_after_replace():
    db = sqlite_db()
    db.create_table("blobs", ("k", "v"), rows=[(1, Opaque())])
    db.evaluate(db.ref("blobs"))
    mirror = db.executor.mirror
    # A wholesale replacement with representable rows lifts the
    # unsupported mark; the next scan mirrors the table normally.
    db.set_table("blobs", Bag([(1, "ok"), (2, "fine")]))
    assert db.evaluate(db.ref("blobs")) == Bag([(1, "ok"), (2, "fine")])
    assert mirror.is_mirrored("blobs")
    assert mirror.table_digest("blobs") == mirror_digest(db["blobs"])


def test_resync_skips_unsupported_tables():
    db = sqlite_db()
    db.create_table("blobs", ("k", "v"), rows=[(1, Opaque())])
    db.evaluate(db.ref("t"))
    db.evaluate(db.ref("blobs"))
    mirror = db.executor.mirror
    # Nothing diverged, nothing to heal — and the unsupported table is
    # not a resync target (it has no mirrored schema to restore).
    assert mirror.divergent_tables(db) == []
    assert mirror.resync(db, names=["t", "blobs"]) == ["t"]
    assert not mirror.is_mirrored("blobs")


# ----------------------------------------------------------------------
# Forget / re-ensure cycles
# ----------------------------------------------------------------------


def test_drop_forgets_and_recreate_remirrors():
    db = sqlite_db()
    db.evaluate(db.ref("t"))
    mirror = db.executor.mirror
    assert mirror.is_mirrored("t")
    db.drop_table("t")
    assert not mirror.is_mirrored("t")
    assert mirror.table_digest("t") is None
    db.create_table("t", ("a", "b"), rows=[(9, "q")])
    assert db.evaluate(db.ref("t")) == Bag([(9, "q")])
    assert mirror.is_mirrored("t")
    assert mirror.to_bag("t") == Bag([(9, "q")])


def test_degraded_table_reloads_on_next_scan():
    db = sqlite_db()
    db.evaluate(db.ref("t"))
    mirror = db.executor.mirror
    # A backend fault inside the incremental fold is contained: the
    # canonical write succeeds, the mirror marks itself dirty.
    INJECTOR.arm_transient("flaky-mirror-upsert", times=1)
    patch_insert(db, "t", [(3, "z")])
    assert db["t"] == Bag([(1, "x"), (2, "y"), (3, "z")])
    assert "t" in mirror._dirty
    assert mirror.table_digest("t") is None  # dirty ⇒ no digest claim
    # The next pushdown scan reloads wholesale and answers correctly.
    assert db.evaluate(db.ref("t")) == Bag([(1, "x"), (2, "y"), (3, "z")])
    assert "t" not in mirror._dirty
    assert mirror.table_digest("t") == mirror_digest(db["t"])


def test_forget_then_reensure_cycles_are_stable():
    db = sqlite_db()
    mirror = db.executor.mirror
    for round_number in range(3):
        # Load a fresh row each round: version-stamped result memos
        # would otherwise answer without ever touching the mirror.
        db.load("t", [(10 + round_number, "w")])
        assert db.evaluate(db.ref("t")) == db["t"]
        assert mirror.is_mirrored("t")
        mirror._forget("t")
        assert not mirror.is_mirrored("t")
    db.load("t", [(99, "q")])
    assert db.evaluate(db.ref("t")) == db["t"]
    assert mirror.to_bag("t") == db["t"]


# ----------------------------------------------------------------------
# Torn loads: the ensure guard
# ----------------------------------------------------------------------


def test_interrupted_first_reload_does_not_pass_as_current():
    mirror = SQLiteMirror()
    schema = Schema(("a", "b"))
    bag = Bag([(1, "x"), (2, "y")])
    INJECTOR.arm_transient("flaky-mirror-reload", times=1)
    with pytest.raises(sqlite3.OperationalError):
        mirror.ensure("t", schema, bag)
    # The shell exists but is marked dirty: an empty CREATE TABLE must
    # never be mistaken for loaded content by a retrying caller.
    assert "t" in mirror._schemas
    assert "t" in mirror._dirty
    assert mirror.table_digest("t") is None
    mirror.ensure("t", schema, bag)  # the retry
    assert mirror.to_bag("t") == bag
    assert mirror.table_digest("t") == mirror_digest(bag)
    mirror.close()


def test_interrupted_rescan_reload_stays_dirty():
    mirror = SQLiteMirror()
    schema = Schema(("a",))
    mirror.ensure("t", schema, Bag([(1,)]))
    mirror.on_replace("t", Bag([(5,), (6,)]))  # marks dirty, lazy reload
    INJECTOR.arm_transient("flaky-mirror-reload", times=1)
    with pytest.raises(sqlite3.OperationalError):
        mirror.ensure("t", schema, Bag([(5,), (6,)]))
    assert "t" in mirror._dirty
    mirror.ensure("t", schema, Bag([(5,), (6,)]))
    assert mirror.to_bag("t") == Bag([(5,), (6,)])
    mirror.close()


# ----------------------------------------------------------------------
# Digest cross-checks after a crash-interrupted on_patch
# ----------------------------------------------------------------------


def test_crash_mid_upsert_is_caught_by_digest_cross_check():
    db = sqlite_db()
    db.evaluate(db.ref("t"))
    mirror = db.executor.mirror
    # An InjectedCrash is a BaseException: containment does NOT absorb
    # it (a real process death absorbs nothing), so it tears straight
    # through the listener without even a dirty mark.
    INJECTOR.arm("flaky-mirror-upsert", hit=1)
    with pytest.raises(InjectedCrash):
        patch_insert(db, "t", [(3, "z")])
    INJECTOR.reset()
    # The canonical transaction rolled back (nothing before the listener
    # seam commits partially), and the rollback's wholesale restore left
    # the mirror dirty — so it makes no digest claim at all until the
    # heal-step resync restores exact, digest-checked agreement.
    assert mirror.table_digest("t") is None
    assert mirror.resync(db) == ["t"]
    assert mirror.divergent_tables(db) == []
    assert mirror.table_digest("t") == mirror_digest(db["t"])
    assert db.evaluate(db.ref("t")) == db["t"]


def test_divergent_tables_flags_silent_corruption():
    db = sqlite_db()
    db.evaluate(db.ref("t"))
    mirror = db.executor.mirror
    mirror._conn.execute('DELETE FROM "t" WHERE c0 = 1')
    assert mirror.divergent_tables(db) == ["t"]
    assert mirror.resync(db) == ["t"]
    assert mirror.divergent_tables(db) == []
    assert mirror.to_bag("t") == db["t"]


def test_resync_forgets_tables_dropped_from_database():
    # A standalone mirror holding a table the database does not: the
    # shape recovery meets when a restored snapshot predates the table.
    db = sqlite_db()
    mirror = SQLiteMirror()
    mirror.ensure("t", db.schema_of("t"), db["t"])
    mirror.ensure("ghost", Schema(("a",)), Bag([(1,)]))
    assert mirror.divergent_tables(db) == ["ghost"]
    assert mirror.resync(db) == ["ghost"]
    assert not mirror.is_mirrored("ghost")
    assert mirror.is_mirrored("t")
    mirror.close()


def test_digests_are_bool_int_insensitive():
    db = Database(exec_mode="sqlite")
    db.create_table("flags", ("k", "on"), rows=[(1, True), (2, False)])
    db.evaluate(db.ref("flags"))
    mirror = db.executor.mirror
    # SQLite stores bools as 0/1; the normalized digests still agree,
    # so the round trip is not misread as divergence.
    assert mirror.table_digest("flags") == mirror_digest(db["flags"])
    assert mirror.divergent_tables(db) == []


def test_resync_restores_requested_indexes():
    db = sqlite_db()
    db.evaluate(db.ref("t"))
    mirror = db.executor.mirror
    mirror.request_index("t", (0,))
    before = {
        name
        for (name,) in mirror._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
    }
    mirror.resync(db, names=["t"])
    after = {
        name
        for (name,) in mirror._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
    }
    # The reload path recreates both the canonical unique index and any
    # requested secondary indexes.
    assert before <= after
    assert any("t" in name for name in after)
