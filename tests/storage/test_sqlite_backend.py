"""Unit + randomized tests for the SQLite compilation backend."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.expr import (
    DupElim,
    Literal,
    Monus,
    Product,
    Project,
    Select,
    UnionAll,
    except_expr,
    min_expr,
    table,
)
from repro.algebra.predicates import And, Comparison, Not, Or, TruePredicate, attr, const
from repro.algebra.schema import Schema
from repro.errors import SchemaError, UnknownTableError
from repro.storage.database import Database
from repro.storage.sqlite_backend import SQLiteBackend
from repro.workloads.randgen import RandomExpressionGenerator

R = table("R", ["a", "b"])
W = table("W", ["x"])


@pytest.fixture
def db():
    database = Database()
    database.create_table("R", ["a", "b"], rows=[(1, 10), (1, 10), (2, 20)])
    database.create_table("W", ["x"], rows=[(1,), (2,), (2,)])
    return database


@pytest.fixture
def backend(db):
    with SQLiteBackend() as be:
        be.sync_from(db)
        yield be


class TestOperators:
    def test_scan(self, backend, db):
        assert backend.evaluate(R) == db["R"]

    def test_literal(self, backend):
        lit = Literal(Bag([(1, "x"), (1, "x")]), Schema(["a", "b"]))
        assert backend.evaluate(lit) == lit.bag

    def test_empty_literal(self, backend):
        lit = Literal(Bag.empty(), Schema(["a"]))
        assert backend.evaluate(lit) == Bag.empty()

    def test_select(self, backend):
        expr = Select(Comparison("=", attr("a"), const(1)), R)
        assert backend.evaluate(expr) == Bag([(1, 10), (1, 10)])

    def test_project_sums_multiplicities(self, backend):
        expr = Project(("a",), R)
        assert backend.evaluate(expr) == Bag([(1,), (1,), (2,)])

    def test_dedup(self, backend):
        assert backend.evaluate(DupElim(R)) == Bag([(1, 10), (2, 20)])

    def test_union_all(self, backend):
        assert backend.evaluate(UnionAll(W, W)) == Bag([(1,), (1,), (2,), (2,), (2,), (2,)])

    def test_monus(self, backend):
        expr = Monus(W, Literal(Bag([(2,)]), Schema(["x"])))
        assert backend.evaluate(expr) == Bag([(1,), (2,)])

    def test_monus_floors_at_zero(self, backend):
        expr = Monus(W, Literal(Bag([(1,), (1,), (1,)]), Schema(["x"])))
        assert backend.evaluate(expr) == Bag([(2,), (2,)])

    def test_product(self, backend):
        result = backend.evaluate(Product(W, W))
        assert len(result) == 9
        assert result.multiplicity((2, 2)) == 4

    def test_min_and_except_compositions(self, backend, db):
        other = Literal(Bag([(2,), (3,)]), Schema(["x"]))
        assert backend.evaluate(min_expr(W, other)) == db.evaluate(min_expr(W, other))
        assert backend.evaluate(except_expr(W, other)) == db.evaluate(except_expr(W, other))


class TestPredicates:
    def test_string_quoting(self, db):
        db.create_table("T", ["s"], rows=[("o'hare",), ("plain",)])
        with SQLiteBackend() as be:
            be.sync_from(db)
            expr = Select(Comparison("=", attr("s"), const("o'hare")), db.ref("T"))
            assert be.evaluate(expr) == Bag([("o'hare",)])

    def test_null_comparison_filtered(self, db):
        db.create_table("N", ["v"], rows=[(None,), (1,)])
        with SQLiteBackend() as be:
            be.sync_from(db)
            expr = Select(Comparison("=", attr("v"), const(1)), db.ref("N"))
            assert be.evaluate(expr) == Bag([(1,)])

    def test_not_of_null_comparison_matches_memory(self, db):
        db.create_table("N", ["v"], rows=[(None,), (1,), (2,)])
        expr = Select(Not(Comparison("=", attr("v"), const(1))), db.ref("N"))
        with SQLiteBackend() as be:
            be.sync_from(db)
            assert be.evaluate(expr) == db.evaluate(expr)

    def test_connectives(self, backend, db):
        predicate = Or(
            And(Comparison(">", attr("a"), const(0)), Comparison("<", attr("b"), const(15))),
            Not(TruePredicate()),
        )
        expr = Select(predicate, R)
        assert backend.evaluate(expr) == db.evaluate(expr)


class TestMirror:
    def test_sync_updates_existing_tables(self, db, backend):
        db.set_table("W", Bag([(9,)]))
        backend.sync_from(db)
        assert backend.evaluate(W) == Bag([(9,)])

    def test_load_unknown_table(self, backend):
        with pytest.raises(UnknownTableError):
            backend.load("nope", Bag([(1,)]))

    def test_duplicate_create(self, backend):
        with pytest.raises(SchemaError):
            backend.create_table("R", ["a", "b"])

    def test_cross_check_helper(self, db, backend):
        assert backend.cross_check(db, Project(("a",), R))

    def test_internal_table_names_are_quoted(self, db):
        db.create_table("__mv__V", ["x"], rows=[(1,)], internal=True)
        with SQLiteBackend() as be:
            be.sync_from(db)
            assert be.evaluate(db.ref("__mv__V")) == Bag([(1,)])


@pytest.mark.parametrize("seed", range(40))
def test_randomized_cross_check(seed):
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    query = generator.query(db, depth=4)
    with SQLiteBackend() as be:
        be.sync_from(db)
        assert be.evaluate(query) == db.evaluate(query)
