"""Unit tests for the lock ledger (downtime accounting)."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import table
from repro.storage.locks import LockLedger


class TestLedger:
    def test_records_wall_time(self):
        ledger = LockLedger()
        with ledger.exclusive("MV"):
            pass
        assert ledger.section_count("MV") == 1
        assert ledger.downtime_seconds("MV") >= 0.0

    def test_records_counter_delta(self):
        ledger = LockLedger()
        counter = CostCounter()
        state = {"R": Bag([(1,), (2,)])}
        with ledger.exclusive("MV", counter=counter):
            evaluate(table("R", ["a"]), state, counter=counter)
        assert ledger.downtime_tuple_ops("MV") == 2

    def test_sections_accumulate(self):
        ledger = LockLedger()
        with ledger.exclusive("MV"):
            pass
        with ledger.exclusive("MV"):
            pass
        assert ledger.section_count("MV") == 2

    def test_resources_are_separate(self):
        ledger = LockLedger()
        with ledger.exclusive("A"):
            pass
        assert ledger.section_count("B") == 0
        assert ledger.downtime_seconds("B") == 0.0

    def test_label_recorded(self):
        ledger = LockLedger()
        with ledger.exclusive("MV", label="refresh"):
            pass
        assert ledger.sections[0].label == "refresh"

    def test_section_recorded_even_on_exception(self):
        ledger = LockLedger()
        with pytest.raises(RuntimeError):
            with ledger.exclusive("MV"):
                raise RuntimeError("boom")
        assert ledger.section_count("MV") == 1

    def test_max_section(self):
        ledger = LockLedger()
        counter = CostCounter()
        state = {"R": Bag([(1,)] * 5)}
        with ledger.exclusive("MV", counter=counter):
            evaluate(table("R", ["a"]), state, counter=counter)
        with ledger.exclusive("MV", counter=counter):
            pass
        assert ledger.max_section_tuple_ops("MV") == 5
        assert ledger.max_section_seconds("MV") >= 0.0

    def test_max_of_empty_resource_is_zero(self):
        ledger = LockLedger()
        assert ledger.max_section_seconds("MV") == 0.0
        assert ledger.max_section_tuple_ops("MV") == 0

    def test_reset(self):
        ledger = LockLedger()
        with ledger.exclusive("MV"):
            pass
        ledger.reset()
        assert ledger.section_count("MV") == 0


class TestNestedSections:
    """Nested critical sections: each level accounts its own span.

    A refresh can take the view lock and then run ``Database.apply``
    under an inner section (e.g. per-table index maintenance); the
    ledger must keep both levels' accounting consistent.
    """

    def test_inner_section_recorded_before_outer(self):
        ledger = LockLedger()
        with ledger.exclusive("MV", label="refresh"):
            with ledger.exclusive("MV", label="apply"):
                pass
        assert [section.label for section in ledger.sections] == ["apply", "refresh"]
        assert ledger.section_count("MV") == 2

    def test_counter_ops_attributed_to_both_levels(self):
        ledger = LockLedger()
        counter = CostCounter()
        state = {"R": Bag([(1,), (2,), (3,)])}
        with ledger.exclusive("MV", counter=counter):
            evaluate(table("R", ["a"]), state, counter=counter)
            with ledger.exclusive("MV", counter=counter):
                evaluate(table("R", ["a"]), state, counter=counter)
        inner, outer = ledger.sections
        assert inner.tuple_ops == 3          # only the inner evaluation
        assert outer.tuple_ops == 6          # the outer span covers both
        assert ledger.downtime_tuple_ops("MV") == 9

    def test_nested_sections_on_different_resources(self):
        ledger = LockLedger()
        counter = CostCounter()
        state = {"R": Bag([(1,)] * 4)}
        with ledger.exclusive("MV", counter=counter):
            with ledger.exclusive("log", counter=counter):
                evaluate(table("R", ["a"]), state, counter=counter)
        assert ledger.downtime_tuple_ops("MV") == 4
        assert ledger.downtime_tuple_ops("log") == 4
        assert ledger.max_section_tuple_ops("MV") == 4

    def test_outer_wall_time_covers_inner(self):
        ledger = LockLedger()
        with ledger.exclusive("MV", label="outer"):
            with ledger.exclusive("MV", label="inner"):
                pass
        inner, outer = ledger.sections
        assert outer.wall_seconds >= inner.wall_seconds

    def test_exception_inside_nested_sections_records_both(self):
        ledger = LockLedger()
        with pytest.raises(RuntimeError):
            with ledger.exclusive("MV", label="outer"):
                with ledger.exclusive("MV", label="inner"):
                    raise RuntimeError("boom")
        assert [section.label for section in ledger.sections] == ["inner", "outer"]
