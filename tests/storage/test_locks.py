"""Unit tests for the lock ledger (downtime accounting)."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import table
from repro.storage.locks import LockLedger


class TestLedger:
    def test_records_wall_time(self):
        ledger = LockLedger()
        with ledger.exclusive("MV"):
            pass
        assert ledger.section_count("MV") == 1
        assert ledger.downtime_seconds("MV") >= 0.0

    def test_records_counter_delta(self):
        ledger = LockLedger()
        counter = CostCounter()
        state = {"R": Bag([(1,), (2,)])}
        with ledger.exclusive("MV", counter=counter):
            evaluate(table("R", ["a"]), state, counter=counter)
        assert ledger.downtime_tuple_ops("MV") == 2

    def test_sections_accumulate(self):
        ledger = LockLedger()
        with ledger.exclusive("MV"):
            pass
        with ledger.exclusive("MV"):
            pass
        assert ledger.section_count("MV") == 2

    def test_resources_are_separate(self):
        ledger = LockLedger()
        with ledger.exclusive("A"):
            pass
        assert ledger.section_count("B") == 0
        assert ledger.downtime_seconds("B") == 0.0

    def test_label_recorded(self):
        ledger = LockLedger()
        with ledger.exclusive("MV", label="refresh"):
            pass
        assert ledger.sections[0].label == "refresh"

    def test_section_recorded_even_on_exception(self):
        ledger = LockLedger()
        with pytest.raises(RuntimeError):
            with ledger.exclusive("MV"):
                raise RuntimeError("boom")
        assert ledger.section_count("MV") == 1

    def test_max_section(self):
        ledger = LockLedger()
        counter = CostCounter()
        state = {"R": Bag([(1,)] * 5)}
        with ledger.exclusive("MV", counter=counter):
            evaluate(table("R", ["a"]), state, counter=counter)
        with ledger.exclusive("MV", counter=counter):
            pass
        assert ledger.max_section_tuple_ops("MV") == 5
        assert ledger.max_section_seconds("MV") >= 0.0

    def test_max_of_empty_resource_is_zero(self):
        ledger = LockLedger()
        assert ledger.max_section_seconds("MV") == 0.0
        assert ledger.max_section_tuple_ops("MV") == 0

    def test_reset(self):
        ledger = LockLedger()
        with ledger.exclusive("MV"):
            pass
        ledger.reset()
        assert ledger.section_count("MV") == 0
