"""Atomic snapshot writes and the retry-with-backoff helper."""

import sqlite3

import pytest

from repro.robustness.faults import INJECTOR, InjectedCrash
from repro.storage.database import Database
from repro.storage.persistence import load_database, save_database, staging_path, with_retry


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


@pytest.fixture
def db():
    database = Database()
    database.create_table("R", ["a"], rows=[(1,), (2,)])
    return database


class TestWithRetry:
    def test_passes_through_result(self):
        assert with_retry(lambda: 42) == 42

    def test_retries_locked_errors_with_exponential_backoff(self):
        delays = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 4:
                raise sqlite3.OperationalError("database is locked")
            return "done"

        assert with_retry(flaky, base_delay=0.01, sleep=delays.append) == "done"
        # Exponential base with bounded jitter: base * 2**k, stretched
        # by at most the policy's jitter fraction (decorrelates a herd
        # of writers retrying against one locked file).
        assert len(delays) == 3
        for attempt, delay in enumerate(delays):
            floor = 0.01 * 2**attempt
            assert floor <= delay <= floor * 1.25, delays

    def test_gives_up_after_attempts(self):
        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError, match="locked"):
            with_retry(always_locked, attempts=3, sleep=lambda _s: None)

    def test_non_transient_operational_errors_propagate_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise sqlite3.OperationalError("no such table: x")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            with_retry(broken, sleep=lambda _s: None)
        assert len(attempts) == 1

    def test_other_exceptions_propagate(self):
        with pytest.raises(ValueError):
            with_retry(lambda: (_ for _ in ()).throw(ValueError("nope")), sleep=lambda _s: None)


class TestAtomicSave:
    def test_staging_path_is_a_sibling(self, tmp_path):
        assert staging_path(tmp_path / "wh.db") == tmp_path / "wh.db.saving"

    def test_crash_before_replace_keeps_old_snapshot(self, db, tmp_path):
        path = tmp_path / "wh.db"
        save_database(db, path)
        db.load("R", [(3,)])
        INJECTOR.arm("crash-mid-checkpoint")
        with pytest.raises(InjectedCrash):
            save_database(db, path)
        INJECTOR.reset()
        # The visible file is still *exactly* the previous snapshot; the
        # half-finished write only ever touched the staging file.
        from repro.algebra.bag import Bag

        assert load_database(path)["R"] == Bag([(1,), (2,)])
        assert staging_path(path).exists()

    def test_interrupted_save_can_be_repeated(self, db, tmp_path):
        path = tmp_path / "wh.db"
        INJECTOR.arm("crash-mid-checkpoint")
        with pytest.raises(InjectedCrash):
            save_database(db, path)
        INJECTOR.reset()
        save_database(db, path)  # stale staging file is overwritten
        assert load_database(path).snapshot() == db.snapshot()
        assert not staging_path(path).exists()

    def test_transient_save_failures_are_retried(self, db, tmp_path):
        path = tmp_path / "wh.db"
        INJECTOR.arm_transient("flaky-save", times=2)
        save_database(db, path)  # two locked errors, then success
        assert not INJECTOR.armed()
        assert load_database(path).snapshot() == db.snapshot()

    def test_load_records_durable_origin(self, db, tmp_path):
        path = tmp_path / "wh.db"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.durable_origin == path
        assert not loaded.journaled
