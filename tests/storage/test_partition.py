"""PartitionedDatabase: specs, slices, restricted reads, fast applies."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.errors import SchemaError, UnknownTableError
from repro.robustness.faults import INJECTOR, InjectedCrash
from repro.storage.partition import PartitionedDatabase, PartitionSpec, stable_key_hash


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


def make_db(mode="compiled", *, parts=4):
    db = PartitionedDatabase(exec_mode=mode)
    db.create_table("R", ["k", "v"], rows=[(i, f"v{i}") for i in range(10)])
    db.declare_partitioning("R", "k", parts=parts, domain="k")
    return db


class TestPartitionSpec:
    def test_hash_routing_is_stable_and_in_range(self):
        spec = PartitionSpec("R", "k", 0, 8)
        for value in (0, 17, "alice", None, (1, 2)):
            pid = spec.partition_of(value)
            assert 0 <= pid < 8
            assert pid == spec.partition_of(value)  # deterministic

    def test_string_hash_is_process_stable(self):
        # crc32-based, not the per-process salted builtin hash.
        assert stable_key_hash("customer-7") == 42760520

    def test_range_scheme_uses_bounds(self):
        spec = PartitionSpec("R", "k", 0, 0, scheme="range", bounds=(10, 20))
        assert spec.parts == 3
        assert spec.partition_of(5) == 0
        assert spec.partition_of(10) == 0  # (-inf, 10]
        assert spec.partition_of(11) == 1
        assert spec.partition_of(99) == 2

    def test_range_bounds_must_be_sorted(self):
        with pytest.raises(SchemaError, match="sorted"):
            PartitionSpec("R", "k", 0, 0, scheme="range", bounds=(20, 10))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SchemaError, match="scheme"):
            PartitionSpec("R", "k", 0, 4, scheme="radix")

    def test_co_partitioned_needs_same_layout_and_domain(self):
        a = PartitionSpec("R", "k", 0, 4, domain="k")
        b = PartitionSpec("S", "rk", 1, 4, domain="k")
        c = PartitionSpec("T", "k", 0, 8, domain="k")
        d = PartitionSpec("U", "k", 0, 4, domain="other")
        assert a.co_partitioned(b)
        assert not a.co_partitioned(c)  # part count drifted
        assert not a.co_partitioned(d)  # different domain


class TestDeclarePartitioning:
    def test_slices_cover_existing_rows(self):
        db = make_db()
        assert sum(db.partition_sizes("R")) == 10
        union = Bag.empty()
        for pid in range(4):
            union = union.union_all(db.partition_slice("R", pid))
        assert union == db["R"]

    def test_redeclare_identical_is_idempotent(self):
        db = make_db()
        spec = db.partition_spec("R")
        assert db.declare_partitioning("R", "k", parts=4, domain="k") is spec

    def test_redeclare_different_layout_rejected(self):
        db = make_db()
        with pytest.raises(SchemaError, match="partitioned differently"):
            db.declare_partitioning("R", "k", parts=8)

    def test_unknown_table_rejected(self):
        db = PartitionedDatabase()
        with pytest.raises(UnknownTableError):
            db.declare_partitioning("missing", "k")

    def test_generic_writes_keep_slices_in_sync(self):
        db = make_db()
        db.set_table("R", Bag([(1, "x"), (5, "y"), (5, "y")]))
        assert sum(db.partition_sizes("R")) == 2  # distinct rows
        union = Bag.empty()
        for pid in range(4):
            union = union.union_all(db.partition_slice("R", pid))
        assert union == Bag([(1, "x"), (5, "y"), (5, "y")])


class TestAffectedKeysAndRestrict:
    def test_affected_keys_project_the_key_column(self):
        db = make_db()
        keys = db.affected_keys({"R": Bag([(3, "v3"), (7, "zzz"), (3, "other")])})
        assert keys == {"k": {3, 7}}

    def test_restrict_returns_exactly_matching_rows(self):
        db = make_db()
        counter = CostCounter()
        bag = db.restrict("R", [3, 7, 99], counter=counter)
        assert bag == Bag([(3, "v3"), (7, "v7")])
        assert counter.index_probes >= 3

    def test_restrict_accepts_generators(self):
        db = make_db()
        assert db.restrict("R", (k for k in (1, 2))) == Bag([(1, "v1"), (2, "v2")])

    def test_restrict_empty_keys(self):
        db = make_db()
        assert db.restrict("R", []) == Bag.empty()

    @pytest.mark.parametrize("mode", ["compiled", "sqlite"])
    def test_restrict_preserves_duplicates(self, mode):
        db = PartitionedDatabase(exec_mode=mode)
        db.create_table("R", ["k", "v"], rows=[(1, "a"), (1, "a"), (2, "b")])
        db.declare_partitioning("R", "k", parts=4)
        assert db.restrict("R", [1]) == Bag([(1, "a"), (1, "a")])

    def test_sqlite_restrict_pushes_down(self):
        db = make_db("sqlite")
        counter = CostCounter()
        db.evaluate(__import__("repro.algebra.expr", fromlist=["TableRef"]).TableRef(
            "R", db.schema_of("R")))  # warm the mirror
        bag = db.restrict("R", [3, 7], counter=counter)
        assert bag == Bag([(3, "v3"), (7, "v7")])
        assert counter.by_operator.get("pushdown", 0) > 0

    def test_sqlite_restrict_with_null_key_falls_back_correctly(self):
        # SQL `IN` never matches NULL; the lookup must detect that and
        # serve the restriction from the in-memory index instead.
        db = PartitionedDatabase(exec_mode="sqlite")
        db.create_table("R", ["k", "v"], rows=[(None, "n"), (1, "a")])
        db.declare_partitioning("R", "k", parts=4)
        assert db.restrict("R", [None]) == Bag([(None, "n")])

    def test_affected_partitions(self):
        db = make_db()
        spec = db.partition_spec("R")
        assert db.affected_partitions("R", [3, 7]) == {
            spec.partition_of(3),
            spec.partition_of(7),
        }


class TestApplyParts:
    def test_patch_semantics_match_generic_apply(self):
        db = make_db()
        delete = Bag([(3, "v3")])
        insert = Bag([(3, "new3"), (11, "v11")])
        touched = db.apply_parts({"R": (delete, insert)})
        expected = Bag([(i, f"v{i}") for i in range(10) if i != 3]).union_all(insert)
        assert db["R"] == expected
        spec = db.partition_spec("R")
        assert touched["R"] == {spec.partition_of(3), spec.partition_of(11)}

    def test_over_delete_floors_at_zero(self):
        db = make_db()
        db.apply_parts({"R": (Bag([(3, "v3"), (3, "v3"), (3, "v3")]), Bag.empty())})
        assert (3, "v3") not in db["R"].support
        assert len(db["R"]) == 9

    def test_clears_install_in_same_epoch(self):
        db = make_db()
        db.create_table("log", ["k", "v"], rows=[(1, "pending")])
        db.apply_parts({"R": (Bag.empty(), Bag([(20, "v20")]))},
                       clears={"log": Bag.empty()})
        assert not db["log"]
        assert (20, "v20") in db["R"].support

    def test_unpartitioned_target_rejected(self):
        db = make_db()
        db.create_table("flat", ["x"], rows=[(1,)])
        with pytest.raises(UnknownTableError, match="not partitioned"):
            db.apply_parts({"flat": (Bag.empty(), Bag.empty())})

    def test_counter_records_partitions(self):
        db = make_db()
        counter = CostCounter()
        db.apply_parts({"R": (Bag.empty(), Bag([(0, "x"), (1, "y")]))}, counter=counter)
        assert counter.partitions_touched == 2

    def test_crash_between_partitions_rolls_back_completely(self):
        db = make_db(parts=8)
        db.create_table("log", ["k", "v"], rows=[(1, "pending")])
        before = db["R"]
        version = db.version_of("R")
        # A delta spanning many partitions guarantees the between-
        # partitions fault point is visited.
        delete = Bag([(i, f"v{i}") for i in range(8)])
        INJECTOR.arm("crash-mid-partition-apply")
        with pytest.raises(InjectedCrash):
            db.apply_parts({"R": (delete, Bag([(50, "new")]))},
                           clears={"log": Bag.empty()})
        assert db["R"] == before
        assert db["log"] == Bag([(1, "pending")])
        assert db.version_of("R") == version
        # The rolled-back database is fully usable afterwards.
        db.apply_parts({"R": (Bag.empty(), Bag([(60, "v60")]))})
        assert (60, "v60") in db["R"].support

    def test_crash_rollback_restores_sqlite_mirror(self):
        db = make_db("sqlite", parts=8)
        from repro.algebra.expr import TableRef

        scan = TableRef("R", db.schema_of("R"))
        before = db.evaluate(scan)
        INJECTOR.arm("crash-mid-partition-apply")
        with pytest.raises(InjectedCrash):
            db.apply_parts({"R": (Bag([(i, f"v{i}") for i in range(8)]), Bag.empty())})
        assert db.evaluate(scan) == before


class TestKeyMigration:
    def test_row_moves_between_partitions(self):
        db = make_db()
        spec = db.partition_spec("R")
        old_pid = spec.partition_of(1)
        new_pid = spec.partition_of(42)
        assert old_pid != new_pid or spec.parts == 1
        db.apply_parts({"R": (Bag([(1, "v1")]), Bag([(42, "v1")]))})
        assert (1, "v1") not in db["R"].support
        assert (42, "v1") in db["R"].support
        assert (42, "v1") in db.partition_slice("R", new_pid).support
