"""LockLedger edge cases: re-entrancy, mid-section reset, no counter."""

import pytest

from repro.algebra.evaluation import CostCounter
from repro.storage.locks import LockLedger


class TestReentrancy:
    def test_nested_exclusive_same_resource_records_both_sections(self):
        ledger = LockLedger()
        with ledger.exclusive("__mv__V", label="outer"):
            with ledger.exclusive("__mv__V", label="inner"):
                pass
        assert ledger.section_count("__mv__V") == 2
        # Inner section completes (and is recorded) first.
        assert [s.label for s in ledger.sections] == ["inner", "outer"]

    def test_nested_sections_share_counter_growth(self):
        counter = CostCounter()
        ledger = LockLedger()
        with ledger.exclusive("__mv__V", label="outer", counter=counter):
            counter.tuples_out += 3
            with ledger.exclusive("__mv__V", label="inner", counter=counter):
                counter.tuples_out += 5
        by_label = {s.label: s.tuple_ops for s in ledger.sections}
        assert by_label == {"inner": 5, "outer": 8}

    def test_nested_distinct_resources(self):
        ledger = LockLedger()
        with ledger.exclusive("__mv__A"):
            with ledger.exclusive("__mv__B"):
                pass
        assert ledger.section_count("__mv__A") == 1
        assert ledger.section_count("__mv__B") == 1


class TestResetMidSection:
    def test_reset_inside_section_keeps_later_close_consistent(self):
        ledger = LockLedger()
        with ledger.exclusive("__mv__V", label="first"):
            pass
        with ledger.exclusive("__mv__V", label="second"):
            ledger.reset()  # drops 'first' and anything recorded so far
        # The in-flight section still closes and records itself.
        assert [s.label for s in ledger.sections] == ["second"]
        assert ledger.section_count("__mv__V") == 1

    def test_reset_clears_aggregates(self):
        ledger = LockLedger()
        with ledger.exclusive("__mv__V"):
            pass
        ledger.reset()
        assert ledger.downtime_seconds("__mv__V") == 0.0
        assert ledger.downtime_tuple_ops("__mv__V") == 0
        assert ledger.max_section_seconds("__mv__V") == 0.0
        assert ledger.max_section_tuple_ops("__mv__V") == 0
        assert ledger.section_count("__mv__V") == 0


class TestNoCounter:
    def test_counter_none_records_zero_ops(self):
        ledger = LockLedger()
        with ledger.exclusive("__mv__V", counter=None):
            pass
        (section,) = ledger.sections
        assert section.tuple_ops == 0
        assert section.wall_seconds >= 0.0

    def test_mixed_counter_and_none_sections(self):
        counter = CostCounter()
        ledger = LockLedger()
        with ledger.exclusive("__mv__V", label="counted", counter=counter):
            counter.tuples_out += 7
        with ledger.exclusive("__mv__V", label="uncounted", counter=None):
            pass
        by_label = {s.label: s.tuple_ops for s in ledger.sections}
        assert by_label == {"counted": 7, "uncounted": 0}
        assert ledger.downtime_tuple_ops("__mv__V") == 7


class TestExceptions:
    def test_section_recorded_when_body_raises(self):
        ledger = LockLedger()
        with pytest.raises(RuntimeError):
            with ledger.exclusive("__mv__V", label="boom"):
                raise RuntimeError("body failed")
        assert [s.label for s in ledger.sections] == ["boom"]

    def test_sanitizer_lock_released_on_exception(self):
        from repro import obs

        with obs.observed(sanitizer=True) as stack:
            ledger = LockLedger()
            with pytest.raises(RuntimeError):
                with ledger.exclusive("__mv__V"):
                    assert "__mv__V" in stack.sanitizer.held_locks()
                    raise RuntimeError("body failed")
            assert "__mv__V" not in stack.sanitizer.held_locks()
