"""Unit tests for database states and transaction execution."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Monus, UnionAll, singleton
from repro.algebra.schema import Schema
from repro.errors import SchemaError, TransactionError, UnknownTableError
from repro.storage.database import Database


@pytest.fixture
def db():
    database = Database()
    database.create_table("R", ["a"], rows=[(1,), (2,)])
    database.create_table("S", ["b"], rows=[(10,)])
    database.create_table("hidden", ["h"], internal=True)
    return database


class TestCatalog:
    def test_create_and_read(self, db):
        assert db["R"] == Bag([(1,), (2,)])

    def test_schema_of(self, db):
        assert db.schema_of("R") == Schema(["a"])

    def test_duplicate_create_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table("R", ["x"])

    def test_initial_rows_arity_checked(self):
        database = Database()
        with pytest.raises(SchemaError):
            database.create_table("T", ["a"], rows=[(1, 2)])

    def test_drop(self, db):
        db.drop_table("R")
        assert not db.has_table("R")
        with pytest.raises(UnknownTableError):
            db["R"]

    def test_internal_partition(self, db):
        assert db.is_internal("hidden")
        assert not db.is_internal("R")
        assert set(db.external_tables()) == {"R", "S"}
        assert db.internal_tables() == ("hidden",)

    def test_ref(self, db):
        ref = db.ref("R")
        assert ref.name == "R"
        assert ref.table_schema == Schema(["a"])

    def test_unknown_table_errors(self, db):
        with pytest.raises(UnknownTableError):
            db.ref("nope")
        with pytest.raises(UnknownTableError):
            db.schema_of("nope")

    def test_total_rows(self, db):
        assert db.total_rows() == 3


class TestMutation:
    def test_load_appends(self, db):
        db.load("R", [(3,), (1,)])
        assert db["R"] == Bag([(1,), (1,), (2,), (3,)])

    def test_set_table(self, db):
        db.set_table("R", Bag([(9,)]))
        assert db["R"] == Bag([(9,)])

    def test_set_table_arity_checked(self, db):
        with pytest.raises(SchemaError):
            db.set_table("R", Bag([(1, 2)]))


class TestApply:
    def test_simple_assignment(self, db):
        db.apply({"R": singleton((7,), Schema(["a"]))})
        assert db["R"] == Bag([(7,)])

    def test_simultaneous_swap(self, db):
        # Both RHS read the pre-transaction state: a swap must work.
        db.apply({"R": db.ref("S"), "S": db.ref("R")})
        assert db["R"] == Bag([(10,)])
        assert db["S"] == Bag([(1,), (2,)])

    def test_incremental_form(self, db):
        ref = db.ref("R")
        delete = singleton((1,), Schema(["a"]))
        insert = singleton((5,), Schema(["a"]))
        db.apply({"R": UnionAll(Monus(ref, delete), insert)})
        assert db["R"] == Bag([(2,), (5,)])

    def test_restrict_to_external(self, db):
        with pytest.raises(TransactionError):
            db.apply({"hidden": singleton((1,), Schema(["h"]))}, restrict_to_external=True)

    def test_assignment_arity_checked(self, db):
        with pytest.raises(SchemaError):
            db.apply({"R": db.ref("hidden").product(db.ref("hidden"))})

    def test_failed_transaction_changes_nothing(self, db):
        before = db.snapshot()
        with pytest.raises(SchemaError):
            db.apply({"S": singleton((5,), Schema(["b"])), "R": db.ref("R").product(db.ref("R"))})
        assert db.snapshot() == before

    def test_memo_shared_across_assignments(self):
        # The interpreted engine shares one memo across a transaction's
        # right-hand sides (the compiled engine fuses projection chains
        # into per-plan pipelines instead, so its scan charges differ).
        db = Database(exec_mode="interpreted")
        db.create_table("R", ["a"], rows=[(1,), (2,)])
        db.create_table("S", ["b"], rows=[(10,)])
        counter = CostCounter()
        shared = db.ref("R").project(["a"])
        db.apply({"R": shared, "S": shared.project(["a"], ["b"])}, counter=counter)
        assert counter.by_operator["scan"] == 2  # R scanned once, not twice

    def test_unknown_target_rejected(self, db):
        with pytest.raises(UnknownTableError):
            db.apply({"nope": singleton((1,), Schema(["x"]))})


class TestSnapshots:
    def test_snapshot_restore(self, db):
        snap = db.snapshot()
        db.apply({"R": singleton((0,), Schema(["a"]))})
        db.restore(snap)
        assert db["R"] == Bag([(1,), (2,)])

    def test_restore_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.restore({"nope": Bag([(1,)])})

    def test_clone_is_independent(self, db):
        clone = db.clone()
        db.apply({"R": singleton((0,), Schema(["a"]))})
        assert clone["R"] == Bag([(1,), (2,)])
        assert clone.is_internal("hidden")

    def test_repr(self, db):
        assert "R[2]" in repr(db)
