"""Regression tests: ``Database.apply`` is all-or-nothing.

A failure anywhere in the commit phase — index maintenance blowing up,
an injected crash between table installs — must leave tables, version
stamps, and maintained indexes exactly as they were before the
transaction (satellite of the crash-safety PR; ``Database._install``).
"""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.expr import Literal, empty
from repro.algebra.schema import Schema
from repro.errors import SchemaError, TransactionError
from repro.robustness.faults import INJECTOR, InjectedCrash
from repro.storage.database import Database


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


@pytest.fixture
def db():
    db = Database()
    db.create_table("R", ("a", "b"), rows=[(1, 10), (2, 20)])
    db.create_table("S", ("c",), rows=[(7,)])
    return db


def literal(rows, attrs):
    return Literal(Bag(rows), Schema(attrs))


def state_fingerprint(db: Database):
    return (
        {name: db[name] for name in db.table_names()},
        {name: db.version_of(name) for name in db.table_names()},
    )


class TestEvaluationFailures:
    def test_bad_assignment_arity_changes_nothing(self, db):
        before = state_fingerprint(db)
        with pytest.raises(SchemaError):
            db.apply({"R": db.ref("S")})  # arity 1 into arity-2 table
        assert state_fingerprint(db) == before

    def test_overlapping_assignment_and_patch_rejected_upfront(self, db):
        before = state_fingerprint(db)
        with pytest.raises(TransactionError):
            db.apply({"R": db.ref("R")}, patches={"R": (db.ref("R"), db.ref("R"))})
        assert state_fingerprint(db) == before


class TestCommitPhaseCrash:
    def test_crash_between_installs_rolls_back_all_tables(self, db):
        before = state_fingerprint(db)
        # Multi-table simultaneous transaction; die on the *second* install,
        # after the first table has already been swapped in.
        INJECTOR.arm("crash-mid-apply", hit=2)
        with pytest.raises(InjectedCrash):
            db.apply({
                "R": db.ref("R").union_all(literal([(3, 30)], ["a", "b"])),
                "S": db.ref("S").union_all(literal([(8,)], ["c"])),
            })
        assert state_fingerprint(db) == before

    def test_crash_rolls_back_patches_and_indexes(self, db):
        index = db.indexes.get("R", (0,), db["R"])
        lookup_before = dict(index.lookup((1,)))
        before = state_fingerprint(db)
        INJECTOR.arm("crash-mid-apply", hit=2)
        with pytest.raises(InjectedCrash):
            db.apply(patches={
                "R": (empty(Schema(["a", "b"])), literal([(1, 11)], ["a", "b"])),
                "S": (empty(Schema(["c"])), literal([(9,)], ["c"])),  # never reached
            })
        assert state_fingerprint(db) == before
        # The maintained index answers from the restored (rebuilt) value.
        assert dict(db.indexes.get("R", (0,), db["R"]).lookup((1,))) == lookup_before

    def test_version_stamps_restored_so_cached_plans_stay_valid(self, db):
        version = db.version_of("R")
        INJECTOR.arm("crash-mid-apply", hit=1)
        with pytest.raises(InjectedCrash):
            db.apply({"R": db.ref("R")})
        assert db.version_of("R") == version
        # A subsequent read through the engine sees the old value.
        assert db.evaluate(db.ref("R")) == Bag([(1, 10), (2, 20)])

    def test_successful_apply_still_works_after_rolled_back_one(self, db):
        patch = {"R": (empty(Schema(["a", "b"])), literal([(3, 30)], ["a", "b"]))}
        INJECTOR.arm("crash-mid-apply", hit=1)
        with pytest.raises(InjectedCrash):
            db.apply(patches=patch)
        INJECTOR.reset()
        db.apply(patches=patch)
        assert db["R"] == Bag([(1, 10), (2, 20), (3, 30)])
