"""Unit tests for static view analysis (self-maintainability)."""

import pytest

from repro.algebra.expr import DupElim, Monus, Project, Select, UnionAll
from repro.algebra.predicates import Comparison, attr, const
from repro.core.analysis import (
    is_select_project,
    is_self_maintainable,
    maintenance_footprint,
    relevant_tables,
)
from repro.core.scenarios import BaseLogScenario
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.storage.database import Database


@pytest.fixture
def db():
    database = Database()
    database.create_table("R", ["a", "b"], rows=[(1, 2), (3, 4)])
    database.create_table("S", ["b", "c"], rows=[(2, 9)])
    return database


def sp_view(db):
    query = Project(("a",), Select(Comparison(">", attr("a"), const(0)), db.ref("R")))
    return ViewDefinition("SP", query)


class TestIsSelectProject:
    def test_plain_table(self, db):
        assert is_select_project(db.ref("R"))

    def test_select_project_chain(self, db):
        assert is_select_project(sp_view(db).query)

    def test_join_is_not(self, db):
        assert not is_select_project(db.ref("R").product(db.ref("S")))

    def test_union_is_not(self, db):
        assert not is_select_project(UnionAll(db.ref("R"), db.ref("R")))

    def test_dupelim_is_not(self, db):
        assert not is_select_project(DupElim(db.ref("R")))


class TestFootprint:
    def test_sp_view_has_empty_footprint(self, db):
        view = sp_view(db)
        assert maintenance_footprint(view, db) == frozenset()
        assert is_self_maintainable(view, db)

    def test_join_view_reads_both_tables(self, db):
        view = ViewDefinition("J", db.ref("R").product(db.ref("S")))
        assert maintenance_footprint(view, db) == frozenset({"R", "S"})
        assert not is_self_maintainable(view, db)

    def test_monus_view_reads_operands(self, db):
        query = Monus(db.ref("R").project(["a"]), db.ref("S").project(["c"], ["a"]))
        view = ViewDefinition("M", query)
        assert maintenance_footprint(view, db) == frozenset({"R", "S"})

    def test_union_view_is_self_maintainable(self, db):
        # ⊎ of SP branches: deltas are unions of the branch deltas.
        query = UnionAll(db.ref("R").project(["a"]), db.ref("R").project(["b"], ["a"]))
        view = ViewDefinition("U", query)
        assert is_self_maintainable(view, db)

    def test_dupelim_breaks_self_maintenance(self, db):
        view = ViewDefinition("D", DupElim(db.ref("R")))
        assert maintenance_footprint(view, db) == frozenset({"R"})

    def test_footprint_matches_actual_refresh_reads(self, db):
        """The footprint is exactly what refresh scans: for an SP view,
        refresh cost must not grow with the base-table size."""
        view = sp_view(db)
        small = BaseLogScenario(db, view)
        small.install()
        small.execute(UserTransaction(db).insert("R", [(5, 6)]))
        before = small.counter.tuples_out
        small.refresh()
        small_cost = small.counter.tuples_out - before

        big_db = Database()
        big_db.create_table("R", ["a", "b"], rows=[(index, index) for index in range(1, 2000)])
        big_view = sp_view(big_db)
        big = BaseLogScenario(big_db, big_view)
        big.install()
        big.execute(UserTransaction(big_db).insert("R", [(5, 6)]))
        before = big.counter.tuples_out
        big.refresh()
        big_cost = big.counter.tuples_out - before
        assert big_cost <= small_cost * 2  # independent of |R|


class TestRelevantTables:
    def test_intersection(self, db):
        view = ViewDefinition("J", db.ref("R").product(db.ref("S")))
        assert relevant_tables(view, frozenset({"R", "other"})) == frozenset({"R"})

    def test_irrelevant_transaction(self, db):
        view = sp_view(db)
        assert relevant_tables(view, frozenset({"S"})) == frozenset()
