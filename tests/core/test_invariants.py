"""Unit tests for the Figure 1 invariants, including fault injection."""

import pytest

from repro.algebra.bag import Bag
from repro.core import invariants
from repro.core.scenarios import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
)
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import InvariantViolation
from repro.storage.database import Database


def make_db():
    db = Database()
    db.create_table("R", ["a"], rows=[(1,), (2,), (2,)])
    db.create_table("S", ["b"], rows=[(1,), (3,)])
    return db


def view_over(db):
    return ViewDefinition("V", db.ref("R").union_all(db.ref("S").project(["b"], ["a"])))


class TestRequire:
    def test_passes_silently(self):
        invariants.require(True, "fine")

    def test_raises_with_message(self):
        with pytest.raises(InvariantViolation, match="broken thing"):
            invariants.require(False, "broken thing")


class TestImmediateInvariant:
    def test_holds_after_install(self):
        db = make_db()
        view = view_over(db)
        ImmediateScenario(db, view).install()
        assert invariants.immediate_invariant(db, view)

    def test_fault_injection_detected(self):
        db = make_db()
        view = view_over(db)
        ImmediateScenario(db, view).install()
        db.set_table(view.mv_table, Bag([(99,)]))
        assert not invariants.immediate_invariant(db, view)


class TestBaseLogInvariant:
    def test_holds_through_updates(self):
        db = make_db()
        view = view_over(db)
        scenario = BaseLogScenario(db, view)
        scenario.install()
        scenario.execute(UserTransaction(db).insert("R", [(9,)]))
        assert invariants.base_log_invariant(db, view, scenario.log)
        # MV is intentionally stale: the immediate invariant must fail.
        assert not invariants.immediate_invariant(db, view)

    def test_fault_injection_on_log_detected(self):
        db = make_db()
        view = view_over(db)
        scenario = BaseLogScenario(db, view)
        scenario.install()
        scenario.execute(UserTransaction(db).insert("R", [(9,)]))
        db.set_table("__log_ins__V__R", Bag.empty())  # drop the recorded insert
        assert not invariants.base_log_invariant(db, view, scenario.log)

    def test_log_minimality_check(self):
        db = make_db()
        view = view_over(db)
        scenario = BaseLogScenario(db, view)
        scenario.install()
        assert invariants.log_minimality_invariant(db, scenario.log)
        db.set_table("__log_ins__V__R", Bag([(777,)]))  # not a subbag of R
        assert not invariants.log_minimality_invariant(db, scenario.log)


class TestDiffTableInvariant:
    def test_holds_through_updates(self):
        db = make_db()
        view = view_over(db)
        scenario = DiffTableScenario(db, view)
        scenario.install()
        scenario.execute(UserTransaction(db).insert("R", [(9,)]).delete("S", [(3,)]))
        assert invariants.diff_table_invariant(db, view)

    def test_fault_injection_detected(self):
        db = make_db()
        view = view_over(db)
        scenario = DiffTableScenario(db, view)
        scenario.install()
        scenario.execute(UserTransaction(db).insert("R", [(9,)]))
        db.set_table(view.dt_insert_table, Bag.empty())
        assert not invariants.diff_table_invariant(db, view)

    def test_dt_minimality(self):
        db = make_db()
        view = view_over(db)
        scenario = DiffTableScenario(db, view)
        scenario.install()
        assert invariants.dt_minimality_invariant(db, view)
        db.set_table(view.dt_delete_table, Bag([(404,)]))
        assert not invariants.dt_minimality_invariant(db, view)


class TestCombinedInvariant:
    def test_holds_through_mixed_operations(self):
        db = make_db()
        view = view_over(db)
        scenario = CombinedScenario(db, view)
        scenario.install()
        scenario.execute(UserTransaction(db).insert("R", [(9,)]))
        assert invariants.combined_invariant(db, view, scenario.log)
        scenario.propagate()
        assert invariants.combined_invariant(db, view, scenario.log)
        scenario.partial_refresh()
        assert invariants.combined_invariant(db, view, scenario.log)

    def test_fault_injection_detected(self):
        db = make_db()
        view = view_over(db)
        scenario = CombinedScenario(db, view)
        scenario.install()
        scenario.execute(UserTransaction(db).insert("R", [(9,)]))
        scenario.propagate()
        db.set_table(view.dt_insert_table, Bag.empty())
        assert not invariants.combined_invariant(db, view, scenario.log)
