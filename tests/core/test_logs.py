"""Unit tests for base-table logs (Section 2.3 / Lemma 4)."""

import pytest

from repro.algebra.bag import Bag
from repro.core.logs import Log
from repro.core.timetravel import past_query
from repro.core.transactions import UserTransaction
from repro.errors import TransactionError
from repro.storage.database import Database


@pytest.fixture
def db():
    database = Database()
    database.create_table("R", ["a"], rows=[(1,), (2,), (2,)])
    database.create_table("S", ["b"], rows=[(5,)])
    return database


@pytest.fixture
def log(db):
    tracked = Log(db, ["R", "S"], owner="V")
    tracked.install()
    return tracked


def run_through_log(db, log, txn):
    """Apply makesafe_BL-style: transaction plus log extension."""
    txn = txn.weakly_minimal()
    assignments = txn.assignments()
    assignments.update(log.extend_assignments(txn))
    db.apply(assignments)


class TestInstallation:
    def test_creates_internal_tables(self, db, log):
        assert db.has_table("__log_del__V__R")
        assert db.has_table("__log_ins__V__R")
        assert db.is_internal("__log_del__V__R")

    def test_owner_namespacing(self, db, log):
        other = Log(db, ["R"], owner="W")
        other.install()  # no collision with V's log
        assert db.has_table("__log_del__W__R")

    def test_initially_empty(self, log):
        assert log.is_empty()
        assert log.recorded_changes() == 0

    def test_tables_sorted(self, db):
        assert Log(db, ["S", "R"]).tables == ("R", "S")


class TestRecording:
    def test_insert_recorded(self, db, log):
        run_through_log(db, log, UserTransaction(db).insert("R", [(9,)]))
        assert db["__log_ins__V__R"] == Bag([(9,)])
        assert db["__log_del__V__R"] == Bag.empty()
        assert not log.is_empty()

    def test_delete_recorded(self, db, log):
        run_through_log(db, log, UserTransaction(db).delete("R", [(1,)]))
        assert db["__log_del__V__R"] == Bag([(1,)])

    def test_insert_then_delete_cancels(self, db, log):
        run_through_log(db, log, UserTransaction(db).insert("R", [(9,)]))
        run_through_log(db, log, UserTransaction(db).delete("R", [(9,)]))
        assert log.is_empty()

    def test_delete_then_reinsert_recorded_as_both(self, db, log):
        run_through_log(db, log, UserTransaction(db).delete("R", [(1,)]))
        run_through_log(db, log, UserTransaction(db).insert("R", [(1,)]))
        # Weakly minimal folding keeps both sides (strong minimality would cancel).
        assert db["__log_del__V__R"] == Bag([(1,)])
        assert db["__log_ins__V__R"] == Bag([(1,)])

    def test_recorded_changes_counts_both_sides(self, db, log):
        run_through_log(db, log, UserTransaction(db).insert("R", [(9,)]).delete("S", [(5,)]))
        assert log.recorded_changes() == 2

    def test_untracked_tables_ignored(self, db, log):
        db.create_table("other", ["x"])
        txn = UserTransaction(db).insert("other", [(1,)]).insert("R", [(9,)])
        assignments = log.extend_assignments(txn)
        assert "__log_ins__V__R" in assignments
        assert not any("other" in key for key in assignments)

    def test_strict_mode_rejects_untracked(self, db, log):
        db.create_table("other", ["x"])
        txn = UserTransaction(db).insert("other", [(1,)])
        with pytest.raises(TransactionError):
            log.extend_assignments(txn, strict=True)


class TestLogInvariants:
    def test_records_transition(self, db, log):
        """The defining property: PAST(L, R) recovers the old state."""
        old_r, old_s = db["R"], db["S"]
        for txn in (
            UserTransaction(db).insert("R", [(9,), (9,)]).delete("R", [(2,)]),
            UserTransaction(db).delete("S", [(5,)]).insert("S", [(6,)]),
            UserTransaction(db).insert("R", [(1,)]),
        ):
            run_through_log(db, log, txn)
        assert db.evaluate(past_query(db.ref("R"), log)) == old_r
        assert db.evaluate(past_query(db.ref("S"), log)) == old_s

    def test_weak_minimality_maintained(self, db, log):
        for txn in (
            UserTransaction(db).insert("R", [(9,)]),
            UserTransaction(db).delete("R", [(9,), (1,)]),
            UserTransaction(db).insert("R", [(1,), (1,)]).delete("R", [(2,)]),
        ):
            run_through_log(db, log, txn)
            assert log.is_weakly_minimal()

    def test_clear(self, db, log):
        run_through_log(db, log, UserTransaction(db).insert("R", [(9,)]))
        db.apply(log.clear_assignments())
        assert log.is_empty()

    def test_substitution_roles_reversed(self, db, log):
        """L̂ deletes what the log inserted and inserts what it deleted."""
        eta = log.substitution()
        assert eta.delete_of("R").name == "__log_ins__V__R"
        assert eta.insert_of("R").name == "__log_del__V__R"
