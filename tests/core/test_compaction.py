"""Property tests: net-effect log compaction is semantics-preserving.

Per-view logs (:meth:`repro.core.logs.Log.compact`): cancelling
``▼R min ▲R`` from both sides must leave ``PAST(L, Q)`` unchanged for
every query, keep the log weakly minimal, and produce the same
materialized view after refresh — while never growing the log.  The
evaluated ``(▼Q, ▲Q)`` pair may differ (churn tuples no longer appear on
both sides); only its *net effect* is preserved.

Shared sequenced logs (:meth:`repro.extensions.sharedlog.SharedLog.compact`):
segment folding between cursor boundaries must preserve
``net_deltas_since(c)`` *bit-exactly* for every registered cursor, so
``INV_BL``-relative invariants keep holding for every view.
"""

import pytest

from repro.core.differential import post_update_delta
from repro.core.logs import Log
from repro.core.scenarios import BaseLogScenario, CombinedScenario
from repro.core.views import ViewDefinition
from repro.extensions.sharedlog import SharedLogScenario
from repro.workloads.randgen import RandomExpressionGenerator

TRIALS = 12


def logged_pair(seed, scenario_cls):
    """Two identically-seeded scenarios with recorded (uncompacted) churn."""
    instances = []
    for _ in range(2):
        gen = RandomExpressionGenerator(seed, tables=3, max_rows=6)
        db = gen.database()
        view = ViewDefinition("V", gen.query(db, depth=3))
        scenario = scenario_cls(db, view)
        scenario.install()
        for _ in range(3):
            scenario.execute(gen.transaction(db, allow_over_delete=True))
        instances.append(scenario)
    return instances


class TestLogCompaction:
    @pytest.mark.parametrize("seed", range(TRIALS))
    def test_past_state_and_weak_minimality_preserved(self, seed):
        plain, compacted = logged_pair(seed, BaseLogScenario)
        size_before = compacted.log.recorded_changes()
        compacted.compact_log()
        assert compacted.log.recorded_changes() <= size_before
        assert compacted.log.is_weakly_minimal()
        # PAST(L, Q) — the state the log reconstructs — is unchanged, so
        # INV_BL still holds over the compacted log.
        assert plain.invariant_holds()
        assert compacted.invariant_holds()
        eta_plain = plain.log.substitution().apply(plain.view.query)
        eta_compacted = compacted.log.substitution().apply(compacted.view.query)
        assert plain.db.evaluate(eta_plain) == compacted.db.evaluate(eta_compacted)

    @pytest.mark.parametrize("seed", range(TRIALS))
    def test_refresh_after_compaction_matches_oracle(self, seed):
        plain, compacted = logged_pair(seed, BaseLogScenario)
        compacted.compact_log()
        plain.refresh()
        compacted.refresh()
        assert compacted.read_view() == plain.read_view()
        assert compacted.is_consistent()

    @pytest.mark.parametrize("seed", range(TRIALS))
    def test_net_effect_of_deltas_preserved(self, seed):
        """(▼Q, ▲Q) may change tuple-for-tuple, but MV ∸ ▼Q ⊎ ▲Q may not."""
        plain, compacted = logged_pair(seed, BaseLogScenario)
        compacted.compact_log()
        mv = plain.read_view()
        assert mv == compacted.read_view()
        results = []
        for scenario in (plain, compacted):
            delete_expr, insert_expr = post_update_delta(scenario.log, scenario.view.query)
            delete = scenario.db.evaluate(delete_expr)
            insert = scenario.db.evaluate(insert_expr)
            results.append(mv.patch(delete, insert))
        assert results[0] == results[1]

    @pytest.mark.parametrize("seed", range(TRIALS))
    def test_combined_scenario_invariant_survives_compaction(self, seed):
        plain, compacted = logged_pair(seed, CombinedScenario)
        compacted.compact_log()
        assert compacted.invariant_holds()  # INV_C audit
        compacted.propagate()
        compacted.partial_refresh()
        plain.refresh()
        assert compacted.read_view() == plain.read_view()

    def test_churn_compacts_to_nothing(self):
        """A delete/insert round trip leaves a net-empty log."""
        gen = RandomExpressionGenerator(0, tables=1, max_rows=4)
        db = gen.database()
        log = Log(db, db.external_tables())
        log.install()
        table = db.external_tables()[0]
        rows = db[table]
        assert rows, "seed produced an empty table"
        from repro.core.transactions import UserTransaction

        out = UserTransaction(db)
        out.delete(table, rows)
        db.apply(patches=log.extend_patches(out))
        db.apply(patches={table: (out.delete_expr(table), out.insert_expr(table))})
        back = UserTransaction(db)
        back.insert(table, rows)
        db.apply(patches=log.extend_patches(back))
        db.apply(patches={table: (back.delete_expr(table), back.insert_expr(table))})
        assert log.recorded_changes() == 2 * len(rows)
        log.compact()
        assert log.recorded_changes() == 0


class TestSharedLogCompaction:
    @pytest.mark.parametrize("seed", range(TRIALS))
    def test_net_deltas_bit_exact_for_every_cursor(self, seed):
        gen = RandomExpressionGenerator(seed, tables=3, max_rows=6)
        db = gen.database()
        group = SharedLogScenario(db)
        # Views registered at different times => staggered cursors.
        queries = [gen.query(db, depth=3) for _ in range(3)]
        group.add_view(ViewDefinition("V0", queries[0]))
        for round_index, query in enumerate(queries[1:], start=1):
            for _ in range(2):
                group.execute(gen.transaction(db, allow_over_delete=True))
            group.add_view(ViewDefinition(f"V{round_index}", query))
        for _ in range(2):
            group.execute(gen.transaction(db, allow_over_delete=True))

        cursors = {name: group.cursor(name) for name in group.views()}
        tables = group.shared_log.tables
        before = {
            (table, cursor): group.shared_log.net_deltas_since(table, cursor)
            for table in tables
            for cursor in set(cursors.values())
        }
        size_before = group.log_size()
        group.compact()
        assert group.log_size() <= size_before
        for (table, cursor), expected in before.items():
            assert group.shared_log.net_deltas_since(table, cursor) == expected, (
                table,
                cursor,
            )
        for name in group.views():
            assert group.invariant_holds(name), name

    @pytest.mark.parametrize("seed", range(TRIALS))
    def test_group_refresh_after_compaction_matches_per_view_oracle(self, seed):
        def build():
            gen = RandomExpressionGenerator(seed, tables=3, max_rows=6)
            db = gen.database()
            group = SharedLogScenario(db)
            for index in range(3):
                group.add_view(ViewDefinition(f"V{index}", gen.query(db, depth=3)))
            for _ in range(3):
                group.execute(gen.transaction(db, allow_over_delete=True))
            return group

        oracle = build()
        subject = build()
        oracle.refresh_all()  # sequential, uncompacted oracle
        subject.refresh_group(parallel=True, compact=True)
        for name in oracle.views():
            assert subject.read_view(name) == oracle.read_view(name), name
            assert subject.is_consistent(name), name
