"""Unit tests for factored substitutions."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.expr import Literal, UnionAll
from repro.algebra.schema import Schema
from repro.core.substitution import FactoredSubstitution
from repro.errors import SchemaError
from repro.storage.database import Database


@pytest.fixture
def db():
    database = Database()
    database.create_table("R", ["a"], rows=[(1,), (1,), (2,)])
    database.create_table("S", ["b"], rows=[(5,)])
    return database


def literal_subst(db, deltas):
    schemas = {name: db.schema_of(name) for name in deltas}
    return FactoredSubstitution.literal(
        {name: (Bag(delete), Bag(insert)) for name, (delete, insert) in deltas.items()},
        schemas,
    )


class TestConstruction:
    def test_literal_constructor(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [(3,)])})
        assert "R" in eta
        assert eta.tables() == frozenset({"R"})

    def test_missing_schema_rejected(self, db):
        with pytest.raises(SchemaError):
            FactoredSubstitution(
                {"R": (Literal(Bag.empty(), Schema(["a"])), Literal(Bag.empty(), Schema(["a"])))},
                {},
            )

    def test_arity_mismatch_rejected(self, db):
        bad = Literal(Bag([(1, 2)]), Schema(["x", "y"]))
        with pytest.raises(SchemaError):
            FactoredSubstitution({"R": (bad, bad)}, {"R": db.schema_of("R")})

    def test_identity(self):
        eta = FactoredSubstitution.identity()
        assert eta.tables() == frozenset()
        assert eta.is_trivial()

    def test_iter(self, db):
        eta = literal_subst(db, {"R": ([], []), "S": ([], [])})
        assert sorted(eta) == ["R", "S"]


class TestApplication:
    def test_replacement_shape(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [(3,)])})
        replaced = eta.replacement("R")
        assert isinstance(replaced, UnionAll)
        assert db.evaluate(replaced) == Bag([(1,), (2,), (3,)])

    def test_apply_replaces_all_occurrences(self, db):
        eta = literal_subst(db, {"R": ([], [(9,)])})
        query = db.ref("R").union_all(db.ref("R"))
        value = db.evaluate(eta.apply(query))
        assert value.multiplicity((9,)) == 2

    def test_apply_leaves_other_tables(self, db):
        eta = literal_subst(db, {"R": ([], [(9,)])})
        query = db.ref("S")
        assert db.evaluate(eta.apply(query)) == db["S"]

    def test_trivial_substitution_is_identity_semantically(self, db):
        eta = literal_subst(db, {"R": ([], [])})
        query = db.ref("R")
        assert db.evaluate(eta.apply(query)) == db["R"]
        assert eta.is_trivial()

    def test_not_trivial_with_deltas(self, db):
        assert not literal_subst(db, {"R": ([(1,)], [])}).is_trivial()


class TestWeakMinimality:
    def test_normalization_preserves_value(self, db):
        # Over-delete: (1,) x3 but R has only x2.
        eta = literal_subst(db, {"R": ([(1,), (1,), (1,)], [(7,)])})
        minimal = eta.weakly_minimal()
        query = db.ref("R")
        assert db.evaluate(eta.apply(query)) == db.evaluate(minimal.apply(query))

    def test_normalized_delete_is_subbag(self, db):
        eta = literal_subst(db, {"R": ([(1,), (1,), (1,), (9,)], [])})
        minimal = eta.weakly_minimal()
        delete_value = db.evaluate(minimal.delete_of("R"))
        assert delete_value.issubbag(db["R"])
        assert delete_value == Bag([(1,), (1,)])

    def test_accessors(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [(3,)])})
        assert db.evaluate(eta.delete_of("R")) == Bag([(1,)])
        assert db.evaluate(eta.insert_of("R")) == Bag([(3,)])
        assert eta.schema_of("R") == Schema(["a"])

    def test_repr(self, db):
        assert "R" in repr(literal_subst(db, {"R": ([], [])}))
