"""Unit tests for maintenance plans and patch execution."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter
from repro.algebra.expr import Literal
from repro.algebra.schema import Schema
from repro.core.plan import MaintenancePlan
from repro.errors import TransactionError
from repro.storage.database import Database

A = Schema(["a"])


@pytest.fixture
def db():
    database = Database()
    database.create_table("R", ["a"], rows=[(1,), (2,), (2,)])
    database.create_table("S", ["a"], rows=[(5,)])
    return database


def lit(*rows):
    return Literal(Bag(rows), A)


class TestBagPatch:
    def test_patch_semantics_match_monus_union(self):
        base = Bag([(1,), (2,), (2,)])
        delete = Bag([(2,), (9,)])
        insert = Bag([(3,), (1,)])
        assert base.patch(delete, insert) == base.monus(delete).union_all(insert)

    def test_patch_empty_deltas_is_identity(self):
        base = Bag([(1,)])
        assert base.patch(Bag.empty(), Bag.empty()) == base

    def test_patch_over_delete_floors(self):
        base = Bag([(1,)])
        assert base.patch(Bag([(1,), (1,)]), Bag.empty()) == Bag.empty()


class TestPlanConstruction:
    def test_add_and_tables(self, db):
        plan = MaintenancePlan()
        plan.add_patch("R", lit((1,)), lit((9,)))
        plan.add_assignment("S", lit((7,)))
        assert plan.tables() == {"R", "S"}
        assert not plan.is_empty()

    def test_empty_plan(self):
        assert MaintenancePlan().is_empty()

    def test_conflicting_patch_rejected(self):
        plan = MaintenancePlan()
        plan.add_patch("R", lit((1,)), lit((9,)))
        with pytest.raises(TransactionError):
            plan.add_patch("R", lit((2,)), lit((9,)))

    def test_identical_duplicate_patch_deduplicates(self):
        plan = MaintenancePlan()
        plan.add_patch("R", lit((1,)), lit((9,)))
        plan.add_patch("R", lit((1,)), lit((9,)))  # structurally equal: fine
        assert plan.tables() == {"R"}

    def test_assignment_patch_conflict(self):
        plan = MaintenancePlan()
        plan.add_assignment("R", lit((1,)))
        with pytest.raises(TransactionError):
            plan.add_patch("R", lit((1,)), lit((2,)))


class TestMerge:
    def test_disjoint_merge(self):
        left = MaintenancePlan()
        left.add_patch("R", lit((1,)), lit((9,)))
        right = MaintenancePlan()
        right.add_assignment("S", lit((7,)))
        merged = left.merge(right)
        assert merged.tables() == {"R", "S"}

    def test_shared_user_patches_deduplicate(self):
        left = MaintenancePlan(patches={"R": (lit((1,)), lit((9,)))})
        right = MaintenancePlan(patches={"R": (lit((1,)), lit((9,)))})
        merged = left.merge(right)
        assert merged.tables() == {"R"}

    def test_conflicting_merge_rejected(self):
        left = MaintenancePlan(patches={"R": (lit((1,)), lit((9,)))})
        right = MaintenancePlan(patches={"R": (lit((2,)), lit((9,)))})
        with pytest.raises(TransactionError):
            left.merge(right)

    def test_merge_does_not_mutate_operands(self):
        left = MaintenancePlan(patches={"R": (lit((1,)), lit((9,)))})
        right = MaintenancePlan(assignments={"S": lit((7,))})
        left.merge(right)
        assert "S" not in left.assignments


class TestExecution:
    def test_execute_applies_both_kinds(self, db):
        plan = MaintenancePlan()
        plan.add_patch("R", lit((2,)), lit((4,)))
        plan.add_assignment("S", lit((7,)))
        plan.execute(db)
        assert db["R"] == Bag([(1,), (2,), (4,)])
        assert db["S"] == Bag([(7,)])

    def test_patch_cost_is_delta_proportional(self, db):
        db.load("R", [(6,)] * 100)
        counter = CostCounter()
        plan = MaintenancePlan()
        plan.add_patch("R", lit((6,)), lit((8,)))
        plan.execute(db, counter=counter)
        # 1 delete + 1 insert + the two literal evaluations: far below table size.
        assert counter.tuples_out < 10
        assert counter.by_operator["patch"] == 2

    def test_patch_deltas_see_pre_state(self, db):
        # Patch R by inserting the current S, while S is reassigned.
        plan = MaintenancePlan()
        plan.add_patch("R", Literal(Bag.empty(), A), db.ref("S"))
        plan.add_assignment("S", lit((7,)))
        plan.execute(db)
        assert (5,) in db["R"]
        assert db["S"] == Bag([(7,)])

    def test_database_rejects_assign_and_patch_same_table(self, db):
        with pytest.raises(TransactionError):
            db.apply({"R": lit((1,))}, patches={"R": (lit((1,)), lit((2,)))})
