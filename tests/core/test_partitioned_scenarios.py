"""Partitioned-vs-unpartitioned equivalence under randomized streams.

The pruned fast path must be indistinguishable from the Figure 3
algorithms it replaces: for every engine tier and every seeded random
transaction stream, a scenario over a :class:`PartitionedDatabase`
must produce view contents **bit-identical** to the same scenario run
on a plain database with the interpreted oracle.  The streams bake in
the awkward cases — over-deletes, partitions that stay empty, keys
migrating between partitions, and a mid-stream hot-key burst — and a
chaos extension kills the refresh *between* per-partition applies.
"""

import random

import pytest

from repro.core.scenarios import BaseLogScenario, CombinedScenario
from repro.core.transactions import UserTransaction
from repro.robustness.faults import INJECTOR, InjectedCrash
from repro.robustness.journal import bag_digest
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.storage.partition import PartitionedDatabase

ENGINES = ["interpreted", "compiled", "vectorized", "sqlite"]
SCENARIOS = {"base_log": BaseLogScenario, "combined": CombinedScenario}
SQL = (
    "CREATE VIEW V (custId, item) AS "
    "SELECT c.custId, s.item FROM C c, S s WHERE c.custId = s.custId"
)
KEYSPACE = 40  # over 8 hash partitions: some stay empty, most shared
HOT_KEY = 7


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


def seed_rows():
    customers = [(i, f"name{i}") for i in range(12)]
    sales = [(i % 10, f"item{i % 5}") for i in range(30)]
    return customers, sales


def build(scenario_cls, *, engine=None, parts=8):
    """One installed scenario; partitioned iff ``engine`` is given."""
    if engine is None:
        db = Database(exec_mode="interpreted")
    else:
        db = PartitionedDatabase(exec_mode=engine)
    customers, sales = seed_rows()
    db.create_table("C", ["custId", "name"], rows=customers)
    db.create_table("S", ["custId", "item"], rows=sales)
    if engine is not None:
        db.declare_partitioning("C", "custId", parts=parts, domain="custId")
        db.declare_partitioning("S", "custId", parts=parts, domain="custId")
    scenario = scenario_cls(db, sql_to_view(SQL, db))
    scenario.install()
    return scenario


def random_ops(rng, *, hot=False):
    """One transaction's worth of engine-independent (deletes, inserts).

    Materialized as plain row lists so the *same* stream can be replayed
    against the oracle and the subject.  Covers over-deletes (rows that
    were never present), key migration (delete under one key, re-insert
    the payload under another), and — when ``hot`` — a burst focused on
    a single key so one partition runs far hotter than the rest.
    """

    def key():
        if hot and rng.random() < 0.7:
            return HOT_KEY
        return rng.randrange(KEYSPACE)

    deletes = {"C": [], "S": []}
    inserts = {"C": [], "S": []}
    for _ in range(rng.randint(1, 4)):
        k = key()
        inserts["S"].append((k, f"item{rng.randrange(5)}"))
        if rng.random() < 0.4:
            inserts["C"].append((k, f"name{k}"))
    if rng.random() < 0.6:  # over-delete: the row may or may not exist
        deletes["S"].append((key(), f"item{rng.randrange(5)}"))
    if rng.random() < 0.3:  # key migration: same payload, new partition
        k = key()
        payload = f"item{rng.randrange(5)}"
        deletes["S"].append((k, payload))
        inserts["S"].append(((k + 13) % KEYSPACE, payload))
    if rng.random() < 0.2:
        deletes["C"].append((rng.randrange(KEYSPACE), "ghost"))
    return deletes, inserts


def replay(scenario, ops):
    deletes, inserts = ops
    txn = UserTransaction(scenario.db)
    for table, rows in deletes.items():
        if rows:
            txn.delete(table, rows)
    for table, rows in inserts.items():
        if rows:
            txn.insert(table, rows)
    scenario.execute(txn)


class TestEquivalenceGrid:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("scenario_key", sorted(SCENARIOS))
    @pytest.mark.parametrize("seed", [11, 29])
    def test_randomized_stream_matches_unpartitioned_oracle(
        self, engine, scenario_key, seed
    ):
        scenario_cls = SCENARIOS[scenario_key]
        oracle = build(scenario_cls)
        subject = build(scenario_cls, engine=engine)
        if engine != "interpreted":
            # The grid must exercise the pruned fast path, not silently
            # fall back to the generic algorithms.
            assert subject._pmaint is not None, "fast path did not install"
        rng = random.Random(seed)
        for epoch in range(4):
            for _ in range(4):
                ops = random_ops(rng, hot=(epoch == 2))
                replay(oracle, ops)
                replay(subject, ops)
            oracle.refresh()
            subject.refresh()
            assert bag_digest(subject.read_view()) == bag_digest(
                oracle.read_view()
            ), f"{engine}/{scenario_key}/seed={seed} diverged at epoch {epoch}"
            assert subject.invariant_holds()

    @pytest.mark.parametrize("engine", ["compiled", "sqlite"])
    def test_mostly_empty_partitions(self, engine):
        """32 partitions, 3 live keys: pruning over a sparse layout."""
        oracle = build(BaseLogScenario)
        subject = build(BaseLogScenario, engine=engine, parts=32)
        rng = random.Random(5)
        for _ in range(3):
            k = rng.choice([1, 2, 3])
            ops = ({"S": [(k, "item0")]}, {"S": [(k, "item1"), (k, "item1")]})
            replay(oracle, ops)
            replay(subject, ops)
            oracle.refresh()
            subject.refresh()
            assert subject.read_view() == oracle.read_view()
            assert subject.invariant_holds()

    def test_combined_propagate_then_partial_refresh(self):
        """The C scenario's two-phase path stays equivalent when pruned."""
        oracle = build(CombinedScenario)
        subject = build(CombinedScenario, engine="compiled")
        rng = random.Random(17)
        for _ in range(3):
            ops = random_ops(rng)
            replay(oracle, ops)
            replay(subject, ops)
            oracle.propagate()
            subject.propagate()
            oracle.partial_refresh()
            subject.partial_refresh()
            assert subject.read_view() == oracle.read_view()
            assert subject.invariant_holds()


class TestPartitionCrashChaos:
    """A crash between per-partition applies of one epoch."""

    @pytest.mark.parametrize("engine", ["compiled", "vectorized", "sqlite"])
    @pytest.mark.parametrize("scenario_key", sorted(SCENARIOS))
    def test_crash_rolls_back_and_rerun_converges(self, engine, scenario_key):
        scenario_cls = SCENARIOS[scenario_key]
        oracle = build(scenario_cls)
        subject = build(scenario_cls, engine=engine)
        assert subject._pmaint is not None
        # A delta spanning many keys guarantees multiple partitions are
        # patched, so the between-partitions fault point is visited.
        ops = (
            {"S": [(0, "item0")]},
            {"S": [(k, f"item{k % 5}") for k in range(16)]},
        )
        replay(oracle, ops)
        replay(subject, ops)
        oracle.refresh()

        mv = subject.view.mv_table
        mv_before = subject.db[mv]
        version_before = subject.db.version_of(mv)
        INJECTOR.arm("crash-mid-partition-apply")
        with pytest.raises(InjectedCrash):
            subject.refresh()
        # Full rollback: the view is untouched, no half-applied epoch.
        assert subject.db[mv] == mv_before
        assert subject.db.version_of(mv) == version_before
        assert subject.invariant_holds()

        # After the dust settles, the same refresh converges exactly.
        INJECTOR.reset()
        subject.refresh()
        assert bag_digest(subject.read_view()) == bag_digest(oracle.read_view())
        assert subject.invariant_holds()
        assert subject.is_consistent()
