"""Unit tests for view definitions and internal-table naming."""

from repro.algebra.schema import Schema
from repro.core import naming
from repro.core.views import ViewDefinition
from repro.storage.database import Database


def make_view():
    db = Database()
    db.create_table("R", ["a"], rows=[(1,)])
    db.create_table("S", ["a"], rows=[(2,)])
    return ViewDefinition("V", db.ref("R").union_all(db.ref("S")))


class TestViewDefinition:
    def test_schema(self):
        assert make_view().schema == Schema(["a"])

    def test_base_tables(self):
        assert make_view().base_tables() == frozenset({"R", "S"})

    def test_mv_table_name(self):
        assert make_view().mv_table == "__mv__V"

    def test_dt_table_names(self):
        view = make_view()
        assert view.dt_delete_table == "__dt_del__V"
        assert view.dt_insert_table == "__dt_ins__V"

    def test_frozen(self):
        view = make_view()
        import dataclasses
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            view.name = "other"


class TestNaming:
    def test_log_names_include_owner_and_table(self):
        assert naming.log_delete_name("V", "R") == "__log_del__V__R"
        assert naming.log_insert_name("V", "R") == "__log_ins__V__R"

    def test_all_internal_names_are_prefixed(self):
        names = [
            naming.log_delete_name("V", "R"),
            naming.log_insert_name("V", "R"),
            naming.mv_name("V"),
            naming.dt_delete_name("V"),
            naming.dt_insert_name("V"),
        ]
        assert all(name.startswith("__") for name in names)
        assert len(set(names)) == len(names)
