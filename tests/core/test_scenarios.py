"""Unit + randomized tests for the Figure 3 maintenance algorithms.

The key statements verified here are exactly the paper's Theorem 5:

* every ``makesafe_*[T]`` is safe for its invariant,
* ``{INV_*} refresh_* {Q ≡ MV}``,
* ``{INV_C} propagate_C {Q ≡ (MV ∸ ∇MV) ⊎ ΔMV}``,
* ``{INV_C} partial_refresh_C {PAST(L,Q) ≡ MV}``,

plus the minimality invariants of Lemma 4.
"""

import pytest

from repro.algebra.bag import Bag
from repro.core import invariants
from repro.core.scenarios import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
)
from repro.core.timetravel import past_query
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import InvariantViolation
from repro.storage.database import Database
from repro.workloads.randgen import RandomExpressionGenerator

ALL_SCENARIOS = [ImmediateScenario, BaseLogScenario, DiffTableScenario, CombinedScenario]


def make_db():
    db = Database()
    db.create_table("R", ["a", "b"], rows=[(1, 1), (1, 2), (2, 2)])
    db.create_table("S", ["b", "c"], rows=[(1, 10), (2, 20), (2, 20)])
    return db


def join_view(db):
    from repro.sqlfront import sql_to_view

    return sql_to_view(
        "CREATE VIEW V (a, c) AS SELECT r.a, s.c FROM R r, S s WHERE r.b = s.b",
        db,
    )


def make(scenario_cls, db=None):
    db = db if db is not None else make_db()
    scenario = scenario_cls(db, join_view(db))
    scenario.install()
    return scenario


TXNS = [
    lambda db: UserTransaction(db).insert("R", [(5, 1), (5, 1)]),
    lambda db: UserTransaction(db).delete("S", [(2, 20)]).insert("S", [(1, 30)]),
    lambda db: UserTransaction(db).delete("R", [(1, 1)]).insert("R", [(1, 1)]),
    lambda db: UserTransaction(db).insert("R", [(7, 9)]),  # joins nothing
    lambda db: UserTransaction(db).delete("R", [(0, 0)]),  # deletes nothing
]


class TestInstall:
    @pytest.mark.parametrize("scenario_cls", ALL_SCENARIOS)
    def test_mv_materialized(self, scenario_cls):
        scenario = make(scenario_cls)
        assert scenario.read_view() == scenario.db.evaluate(scenario.view.query)
        assert scenario.invariant_holds()

    @pytest.mark.parametrize("scenario_cls", ALL_SCENARIOS)
    def test_install_idempotent(self, scenario_cls):
        scenario = make(scenario_cls)
        scenario.install()  # second call is a no-op

    def test_mv_is_internal(self):
        scenario = make(ImmediateScenario)
        assert scenario.db.is_internal(scenario.view.mv_table)

    def test_aux_tables_by_scenario(self):
        combined = make(CombinedScenario)
        names = set(combined.db.internal_tables())
        assert {"__mv__V", "__dt_del__V", "__dt_ins__V", "__log_del__V__R", "__log_ins__V__R"} <= names
        immediate = make(ImmediateScenario)
        assert immediate.db.internal_tables() == ("__mv__V",)


class TestMakeSafePreservesInvariant:
    @pytest.mark.parametrize("scenario_cls", ALL_SCENARIOS)
    @pytest.mark.parametrize("txn_index", range(len(TXNS)))
    def test_single_transactions(self, scenario_cls, txn_index):
        scenario = make(scenario_cls)
        scenario.execute(TXNS[txn_index](scenario.db))
        scenario.check_invariant()

    @pytest.mark.parametrize("scenario_cls", ALL_SCENARIOS)
    def test_transaction_stream(self, scenario_cls):
        scenario = make(scenario_cls)
        for build in TXNS:
            scenario.execute(build(scenario.db))
            scenario.check_invariant()

    @pytest.mark.parametrize("scenario_cls", ALL_SCENARIOS)
    def test_unrelated_table_update_is_harmless(self, scenario_cls):
        scenario = make(scenario_cls)
        scenario.db.create_table("unrelated", ["z"], rows=[(1,)])
        scenario.execute(UserTransaction(scenario.db).insert("unrelated", [(2,)]))
        scenario.check_invariant()

    def test_immediate_view_always_fresh(self):
        scenario = make(ImmediateScenario)
        scenario.execute(TXNS[0](scenario.db))
        assert scenario.is_consistent()

    @pytest.mark.parametrize("scenario_cls", [BaseLogScenario, DiffTableScenario, CombinedScenario])
    def test_deferred_view_goes_stale(self, scenario_cls):
        scenario = make(scenario_cls)
        scenario.execute(TXNS[0](scenario.db))
        assert not scenario.is_consistent()


class TestRefresh:
    @pytest.mark.parametrize("scenario_cls", ALL_SCENARIOS)
    def test_refresh_restores_consistency(self, scenario_cls):
        scenario = make(scenario_cls)
        for build in TXNS:
            scenario.execute(build(scenario.db))
        scenario.refresh()
        assert scenario.is_consistent()
        scenario.check_invariant()

    @pytest.mark.parametrize("scenario_cls", ALL_SCENARIOS)
    def test_refresh_on_empty_pending_is_noop(self, scenario_cls):
        scenario = make(scenario_cls)
        before = scenario.read_view()
        scenario.refresh()
        assert scenario.read_view() == before
        assert scenario.is_consistent()

    def test_refresh_clears_log(self):
        scenario = make(BaseLogScenario)
        scenario.execute(TXNS[0](scenario.db))
        scenario.refresh()
        assert scenario.log.is_empty()

    def test_refresh_clears_differential_tables(self):
        scenario = make(DiffTableScenario)
        scenario.execute(TXNS[0](scenario.db))
        scenario.refresh()
        assert scenario.db[scenario.view.dt_delete_table] == Bag.empty()
        assert scenario.db[scenario.view.dt_insert_table] == Bag.empty()

    def test_combined_refresh_both_orders(self):
        for order in ("propagate_first", "partial_first"):
            scenario = make(CombinedScenario)
            for build in TXNS:
                scenario.execute(build(scenario.db))
            scenario.refresh(order=order)
            assert scenario.is_consistent()
            scenario.check_invariant()

    def test_combined_refresh_unknown_order(self):
        scenario = make(CombinedScenario)
        with pytest.raises(ValueError):
            scenario.refresh(order="sideways")


class TestCombinedAuxiliaryTransactions:
    def test_propagate_spec(self):
        """{INV_C} propagate_C {Q ≡ (MV ∸ ∇MV) ⊎ ΔMV} — and the log empties."""
        scenario = make(CombinedScenario)
        for build in TXNS[:3]:
            scenario.execute(build(scenario.db))
        scenario.propagate()
        assert invariants.diff_table_invariant(scenario.db, scenario.view)
        assert scenario.log.is_empty()
        scenario.check_invariant()

    def test_partial_refresh_spec(self):
        """{INV_C} partial_refresh_C {PAST(L,Q) ≡ MV}."""
        scenario = make(CombinedScenario)
        scenario.execute(TXNS[0](scenario.db))
        scenario.propagate()
        scenario.execute(TXNS[1](scenario.db))  # further changes stay in the log
        scenario.partial_refresh()
        past_value = scenario.db.evaluate(past_query(scenario.view.query, scenario.log))
        assert past_value == scenario.read_view()
        scenario.check_invariant()

    def test_partial_refresh_without_propagate_applies_nothing_new(self):
        scenario = make(CombinedScenario)
        before = scenario.read_view()
        scenario.execute(TXNS[0](scenario.db))
        scenario.partial_refresh()  # differentials are still empty
        assert scenario.read_view() == before

    def test_interleaving_stream(self):
        scenario = make(CombinedScenario)
        operations = [
            "txn", "txn", "propagate", "txn", "partial", "txn",
            "propagate", "partial", "txn", "refresh",
        ]
        index = 0
        for operation in operations:
            if operation == "txn":
                scenario.execute(TXNS[index % len(TXNS)](scenario.db))
                index += 1
            elif operation == "propagate":
                scenario.propagate()
            elif operation == "partial":
                scenario.partial_refresh()
            else:
                scenario.refresh()
            scenario.check_invariant()
        assert scenario.is_consistent()


class TestStrongMinimality:
    def _churn(self, scenario):
        # Delete and reinsert the same joining row: weak minimality keeps
        # both sides in the differential tables, strong cancels them.
        scenario.execute(
            UserTransaction(scenario.db).delete("R", [(1, 1)]).insert("R", [(1, 1)])
        )

    def test_strong_dt_scenario_correct(self):
        db = make_db()
        scenario = DiffTableScenario(db, join_view(db), strong_minimality=True)
        scenario.install()
        self._churn(scenario)
        scenario.check_invariant()
        scenario.refresh()
        assert scenario.is_consistent()

    def test_strong_combined_scenario_correct(self):
        db = make_db()
        scenario = CombinedScenario(db, join_view(db), strong_minimality=True)
        scenario.install()
        self._churn(scenario)
        scenario.propagate()
        scenario.check_invariant()
        scenario.refresh()
        assert scenario.is_consistent()

    def test_strong_minimality_shrinks_differentials(self):
        weak_db, strong_db = make_db(), make_db()
        weak = DiffTableScenario(weak_db, join_view(weak_db), strong_minimality=False)
        strong = DiffTableScenario(strong_db, join_view(strong_db), strong_minimality=True)
        weak.install()
        strong.install()
        self._churn(weak)
        self._churn(strong)
        weak_size = len(weak_db[weak.view.dt_delete_table]) + len(weak_db[weak.view.dt_insert_table])
        strong_size = len(strong_db[strong.view.dt_delete_table]) + len(strong_db[strong.view.dt_insert_table])
        assert strong_size < weak_size
        assert strong_size == 0  # pure churn cancels completely


class TestAccounting:
    def test_refresh_takes_view_lock(self):
        scenario = make(BaseLogScenario)
        scenario.execute(TXNS[0](scenario.db))
        scenario.refresh()
        assert scenario.ledger.section_count(scenario.view.mv_table) == 1

    def test_propagate_takes_no_view_lock(self):
        scenario = make(CombinedScenario)
        scenario.execute(TXNS[0](scenario.db))
        scenario.propagate()
        assert scenario.ledger.section_count(scenario.view.mv_table) == 0
        scenario.partial_refresh()
        assert scenario.ledger.section_count(scenario.view.mv_table) == 1

    def test_counter_accumulates(self):
        scenario = make(CombinedScenario)
        before = scenario.counter.tuples_out
        scenario.execute(TXNS[0](scenario.db))
        assert scenario.counter.tuples_out > before


class TestCheckInvariant:
    def test_raises_on_violation(self):
        scenario = make(CombinedScenario)
        scenario.db.set_table(scenario.view.mv_table, Bag([(123, 456)]))
        with pytest.raises(InvariantViolation):
            scenario.check_invariant()


@pytest.mark.parametrize("scenario_cls", ALL_SCENARIOS)
@pytest.mark.parametrize("seed", range(10))
def test_randomized_streams(scenario_cls, seed):
    """Theorem 5 over random views and random transaction streams."""
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    view = ViewDefinition("V", generator.query(db, depth=3))
    scenario = scenario_cls(db, view)
    scenario.install()
    for step in range(4):
        scenario.execute(generator.transaction(db, allow_over_delete=True))
        assert scenario.invariant_holds(), f"invariant broken at step {step}"
        if scenario_cls is CombinedScenario and step == 1:
            scenario.propagate()
            assert scenario.invariant_holds()
    scenario.refresh()
    assert scenario.is_consistent()
