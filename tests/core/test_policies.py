"""Unit tests for refresh policies and the maintenance driver."""

import pytest

from repro.core.policies import (
    MaintenanceDriver,
    OnDemandPolicy,
    OnQueryPolicy,
    PeriodicRefresh,
    Policy1,
    Policy2,
)
from repro.core.scenarios import BaseLogScenario, CombinedScenario, ImmediateScenario
from repro.core.transactions import UserTransaction
from repro.core.views import ViewDefinition
from repro.errors import PolicyError
from repro.storage.database import Database


def make_scenario(scenario_cls=CombinedScenario):
    db = Database()
    db.create_table("R", ["a"], rows=[(1,), (2,)])
    scenario = scenario_cls(db, ViewDefinition("V", db.ref("R")))
    scenario.install()
    return scenario


def insert_txn(db, value):
    return UserTransaction(db).insert("R", [(value,)])


class TestPolicySchedules:
    def test_policy1_actions(self):
        policy = Policy1(k=2, m=6)
        assert policy.actions_at(1) == ()
        assert policy.actions_at(2) == ("propagate",)
        assert policy.actions_at(4) == ("propagate",)
        assert policy.actions_at(6) == ("refresh",)  # refresh subsumes propagate

    def test_policy2_actions(self):
        policy = Policy2(k=2, m=6)
        assert policy.actions_at(2) == ("propagate",)
        assert policy.actions_at(3) == ()
        assert policy.actions_at(6) == ("propagate", "partial_refresh")

    def test_policy2_partial_only_at_m_not_multiple_of_k(self):
        policy = Policy2(k=2, m=5)
        assert policy.actions_at(5) == ("partial_refresh",)

    def test_periodic(self):
        policy = PeriodicRefresh(m=3)
        assert policy.actions_at(3) == ("refresh",)
        assert policy.actions_at(4) == ()

    def test_on_demand_never_fires(self):
        policy = OnDemandPolicy()
        assert all(policy.actions_at(tick) == () for tick in range(1, 20))
        assert not policy.refresh_on_query()

    def test_on_query(self):
        policy = OnQueryPolicy()
        assert policy.actions_at(5) == ()
        assert policy.refresh_on_query()

    @pytest.mark.parametrize("k,m", [(0, 5), (5, 5), (6, 5), (-1, 3)])
    def test_policy1_validation(self, k, m):
        with pytest.raises(PolicyError):
            Policy1(k=k, m=m)

    @pytest.mark.parametrize("k,m", [(0, 5), (5, 5)])
    def test_policy2_validation(self, k, m):
        with pytest.raises(PolicyError):
            Policy2(k=k, m=m)

    def test_periodic_validation(self):
        with pytest.raises(PolicyError):
            PeriodicRefresh(m=0)


class TestLogThresholdPolicy:
    def test_validation(self):
        from repro.core.policies import LogThresholdPolicy

        with pytest.raises(PolicyError):
            LogThresholdPolicy(threshold=0, m=5)
        with pytest.raises(PolicyError):
            LogThresholdPolicy(threshold=5, m=0)

    def test_requires_combined(self):
        from repro.core.policies import LogThresholdPolicy

        scenario = make_scenario(BaseLogScenario)
        with pytest.raises(PolicyError):
            MaintenanceDriver(scenario, LogThresholdPolicy(threshold=5, m=4))

    def test_propagates_when_log_exceeds_threshold(self):
        from repro.core.policies import LogThresholdPolicy

        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, LogThresholdPolicy(threshold=3, m=100))
        # Two one-row transactions: below threshold, no propagation.
        driver.tick([insert_txn(scenario.db, 1)])
        driver.tick([insert_txn(scenario.db, 2)])
        assert driver.stats.propagates == 0
        assert scenario.log.recorded_changes() == 2
        # Third pushes the log to the threshold.
        driver.tick([insert_txn(scenario.db, 3)])
        assert driver.stats.propagates == 1
        assert scenario.log.is_empty()
        scenario.check_invariant()

    def test_partial_refresh_period_still_applies(self):
        from repro.core.policies import LogThresholdPolicy

        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, LogThresholdPolicy(threshold=1, m=2))
        driver.tick([insert_txn(scenario.db, 1)])
        driver.tick()
        assert driver.stats.partial_refreshes == 1
        assert scenario.is_consistent()


class TestDriverWiring:
    def test_combined_required_for_policy1(self):
        scenario = make_scenario(BaseLogScenario)
        with pytest.raises(PolicyError):
            MaintenanceDriver(scenario, Policy1(k=1, m=2))

    def test_periodic_works_for_base_log(self):
        scenario = make_scenario(BaseLogScenario)
        driver = MaintenanceDriver(scenario, PeriodicRefresh(m=2))
        driver.tick([insert_txn(scenario.db, 5)])
        driver.tick()
        assert scenario.is_consistent()

    def test_propagate_rejected_for_non_combined(self):
        scenario = make_scenario(BaseLogScenario)
        driver = MaintenanceDriver(scenario, OnDemandPolicy())
        with pytest.raises(PolicyError):
            driver._run_action("propagate")

    def test_unknown_action(self):
        driver = MaintenanceDriver(make_scenario(), OnDemandPolicy())
        with pytest.raises(PolicyError):
            driver._run_action("explode")


class TestDriverBehaviour:
    def test_policy2_staleness_bounded_by_k(self):
        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, Policy2(k=2, m=6))
        value = 10
        for __ in range(24):
            driver.tick([insert_txn(scenario.db, value)])
            value += 1
            if driver.now % 6 == 0:
                driver.query()
        # Right after a partial refresh at t=6n (propagate fired the same
        # tick), the view reflects t exactly: staleness 0.
        assert driver.stats.max_staleness() == 0
        scenario.check_invariant()

    def test_policy2_staleness_between_refreshes(self):
        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, Policy2(k=2, m=6))
        for __ in range(7):
            driver.tick([insert_txn(scenario.db, driver.now)])
        driver.query()  # at t=7, last partial refresh at 6 reflected t=6
        assert driver.stats.staleness_samples == [1]

    def test_policy1_refresh_fully_synchronizes(self):
        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, Policy1(k=2, m=4))
        for __ in range(4):
            driver.tick([insert_txn(scenario.db, driver.now)])
        assert scenario.is_consistent()
        assert driver.mv_reflects == 4

    def test_immediate_scenario_never_stale(self):
        scenario = make_scenario(ImmediateScenario)
        driver = MaintenanceDriver(scenario, OnDemandPolicy())
        for __ in range(3):
            driver.tick([insert_txn(scenario.db, driver.now)])
            driver.query()
        assert driver.stats.max_staleness() == 0

    def test_on_query_policy_refreshes_before_read(self):
        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, OnQueryPolicy())
        driver.tick([insert_txn(scenario.db, 9)])
        result = driver.query()
        assert (9,) in result
        assert driver.stats.staleness_samples == [0]
        assert driver.stats.full_refreshes == 1

    def test_stats_counts(self):
        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, Policy2(k=1, m=3))
        for __ in range(6):
            driver.tick([insert_txn(scenario.db, driver.now)])
        stats = driver.stats
        assert stats.transactions == 6
        assert stats.propagates == 6
        assert stats.partial_refreshes == 2
        assert stats.full_refreshes == 0
        assert stats.transaction_cost > 0
        assert stats.propagate_cost > 0
        assert stats.refresh_cost > 0

    def test_refresh_now(self):
        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, OnDemandPolicy())
        driver.tick([insert_txn(scenario.db, 1)])
        assert not scenario.is_consistent()
        driver.refresh_now()
        assert scenario.is_consistent()
        assert driver.stats.full_refreshes == 1

    def test_mean_staleness(self):
        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, OnDemandPolicy())
        driver.tick([insert_txn(scenario.db, 1)])
        driver.query()
        driver.tick()
        driver.query()
        assert driver.stats.mean_staleness() == pytest.approx(1.5)

    def test_empty_stats(self):
        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, OnDemandPolicy())
        assert driver.stats.max_staleness() == 0
        assert driver.stats.mean_staleness() == 0.0


class TestRun:
    def test_run_with_schedule(self):
        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, Policy2(k=2, m=4))
        schedule = [(1, (insert_txn(scenario.db, 100),)), (3, (insert_txn(scenario.db, 101),))]
        stats = driver.run(schedule, horizon=8, query_every=4)
        assert stats.transactions == 2
        assert stats.queries == 2
        scenario.check_invariant()

    def test_run_without_queries(self):
        scenario = make_scenario()
        driver = MaintenanceDriver(scenario, PeriodicRefresh(m=2))
        stats = driver.run([], horizon=4)
        assert stats.queries == 0
        assert stats.full_refreshes == 2
