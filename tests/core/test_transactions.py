"""Unit tests for simple transactions."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.expr import Literal
from repro.errors import TransactionError
from repro.core.transactions import UserTransaction
from repro.storage.database import Database


@pytest.fixture
def db():
    database = Database()
    database.create_table("R", ["a"], rows=[(1,), (2,), (2,)])
    database.create_table("S", ["b"], rows=[(5,)])
    database.create_table("__mv__V", ["v"], internal=True)
    return database


class TestBuilder:
    def test_insert_rows(self, db):
        txn = UserTransaction(db).insert("R", [(3,)])
        txn.apply()
        assert db["R"] == Bag([(1,), (2,), (2,), (3,)])

    def test_delete_rows(self, db):
        txn = UserTransaction(db).delete("R", [(2,)])
        txn.apply()
        assert db["R"] == Bag([(1,), (2,)])

    def test_insert_and_delete_same_table(self, db):
        UserTransaction(db).insert("R", [(9,)]).delete("R", [(1,)]).apply()
        assert db["R"] == Bag([(2,), (2,), (9,)])

    def test_multiple_inserts_accumulate(self, db):
        UserTransaction(db).insert("R", [(7,)]).insert("R", [(7,)]).apply()
        assert db["R"].multiplicity((7,)) == 2

    def test_multiple_tables(self, db):
        UserTransaction(db).insert("R", [(3,)]).delete("S", [(5,)]).apply()
        assert (3,) in db["R"]
        assert db["S"] == Bag.empty()

    def test_internal_table_rejected(self, db):
        with pytest.raises(TransactionError):
            UserTransaction(db).insert("__mv__V", [(1,)])

    def test_insert_accepts_bag(self, db):
        UserTransaction(db).insert("R", Bag([(4,), (4,)])).apply()
        assert db["R"].multiplicity((4,)) == 2

    def test_query_deltas(self, db):
        # Insert into S everything currently in R (as a query).
        txn = UserTransaction(db).insert_query("S", db.ref("R").project(["a"], ["b"]))
        txn.apply()
        assert db["S"] == Bag([(5,), (1,), (2,), (2,)])

    def test_delete_query(self, db):
        txn = UserTransaction(db).delete_query("R", db.ref("R"))
        txn.apply()
        assert db["R"] == Bag.empty()

    def test_repr(self, db):
        txn = UserTransaction(db).insert("R", [(1,)]).delete("S", [(5,)])
        assert "+R" in repr(txn)
        assert "-S" in repr(txn)


class TestIntrospection:
    def test_tables(self, db):
        txn = UserTransaction(db).insert("R", [(1,)]).delete("S", [(5,)])
        assert txn.tables == frozenset({"R", "S"})

    def test_empty(self, db):
        assert UserTransaction(db).is_empty()
        assert not UserTransaction(db).insert("R", [(1,)]).is_empty()

    def test_missing_deltas_are_empty_literals(self, db):
        txn = UserTransaction(db).insert("R", [(1,)])
        delete = txn.delete_expr("R")
        assert isinstance(delete, Literal)
        assert not delete.bag

    def test_empty_transaction_applies_cleanly(self, db):
        before = db.snapshot()
        UserTransaction(db).apply()
        assert db.snapshot() == before


class TestSemantics:
    def test_deltas_evaluated_pre_state(self, db):
        # Delete everything currently in R while inserting (9,):
        # the delete must not see the insert.
        UserTransaction(db).delete_query("R", db.ref("R")).insert("R", [(9,)]).apply()
        assert db["R"] == Bag([(9,)])

    def test_over_delete_is_ignored(self, db):
        UserTransaction(db).delete("R", [(1,), (1,), (1,)]).apply()
        assert db["R"] == Bag([(2,), (2,)])

    def test_delete_then_insert_same_row_nets_insert(self, db):
        UserTransaction(db).delete("R", [(2,), (2,)]).insert("R", [(2,)]).apply()
        assert db["R"].multiplicity((2,)) == 1


class TestWeakMinimality:
    def test_weakly_minimal_preserves_effect(self, db):
        txn = UserTransaction(db).delete("R", [(1,), (1,), (7,)]).insert("R", [(8,)])
        clone = db.clone()
        txn.apply()
        clone.apply(txn.weakly_minimal().assignments())
        assert db["R"] == clone["R"]

    def test_weakly_minimal_delete_is_subbag(self, db):
        txn = UserTransaction(db).delete("R", [(1,), (1,), (7,)])
        minimal = txn.weakly_minimal()
        delete_value = db.evaluate(minimal.delete_expr("R"))
        assert delete_value.issubbag(db["R"])

    def test_weakly_minimal_keeps_inserts(self, db):
        txn = UserTransaction(db).insert("R", [(8,), (8,)])
        minimal = txn.weakly_minimal()
        assert db.evaluate(minimal.insert_expr("R")) == Bag([(8,), (8,)])
