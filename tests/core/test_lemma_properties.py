"""Property-based tests of the paper's lemmas (Hypothesis).

* Lemma 1 (cancellation) — tested at bag level in
  ``tests/algebra/test_bag_properties.py``; here we test its
  *expression-level* use in the duality construction.
* Lemma 3 (weakly minimal composition) — the algebraic heart of
  ``makesafe_DT`` and ``propagate_C`` folding.
* Theorem 2 over Hypothesis-generated states and deltas for a panel of
  query shapes (join, self-join, monus, dedup, nesting).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.bag import Bag
from repro.algebra.evaluation import evaluate
from repro.algebra.expr import (
    DupElim,
    Monus,
    Product,
    Project,
    Select,
    UnionAll,
    rename,
    table,
)
from repro.algebra.predicates import Comparison, attr
from repro.core.differential import differentiate
from repro.core.substitution import FactoredSubstitution
from repro.algebra.schema import Schema

rows1 = st.tuples(st.integers(min_value=0, max_value=3))
rows2 = st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3))
bags1 = st.lists(rows1, max_size=8).map(Bag)
bags2 = st.lists(rows2, max_size=8).map(Bag)


@st.composite
def bag_with_subbag(draw, bags):
    """A bag plus a random subbag of it (weak-minimality-shaped pairs)."""
    whole = draw(bags)
    keep = {}
    for row, count in whole.items():
        kept = draw(st.integers(min_value=0, max_value=count))
        if kept:
            keep[row] = kept
    return whole, Bag.from_counts(keep)


# ----------------------------------------------------------------------
# Lemma 3: weakly minimal composition
# ----------------------------------------------------------------------


@st.composite
def composition_instance(draw):
    original, delete1 = draw(bag_with_subbag(bags1))
    insert1 = draw(bags1)
    intermediate = original.monus(delete1).union_all(insert1)
    __, delete2 = draw(bag_with_subbag(st.just(intermediate)))
    insert2 = draw(bags1)
    return original, delete1, insert1, delete2, insert2


@given(composition_instance())
def test_lemma3_composition(instance):
    original, delete1, insert1, delete2, insert2 = instance
    delete3 = delete1.union_all(delete2.monus(insert1))
    insert3 = insert1.monus(delete2).union_all(insert2)
    sequential = original.monus(delete1).union_all(insert1).monus(delete2).union_all(insert2)
    composed = original.monus(delete3).union_all(insert3)
    assert sequential == composed  # Lemma 3(a)
    assert delete3.issubbag(original)  # Lemma 3(b)


# ----------------------------------------------------------------------
# Theorem 2 over a panel of query shapes
# ----------------------------------------------------------------------

R = table("R", ["a", "b"])
S = table("S", ["b", "c"])

QUERY_SHAPES = {
    "join": Select(
        Comparison("=", attr("r.b"), attr("s.b")),
        Product(rename(R, ("r.a", "r.b")), rename(S, ("s.b", "s.c"))),
    ),
    "self_join": Select(
        Comparison("=", attr("x.b"), attr("y.b")),
        Product(rename(R, ("x.a", "x.b")), rename(R, ("y.a", "y.b"))),
    ),
    "monus": Monus(Project(("a",), R), Project(("c",), S, ("a",))),
    "dedup_over_project": DupElim(Project(("b",), R)),
    "nested": Monus(
        UnionAll(Project(("a",), R), Project(("c",), S, ("a",))),
        DupElim(Project(("a",), R)),
    ),
}


@st.composite
def theorem2_instance(draw):
    r_value = draw(bags2)
    s_value = draw(bags2)
    __, r_delete = draw(bag_with_subbag(st.just(r_value)))
    r_insert = draw(bags2)
    __, s_delete = draw(bag_with_subbag(st.just(s_value)))
    s_insert = draw(bags2)
    return r_value, s_value, (r_delete, r_insert), (s_delete, s_insert)


@settings(max_examples=60)
@given(theorem2_instance(), st.sampled_from(sorted(QUERY_SHAPES)))
def test_theorem2_shapes(instance, shape):
    r_value, s_value, r_delta, s_delta = instance
    state = {"R": r_value, "S": s_value}
    schemas = {"R": Schema(["a", "b"]), "S": Schema(["b", "c"])}
    eta = FactoredSubstitution.literal({"R": r_delta, "S": s_delta}, schemas)
    query = QUERY_SHAPES[shape]
    delete, insert = differentiate(eta, query)
    new_value = evaluate(eta.apply(query), state)
    old_value = evaluate(query, state)
    delete_value = evaluate(delete, state)
    insert_value = evaluate(insert, state)
    assert new_value == old_value.monus(delete_value).union_all(insert_value)
    assert delete_value.issubbag(old_value)


@settings(max_examples=60)
@given(theorem2_instance(), st.sampled_from(sorted(QUERY_SHAPES)))
def test_duality_roundtrip(instance, shape):
    """The Section 4 duality: treating the same deltas as a *log* and
    applying the cancellation construction recovers the current value
    from the past one."""
    r_value, s_value, r_delta, s_delta = instance
    state = {"R": r_value, "S": s_value}
    schemas = {"R": Schema(["a", "b"]), "S": Schema(["b", "c"])}
    # L̂ has the roles flipped: D = recorded inserts, A = recorded deletes.
    eta = FactoredSubstitution.literal(
        {"R": (r_delta[1], r_delta[0]), "S": (s_delta[1], s_delta[0])}, schemas
    )
    # Require weak minimality of the log: recorded inserts ⊆ table.
    eta = eta.weakly_minimal()
    query = QUERY_SHAPES[shape]
    del_hat, add_hat = differentiate(eta, query)
    current = evaluate(query, state)
    past = evaluate(eta.apply(query), state)
    view_delete = evaluate(add_hat, state)
    # Cancellation Lemma form: ▲(L,Q) = Q min Del(L̂, Q).
    view_insert = current.min_(evaluate(del_hat, state))
    assert past.monus(view_delete).union_all(view_insert) == current
