"""Hypothesis-driven interleaving tests for the maintenance scenarios.

Hypothesis generates arbitrary interleavings of user transactions and
maintenance operations (propagate / partial refresh / full refresh, in
both refresh orders) against a two-table join view; after *every*
operation the scenario's Figure 1 invariant must hold, and a final
refresh must make the view exactly consistent.  Shrinking gives minimal
counterexamples if any algorithm is wrong.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.bag import Bag
from repro.core.scenarios import (
    BaseLogScenario,
    CombinedScenario,
    DiffTableScenario,
    ImmediateScenario,
)
from repro.core.transactions import UserTransaction
from repro.sqlfront import sql_to_view
from repro.storage.database import Database

rows_r = st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=2))
rows_s = st.tuples(st.integers(min_value=0, max_value=2), st.integers(min_value=0, max_value=3))

# One step is either a transaction spec or a maintenance action.
txn_step = st.fixed_dictionaries(
    {
        "kind": st.just("txn"),
        "insert_r": st.lists(rows_r, max_size=3),
        "delete_r": st.lists(rows_r, max_size=2),
        "insert_s": st.lists(rows_s, max_size=3),
        "delete_s": st.lists(rows_s, max_size=2),
    }
)
action_step = st.fixed_dictionaries(
    {
        "kind": st.sampled_from(
            ["propagate", "partial_refresh", "refresh", "refresh_partial_first"]
        )
    }
)
programs = st.lists(st.one_of(txn_step, action_step), max_size=10)


def fresh_scenario(scenario_cls, *, strong=False):
    db = Database()
    db.create_table("R", ["a", "b"], rows=[(1, 1), (2, 2), (2, 2)])
    db.create_table("S", ["b", "c"], rows=[(1, 0), (2, 1)])
    view = sql_to_view(
        "CREATE VIEW V (a, c) AS SELECT r.a, s.c FROM R r, S s WHERE r.b = s.b", db
    )
    kwargs = {"strong_minimality": True} if strong else {}
    scenario = scenario_cls(db, view, **kwargs)
    scenario.install()
    return db, scenario


def apply_step(db, scenario, step) -> None:
    if step["kind"] == "txn":
        txn = UserTransaction(db)
        if step["insert_r"]:
            txn.insert("R", step["insert_r"])
        if step["delete_r"]:
            txn.delete("R", step["delete_r"])
        if step["insert_s"]:
            txn.insert("S", step["insert_s"])
        if step["delete_s"]:
            txn.delete("S", step["delete_s"])
        if not txn.is_empty():
            scenario.execute(txn)
    elif step["kind"] == "propagate":
        if isinstance(scenario, CombinedScenario):
            scenario.propagate()
    elif step["kind"] == "partial_refresh":
        if isinstance(scenario, CombinedScenario):
            scenario.partial_refresh()
        else:
            scenario.refresh()
    elif step["kind"] == "refresh":
        scenario.refresh()
    elif step["kind"] == "refresh_partial_first":
        if isinstance(scenario, CombinedScenario):
            scenario.refresh(order="partial_first")
        else:
            scenario.refresh()


@settings(max_examples=40, deadline=None)
@given(programs)
def test_combined_scenario_interleavings(program):
    db, scenario = fresh_scenario(CombinedScenario)
    for step in program:
        apply_step(db, scenario, step)
        assert scenario.invariant_holds()
    scenario.refresh()
    assert scenario.read_view() == db.evaluate(scenario.view.query)


@settings(max_examples=25, deadline=None)
@given(programs)
def test_combined_strong_minimality_interleavings(program):
    db, scenario = fresh_scenario(CombinedScenario, strong=True)
    for step in program:
        apply_step(db, scenario, step)
        assert scenario.invariant_holds()
        # Strong minimality: no tuple sits on both sides of the diffs.
        dt_delete = db[scenario.view.dt_delete_table]
        dt_insert = db[scenario.view.dt_insert_table]
        assert dt_delete.min_(dt_insert) == Bag.empty()
    scenario.refresh()
    assert scenario.is_consistent()


@settings(max_examples=25, deadline=None)
@given(programs)
def test_base_log_interleavings(program):
    db, scenario = fresh_scenario(BaseLogScenario)
    for step in program:
        apply_step(db, scenario, step)
        assert scenario.invariant_holds()
    scenario.refresh()
    assert scenario.is_consistent()


@settings(max_examples=25, deadline=None)
@given(programs)
def test_diff_table_interleavings(program):
    db, scenario = fresh_scenario(DiffTableScenario)
    for step in program:
        apply_step(db, scenario, step)
        assert scenario.invariant_holds()
    scenario.refresh()
    assert scenario.is_consistent()


@settings(max_examples=25, deadline=None)
@given(programs)
def test_immediate_never_stale(program):
    db, scenario = fresh_scenario(ImmediateScenario)
    for step in program:
        apply_step(db, scenario, step)
        assert scenario.is_consistent()
