"""Unit + randomized tests for the Figure 2 differential algorithm."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.evaluation import CostCounter, evaluate
from repro.algebra.expr import (
    DupElim,
    Literal,
    Monus,
    Product,
    Project,
    Select,
    UnionAll,
)
from repro.algebra.predicates import Comparison, attr, const
from repro.algebra.schema import Schema
from repro.core.differential import (
    differentiate,
    post_update_delta,
    pre_update_delta,
    strongly_minimal_pair,
)
from repro.core.logs import Log
from repro.core.substitution import FactoredSubstitution
from repro.core.transactions import UserTransaction
from repro.storage.database import Database
from repro.workloads.randgen import RandomExpressionGenerator

W_SCHEMA = Schema(["x"])


def literal_subst(db, deltas):
    schemas = {name: db.schema_of(name) for name in deltas}
    return FactoredSubstitution.literal(
        {name: (Bag(delete), Bag(insert)) for name, (delete, insert) in deltas.items()},
        schemas,
    )


@pytest.fixture
def db():
    database = Database()
    database.create_table("R", ["a"], rows=[(1,), (1,), (2,), (3,)])
    database.create_table("S", ["b"], rows=[(1,), (2,), (2,)])
    return database


def check_theorem2(db, eta, query):
    delete, insert = differentiate(eta, query)
    new_value = db.evaluate(eta.apply(query))
    old_value = db.evaluate(query)
    delete_value = db.evaluate(delete)
    insert_value = db.evaluate(insert)
    assert new_value == old_value.monus(delete_value).union_all(insert_value)
    assert delete_value.issubbag(old_value)
    return delete_value, insert_value


class TestFigure2Rules:
    """Rule-by-rule checks of the Del/Add table, against hand semantics."""

    def test_table_ref(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [(9,)])})
        delete, insert = differentiate(eta, db.ref("R"))
        assert db.evaluate(delete) == Bag([(1,)])
        assert db.evaluate(insert) == Bag([(9,)])

    def test_unsubstituted_table_has_empty_deltas(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [(9,)])})
        delete, insert = differentiate(eta, db.ref("S"))
        assert db.evaluate(delete) == Bag.empty()
        assert db.evaluate(insert) == Bag.empty()

    def test_literal_has_empty_deltas(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [(9,)])})
        lit = Literal(Bag([(5,)]), W_SCHEMA)
        delete, insert = differentiate(eta, lit)
        assert db.evaluate(delete) == Bag.empty()
        assert db.evaluate(insert) == Bag.empty()

    def test_select(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [(2,), (9,)])})
        query = Select(Comparison("<", attr("a"), const(3)), db.ref("R"))
        delete_value, insert_value = check_theorem2(db, eta, query)
        assert delete_value == Bag([(1,)])
        assert insert_value == Bag([(2,)])  # (9,) filtered out

    def test_project(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [(9,)])})
        check_theorem2(db, eta, Project(("a",), db.ref("R")))

    def test_dedup_delete_only_when_last_copy_goes(self, db):
        # R has (1,) twice; deleting one copy must NOT delete from eps(R).
        eta = literal_subst(db, {"R": ([(1,)], [])})
        query = DupElim(db.ref("R"))
        delete_value, insert_value = check_theorem2(db, eta, query)
        assert delete_value == Bag.empty()
        assert insert_value == Bag.empty()

    def test_dedup_delete_when_all_copies_go(self, db):
        eta = literal_subst(db, {"R": ([(1,), (1,)], [])})
        delete_value, __ = check_theorem2(db, eta, DupElim(db.ref("R")))
        assert delete_value == Bag([(1,)])

    def test_dedup_insert_only_for_new_rows(self, db):
        # Inserting another (2,) adds nothing to eps(R); inserting (9,) does.
        eta = literal_subst(db, {"R": ([], [(2,), (9,)])})
        __, insert_value = check_theorem2(db, eta, DupElim(db.ref("R")))
        assert insert_value == Bag([(9,)])

    def test_union_all(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [(9,)]), "S": ([(2,)], [(8,)])})
        query = UnionAll(db.ref("R"), db.ref("S"))
        delete_value, insert_value = check_theorem2(db, eta, query)
        assert delete_value == Bag([(1,), (2,)])
        assert insert_value == Bag([(9,), (8,)])

    def test_monus_delete_capped_by_current_value(self, db):
        # R∸S = {(1,),(3,)}; deleting both copies of (1,) from R can remove
        # only the single (1,) present in the difference.
        eta = literal_subst(db, {"R": ([(1,), (1,)], [])})
        query = Monus(db.ref("R"), db.ref("S"))
        delete_value, __ = check_theorem2(db, eta, query)
        assert delete_value == Bag([(1,)])

    def test_monus_insert_into_s_deletes_from_difference(self, db):
        eta = literal_subst(db, {"S": ([], [(3,)])})
        query = Monus(db.ref("R"), db.ref("S"))
        delete_value, insert_value = check_theorem2(db, eta, query)
        assert delete_value == Bag([(3,)])
        assert insert_value == Bag.empty()

    def test_monus_delete_one_shadowing_copy_changes_nothing(self, db):
        # S holds (2,) twice but R only once: removing one copy from S
        # still shadows R's (2,), so the difference is unchanged.
        eta = literal_subst(db, {"S": ([(2,)], [])})
        query = Monus(db.ref("R"), db.ref("S"))
        delete_value, insert_value = check_theorem2(db, eta, query)
        assert delete_value == Bag.empty()
        assert insert_value == Bag.empty()

    def test_monus_delete_from_s_reveals_tuples(self, db):
        # Removing both copies of (2,) from S uncovers R's (2,).
        eta = literal_subst(db, {"S": ([(2,), (2,)], [])})
        query = Monus(db.ref("R"), db.ref("S"))
        __, insert_value = check_theorem2(db, eta, query)
        assert insert_value == Bag([(2,)])

    def test_example_1_3_shape(self):
        """The monus state-bug example, via the correct post-update path."""
        db = Database()
        db.create_table("R", ["x"], rows=[("a",), ("b",), ("c",)])
        db.create_table("S", ["x"], rows=[("c",), ("d",)])
        eta = literal_subst(db, {"R": ([("b",)], []), "S": ([], [("b",)])})
        check_theorem2(db, eta, Monus(db.ref("R"), db.ref("S")))

    def test_product(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [(9,)]), "S": ([(1,)], [])})
        query = Product(db.ref("R"), db.ref("S"))
        check_theorem2(db, eta, query)

    def test_self_product(self, db):
        # Self-joins are exactly where restricted prior work breaks.
        eta = literal_subst(db, {"R": ([(1,)], [(9,)])})
        query = Product(db.ref("R"), db.ref("R"))
        check_theorem2(db, eta, query)


class TestEmptyFolding:
    def test_untouched_subtree_yields_literal_empty_deltas(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [])})
        delete, insert = differentiate(eta, db.ref("S").dedup())
        assert isinstance(delete, Literal) and not delete.bag
        assert isinstance(insert, Literal) and not insert.bag

    def test_insert_only_product_delta_stays_small(self, db):
        eta = literal_subst(db, {"R": ([], [(9,)])})
        query = Product(db.ref("R"), db.ref("S"))
        delete, insert = differentiate(eta, query)
        assert isinstance(delete, Literal)  # folded to empty
        # Insert delta must not mention a monus with an empty delete.
        assert insert.size() < query.size() + 6

    def test_deltas_of_shared_subtrees_are_shared(self, db):
        eta = literal_subst(db, {"R": ([(1,)], [(9,)])})
        shared = Project(("a",), db.ref("R"))
        query = UnionAll(shared, shared)
        counter = CostCounter()
        delete, insert = differentiate(eta, query)
        memo = {}
        evaluate(delete, db.state, counter=counter, memo=memo)
        evaluate(insert, db.state, counter=counter, memo=memo)
        # The project of the delete delta is evaluated once, not twice.
        assert counter.by_operator.get("project", 0) <= 2


class TestPreUpdateDelta:
    def test_immediate_maintenance_equation(self, db):
        """(MV ∸ ∇(T,Q)) ⊎ Δ(T,Q) pre-update == Q post-update."""
        query = Product(db.ref("R"), db.ref("S"))
        txn = UserTransaction(db).insert("R", [(2,)]).delete("S", [(2,)])
        nabla, delta = pre_update_delta(txn, db, query)
        old_value = db.evaluate(query)
        patched = old_value.monus(db.evaluate(nabla)).union_all(db.evaluate(delta))
        txn.apply()
        assert patched == db.evaluate(query)

    def test_over_deleting_transaction_normalized(self, db):
        query = db.ref("R")
        txn = UserTransaction(db).delete("R", [(1,)] * 10)
        nabla, delta = pre_update_delta(txn, db, query)
        assert db.evaluate(nabla).issubbag(db["R"])

    @pytest.mark.parametrize("seed", range(30))
    def test_randomized(self, seed):
        generator = RandomExpressionGenerator(seed)
        rdb = generator.database()
        query = generator.query(rdb, depth=4)
        txn = generator.transaction(rdb, allow_over_delete=True)
        nabla, delta = pre_update_delta(txn, rdb, query)
        patched = (
            rdb.evaluate(query).monus(rdb.evaluate(nabla)).union_all(rdb.evaluate(delta))
        )
        txn.apply()
        assert patched == rdb.evaluate(query)


class TestPostUpdateDelta:
    def _build_log(self, db, txns, tables):
        log = Log(db, tables, owner="t")
        log.install()
        for txn in txns:
            txn = txn.weakly_minimal()
            assignments = txn.assignments()
            assignments.update(log.extend_assignments(txn))
            db.apply(assignments)
        return log

    def test_deferred_refresh_equation(self, db):
        """(MV ∸ ▼(L,Q)) ⊎ ▲(L,Q) post-update == current Q."""
        query = Product(db.ref("R"), db.ref("S"))
        old_value = db.evaluate(query)
        log = self._build_log(
            db,
            [
                UserTransaction(db).insert("R", [(2,), (9,)]),
                UserTransaction(db).delete("S", [(2,)]).insert("S", [(7,)]),
            ],
            ["R", "S"],
        )
        view_delete, view_insert = post_update_delta(log, query)
        patched = old_value.monus(db.evaluate(view_delete)).union_all(db.evaluate(view_insert))
        assert patched == db.evaluate(query)

    def test_cancellation_path_for_untrusted_log(self, db):
        """With assume_weakly_minimal_log=False the ``min`` guard keeps
        correctness even for a log that is not weakly minimal."""
        query = db.ref("R")
        log = Log(db, ["R"], owner="t")
        log.install()
        # Manually poison the log: claim (8,) was inserted though R lacks it.
        db.set_table("__log_ins__t__R", Bag([(8,)]))
        old_r = db.evaluate(log.substitution().apply(query))  # the "past" per this log
        view_delete, view_insert = post_update_delta(log, query, assume_weakly_minimal_log=False)
        patched = old_r.monus(db.evaluate(view_delete)).union_all(db.evaluate(view_insert))
        assert patched == db["R"]

    @pytest.mark.parametrize("seed", range(30))
    def test_randomized(self, seed):
        generator = RandomExpressionGenerator(seed)
        rdb = generator.database()
        query = generator.query(rdb, depth=4)
        old_value = rdb.evaluate(query)
        log = self._build_log(
            rdb,
            [generator.transaction(rdb, allow_over_delete=True) for __ in range(3)],
            rdb.external_tables(),
        )
        view_delete, view_insert = post_update_delta(log, query)
        patched = old_value.monus(rdb.evaluate(view_delete)).union_all(rdb.evaluate(view_insert))
        assert patched == rdb.evaluate(query)


class TestStrongMinimality:
    def test_common_part_removed(self, db):
        delete = Literal(Bag([(1,), (1,), (2,)]), W_SCHEMA)
        insert = Literal(Bag([(1,), (3,)]), W_SCHEMA)
        strong_delete, strong_insert = strongly_minimal_pair(delete, insert)
        delete_value = db.evaluate(strong_delete)
        insert_value = db.evaluate(strong_insert)
        assert delete_value.min_(insert_value) == Bag.empty()
        assert delete_value == Bag([(1,), (2,)])
        assert insert_value == Bag([(3,)])

    def test_preserves_patch_result_under_weak_minimality(self, db):
        target = Bag([(1,), (1,), (2,), (5,)])
        delete = Literal(Bag([(1,), (2,)]), W_SCHEMA)  # ⊆ target
        insert = Literal(Bag([(1,), (9,)]), W_SCHEMA)
        strong_delete, strong_insert = strongly_minimal_pair(delete, insert)
        weak = target.monus(db.evaluate(delete)).union_all(db.evaluate(insert))
        strong = target.monus(db.evaluate(strong_delete)).union_all(db.evaluate(strong_insert))
        assert weak == strong

    def test_empty_deltas_stay_empty(self, db):
        delete = Literal(Bag.empty(), W_SCHEMA)
        insert = Literal(Bag([(1,)]), W_SCHEMA)
        strong_delete, strong_insert = strongly_minimal_pair(delete, insert)
        assert db.evaluate(strong_delete) == Bag.empty()
        assert db.evaluate(strong_insert) == Bag([(1,)])
