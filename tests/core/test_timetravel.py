"""Unit + randomized tests for PAST and FUTURE queries (Section 2.5)."""

import pytest

from repro.core.logs import Log
from repro.core.timetravel import future_query, past_query, transaction_substitution
from repro.core.transactions import UserTransaction
from repro.storage.database import Database
from repro.workloads.randgen import RandomExpressionGenerator


@pytest.fixture
def db():
    database = Database()
    database.create_table("R", ["a"], rows=[(1,), (2,), (2,)])
    database.create_table("S", ["b"], rows=[(5,)])
    return database


class TestFuture:
    def test_future_anticipates_insert(self, db):
        txn = UserTransaction(db).insert("R", [(9,)])
        fq = future_query(db.ref("R"), txn, db)
        anticipated = db.evaluate(fq)
        txn.apply()
        assert anticipated == db["R"]

    def test_future_of_composite_query(self, db):
        txn = UserTransaction(db).insert("R", [(2,)]).delete("R", [(1,)])
        query = db.ref("R").dedup()
        fq = future_query(query, txn, db)
        anticipated = db.evaluate(fq)
        txn.apply()
        assert anticipated == db.evaluate(query)

    def test_future_untouched_table(self, db):
        txn = UserTransaction(db).insert("R", [(9,)])
        fq = future_query(db.ref("S"), txn, db)
        assert db.evaluate(fq) == db["S"]

    def test_transaction_substitution_components(self, db):
        txn = UserTransaction(db).insert("R", [(9,)]).delete("R", [(1,)])
        eta = transaction_substitution(txn, db)
        assert eta.tables() == frozenset({"R"})


@pytest.mark.parametrize("seed", range(25))
def test_future_spec_randomized(seed):
    """FUTURE(T, Q)(s) == Q(T(s)) — Definition 1(2)."""
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    query = generator.query(db, depth=3)
    txn = generator.transaction(db, allow_over_delete=True)
    anticipated = db.evaluate(future_query(query, txn, db))
    txn.apply()
    assert anticipated == db.evaluate(query)


class TestPast:
    def _run(self, db, log, txn):
        txn = txn.weakly_minimal()
        assignments = txn.assignments()
        assignments.update(log.extend_assignments(txn))
        db.apply(assignments)

    def test_past_recovers_old_query_value(self, db):
        log = Log(db, ["R", "S"], owner="t")
        log.install()
        query = db.ref("R").product(db.ref("S"))
        old_value = db.evaluate(query)
        self._run(db, log, UserTransaction(db).insert("R", [(7,)]).delete("S", [(5,)]))
        self._run(db, log, UserTransaction(db).insert("S", [(6,), (6,)]))
        assert db.evaluate(past_query(query, log)) == old_value

    def test_past_with_empty_log_is_identity(self, db):
        log = Log(db, ["R"], owner="t")
        log.install()
        query = db.ref("R")
        assert db.evaluate(past_query(query, log)) == db["R"]


@pytest.mark.parametrize("seed", range(25))
def test_past_spec_randomized(seed):
    """Q(s_p) == PAST(L, Q)(s_c) for logs built by the makesafe_BL folding."""
    generator = RandomExpressionGenerator(seed)
    db = generator.database()
    log = Log(db, db.external_tables(), owner="t")
    log.install()
    query = generator.query(db, depth=3)
    old_value = db.evaluate(query)
    for __ in range(3):
        txn = generator.transaction(db, allow_over_delete=True).weakly_minimal()
        assignments = txn.assignments()
        assignments.update(log.extend_assignments(txn))
        db.apply(assignments)
    assert db.evaluate(past_query(query, log)) == old_value
