"""Partitioned-maintenance fallback paths, exercised one by one.

The affected-key fast path must *refuse* quietly whenever its
preconditions fail — RVM702 layout drift, unprunable plans (RVM701),
missing specs, the interpreted oracle — and the scenario must keep
producing oracle-identical results through the whole-table path it falls
back to.  The partition apply itself must stay all-or-nothing under a
``crash-mid-partition-apply``.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.algebra.bag import Bag
from repro.analysis.diagnostics import AnalysisWarning
from repro.core.partition_refresh import PartitionedMaintenance
from repro.core.scenarios import BaseLogScenario, CombinedScenario
from repro.core.transactions import UserTransaction
from repro.robustness.faults import INJECTOR, InjectedCrash
from repro.robustness.journal import bag_digest
from repro.sqlfront import sql_to_view
from repro.storage.database import Database
from repro.storage.partition import PartitionedDatabase

SQL = (
    "CREATE VIEW V (custId, item) AS "
    "SELECT c.custId, s.item FROM C c, S s WHERE c.custId = s.custId"
)
#: The join key is projected away: nothing keys the MV rows.
SQL_NO_KEY = (
    "CREATE VIEW V (name, item) AS "
    "SELECT c.name, s.item FROM C c, S s WHERE c.custId = s.custId"
)
#: No key equality at all: a cross product cannot be pruned per key.
SQL_CROSS = (
    "CREATE VIEW V (name, item) AS SELECT c.name, s.item FROM C c, S s"
)


@pytest.fixture(autouse=True)
def clean_injector():
    INJECTOR.reset()
    yield
    INJECTOR.reset()


def _tables(db) -> None:
    db.create_table("C", ["custId", "name"], rows=[(i, f"n{i}") for i in range(8)])
    db.create_table("S", ["custId", "item"], rows=[(i % 6, f"i{i % 3}") for i in range(20)])


def _scenario(db, sql=SQL, cls=BaseLogScenario):
    scenario = cls(db, sql_to_view(sql, db))
    scenario.install()
    return scenario


def _stream(db, scenario, rounds=3):
    """A few maintained transactions followed by a refresh."""
    for index in range(rounds):
        txn = UserTransaction(db)
        txn.insert("S", [(index % 6, f"i{index % 3}"), (index + 1, "fresh")])
        txn.delete("S", [(index % 6, f"i{index % 3}")])
        scenario.execute(txn)
    scenario.refresh()


def _oracle_digest(sql=SQL, rounds=3) -> str:
    db = Database(exec_mode="interpreted")
    _tables(db)
    scenario = _scenario(db, sql)
    _stream(db, scenario, rounds)
    return bag_digest(scenario.read_view())


class TestProbeRefusals:
    def test_plain_database_is_ineligible(self):
        db = Database(exec_mode="compiled")
        _tables(db)
        scenario = _scenario(db)
        assert scenario._pmaint is None

    def test_interpreted_oracle_stays_unpartitioned(self):
        db = PartitionedDatabase(exec_mode="interpreted")
        _tables(db)
        db.declare_partitioning("C", "custId", parts=8, domain="custId")
        db.declare_partitioning("S", "custId", parts=8, domain="custId")
        scenario = _scenario(db)
        assert scenario._pmaint is None

    def test_missing_spec_refuses(self):
        db = PartitionedDatabase(exec_mode="compiled")
        _tables(db)
        db.declare_partitioning("C", "custId", parts=8, domain="custId")
        # S undeclared: the probe must not partially commit.
        scenario = _scenario(db)
        assert scenario._pmaint is None

    def test_rvm702_layout_drift_refuses(self):
        db = PartitionedDatabase(exec_mode="compiled")
        _tables(db)
        db.declare_partitioning("C", "custId", parts=8, domain="custId")
        db.declare_partitioning("S", "custId", parts=4, domain="custId")
        with pytest.warns(AnalysisWarning, match="RVM702"):
            scenario = _scenario(db)
        assert scenario._pmaint is None

    def test_no_mv_key_column_refuses(self):
        db = PartitionedDatabase(exec_mode="compiled")
        _tables(db)
        db.declare_partitioning("C", "custId", parts=8, domain="custId")
        db.declare_partitioning("S", "custId", parts=8, domain="custId")
        scenario = _scenario(db, SQL_NO_KEY)
        assert scenario._pmaint is None

    def test_unkeyed_plan_refuses(self):
        db = PartitionedDatabase(exec_mode="compiled")
        _tables(db)
        db.declare_partitioning("C", "custId", parts=8, domain="custId")
        db.declare_partitioning("S", "custId", parts=8, domain="custId")
        with pytest.warns(AnalysisWarning, match="RVM701"):
            scenario = _scenario(db, SQL_CROSS)
        assert scenario._pmaint is None

    @pytest.mark.filterwarnings("ignore::UserWarning")
    @pytest.mark.parametrize(
        "sql", [SQL_NO_KEY, SQL_CROSS], ids=["no-mv-key", "cross-product"]
    )
    def test_fallback_still_matches_oracle(self, sql):
        db = PartitionedDatabase(exec_mode="compiled")
        _tables(db)
        db.declare_partitioning("C", "custId", parts=8, domain="custId")
        db.declare_partitioning("S", "custId", parts=8, domain="custId")
        scenario = _scenario(db, sql)
        _stream(db, scenario)
        assert bag_digest(scenario.read_view()) == _oracle_digest(sql)


class TestRuntimeFallbacks:
    def _partitioned_scenario(self):
        db = PartitionedDatabase(exec_mode="compiled")
        _tables(db)
        db.declare_partitioning("C", "custId", parts=8, domain="custId")
        db.declare_partitioning("S", "custId", parts=8, domain="custId")
        scenario = _scenario(db)
        assert scenario._pmaint is not None
        return db, scenario

    def test_refresh_log_false_falls_back_to_whole_table(self, monkeypatch):
        """A runtime prune failure degrades to refresh_BL, not an error."""
        db, scenario = self._partitioned_scenario()
        monkeypatch.setattr(
            scenario._pmaint, "pruned_deltas", lambda keys, counter=None: None
        )
        _stream(db, scenario)
        # The whole-table path ran: log cleared, contents oracle-identical.
        assert scenario.log.recorded_changes() == 0
        assert bag_digest(scenario.read_view()) == _oracle_digest()

    def test_refresh_log_handles_empty_epoch(self):
        db, scenario = self._partitioned_scenario()
        assert scenario._pmaint.refresh_log(scenario) is True  # nothing pending
        assert scenario.staleness_entries() == 0

    def test_chunked_tasks_refuse_unchunkable_plans(self, monkeypatch):
        db, scenario = self._partitioned_scenario()
        monkeypatch.setattr(
            "repro.core.partition_refresh.analyze_deltas",
            lambda deltas, specs, log_map: SimpleNamespace(
                prunable=True, chunkable=False
            ),
        )
        assert scenario._pmaint.chunked_group_tasks(scenario, order=0) is None


class TestApplyPartsCrash:
    def test_crash_mid_partition_apply_rolls_back_every_slice(self):
        db = PartitionedDatabase(exec_mode="compiled")
        _tables(db)
        db.declare_partitioning("S", "custId", parts=4, domain="custId")
        before_digest = bag_digest(db["S"])
        before_version = db.version_of("S")
        before_sizes = db.partition_sizes("S")

        # The patch spans several partitions, so the fault point (between
        # per-partition installs) fires with some slices already staged.
        delete = Bag([(0, "i0")])
        insert = Bag([(1, "xx"), (2, "yy"), (3, "zz")])
        INJECTOR.arm("crash-mid-partition-apply", hit=1)
        with pytest.raises(InjectedCrash):
            db.apply_parts({"S": (delete, insert)})

        assert bag_digest(db["S"]) == before_digest
        assert db.version_of("S") == before_version
        assert db.partition_sizes("S") == before_sizes

        # Disarmed, the identical epoch applies cleanly.
        touched = db.apply_parts({"S": (delete, insert)})
        assert touched["S"]  # some partitions were mutated
        assert bag_digest(db["S"]) != before_digest
