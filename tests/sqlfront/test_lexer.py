"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.sqlfront.lexer import tokenize


def kinds(source):
    return [(token.kind, token.text) for token in tokenize(source)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where") == [
            ("KEYWORD", "SELECT"),
            ("KEYWORD", "FROM"),
            ("KEYWORD", "WHERE"),
        ]

    def test_names_preserve_case(self):
        assert kinds("custId") == [("NAME", "custId")]

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_positions_recorded(self):
        tokens = tokenize("a  b")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_punctuation(self):
        assert kinds("( ) , . *") == [
            ("PUNCT", "("),
            ("PUNCT", ")"),
            ("PUNCT", ","),
            ("PUNCT", "."),
            ("PUNCT", "*"),
        ]

    def test_qualified_name_tokens(self):
        assert kinds("c.custId") == [("NAME", "c"), ("PUNCT", "."), ("NAME", "custId")]


class TestNumbers:
    def test_integer(self):
        assert kinds("42") == [("NUMBER", "42")]

    def test_float(self):
        assert kinds("3.14") == [("NUMBER", "3.14")]

    def test_negative(self):
        assert kinds("-7") == [("NUMBER", "-7")]

    def test_number_then_dot_name(self):
        # "1.x" must not eat the dot into the number
        assert kinds("1 . x")[0] == ("NUMBER", "1")


class TestStrings:
    def test_single_quoted(self):
        assert kinds("'High'") == [("STRING", "High")]

    def test_escaped_quote(self):
        assert kinds("'o''hare'") == [("STRING", "o'hare")]

    def test_double_quoted(self):
        assert kinds('"hello"') == [("STRING", "hello")]

    def test_unterminated(self):
        with pytest.raises(ParseError):
            tokenize("'oops")
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_empty_string(self):
        assert kinds("''") == [("STRING", "")]


class TestOperators:
    @pytest.mark.parametrize("source,expected", [("=", "="), ("!=", "!="), ("<>", "!="), ("<", "<"), ("<=", "<="), (">", ">"), (">=", ">=")])
    def test_comparisons(self, source, expected):
        assert kinds(source) == [("OP", expected)]

    def test_bang_alone_rejected(self):
        with pytest.raises(ParseError):
            tokenize("a ! b")

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")

    def test_semicolon_is_punctuation(self):
        assert kinds(";") == [("PUNCT", ";")]


class TestFullStatement:
    def test_example_1_1(self):
        source = (
            "SELECT c.custId, c.name FROM customer c, sales s "
            "WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'"
        )
        tokens = tokenize(source)
        assert tokens[-1].kind == "EOF"
        texts = [token.text for token in tokens if token.kind == "STRING"]
        assert texts == ["High"]
