"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sqlfront.parser import (
    AndCond,
    ColumnRef,
    ComparisonCond,
    CreateView,
    LiteralValue,
    NotCond,
    OrCond,
    SelectCore,
    SetOp,
    parse_query,
    parse_statement,
)


class TestSelectCore:
    def test_minimal(self):
        query = parse_query("SELECT a FROM t")
        assert isinstance(query, SelectCore)
        assert query.items[0].column == ColumnRef("a")
        assert query.from_items[0].table == "t"
        assert query.where is None
        assert not query.distinct

    def test_star(self):
        query = parse_query("SELECT * FROM t")
        assert query.items is None

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT a FROM t").distinct

    def test_select_all_keyword(self):
        assert not parse_query("SELECT ALL a FROM t").distinct

    def test_qualified_columns(self):
        query = parse_query("SELECT c.custId FROM customer c")
        assert query.items[0].column == ColumnRef("custId", qualifier="c")

    def test_output_alias_with_as(self):
        query = parse_query("SELECT a AS renamed FROM t")
        assert query.items[0].alias == "renamed"

    def test_output_alias_bare(self):
        query = parse_query("SELECT a renamed FROM t")
        assert query.items[0].alias == "renamed"

    def test_from_aliases(self):
        query = parse_query("SELECT a FROM t1 x, t2 AS y")
        assert query.from_items[0].binding == "x"
        assert query.from_items[1].binding == "y"

    def test_from_default_binding_is_table(self):
        query = parse_query("SELECT a FROM t")
        assert query.from_items[0].binding == "t"


class TestConditions:
    def test_comparison_with_string(self):
        query = parse_query("SELECT a FROM t WHERE score = 'High'")
        assert query.where == ComparisonCond("=", ColumnRef("score"), LiteralValue("High"))

    def test_comparison_with_numbers(self):
        query = parse_query("SELECT a FROM t WHERE q != 0")
        assert query.where.right == LiteralValue(0)

    def test_float_literal(self):
        query = parse_query("SELECT a FROM t WHERE p >= 9.5")
        assert query.where.right == LiteralValue(9.5)

    def test_null_true_false_literals(self):
        query = parse_query("SELECT a FROM t WHERE x = NULL AND y = TRUE OR z = FALSE")
        assert isinstance(query.where, OrCond)

    def test_and_binds_tighter_than_or(self):
        query = parse_query("SELECT a FROM t WHERE p = 1 OR q = 2 AND r = 3")
        assert isinstance(query.where, OrCond)
        assert isinstance(query.where.right, AndCond)

    def test_parentheses_override(self):
        query = parse_query("SELECT a FROM t WHERE (p = 1 OR q = 2) AND r = 3")
        assert isinstance(query.where, AndCond)
        assert isinstance(query.where.left, OrCond)

    def test_not(self):
        query = parse_query("SELECT a FROM t WHERE NOT p = 1")
        assert isinstance(query.where, NotCond)

    def test_column_to_column(self):
        query = parse_query("SELECT a FROM t, u WHERE t.k = u.k")
        assert query.where.left.qualifier == "t"
        assert query.where.right.qualifier == "u"


class TestSetOps:
    @pytest.mark.parametrize(
        "sql_op,tree_op",
        [
            ("UNION ALL", "UNION ALL"),
            ("EXCEPT", "EXCEPT"),
            ("EXCEPT ALL", "EXCEPT ALL"),
            ("INTERSECT", "INTERSECT"),
            ("INTERSECT ALL", "INTERSECT ALL"),
        ],
    )
    def test_operators(self, sql_op, tree_op):
        query = parse_query(f"SELECT a FROM t {sql_op} SELECT b FROM u")
        assert isinstance(query, SetOp)
        assert query.op == tree_op

    def test_bare_union_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM t UNION SELECT b FROM u")

    def test_left_associative(self):
        query = parse_query("SELECT a FROM t UNION ALL SELECT b FROM u EXCEPT SELECT c FROM v")
        assert query.op == "EXCEPT"
        assert query.left.op == "UNION ALL"


class TestCreateView:
    def test_with_columns(self):
        statement = parse_statement("CREATE VIEW V (x, y) AS SELECT a, b FROM t")
        assert isinstance(statement, CreateView)
        assert statement.name == "V"
        assert statement.columns == ("x", "y")

    def test_without_columns(self):
        statement = parse_statement("CREATE VIEW V AS SELECT a FROM t")
        assert statement.columns is None

    def test_parse_query_rejects_create(self):
        with pytest.raises(ParseError):
            parse_query("CREATE VIEW V AS SELECT a FROM t")


class TestCreateTable:
    def test_basic(self):
        from repro.sqlfront.parser import CreateTable

        statement = parse_statement("CREATE TABLE t (a, b, c)")
        assert isinstance(statement, CreateTable)
        assert statement.name == "t"
        assert statement.columns == ("a", "b", "c")

    def test_single_column(self):
        statement = parse_statement("CREATE TABLE t (only)")
        assert statement.columns == ("only",)

    def test_missing_columns_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t")

    def test_empty_column_list_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t ()")

    def test_distinguished_from_create_view(self):
        from repro.sqlfront.parser import CreateTable, CreateView

        assert isinstance(parse_statement("CREATE TABLE t (a)"), CreateTable)
        assert isinstance(parse_statement("CREATE VIEW v AS SELECT a FROM t"), CreateView)


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM t extra ,")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM t WHERE a =")

    def test_error_reports_position(self):
        try:
            parse_query("SELECT a FROM t WHERE a =")
        except ParseError as error:
            assert error.position is not None

    def test_non_query_statement_reports_position(self):
        source = "CREATE TABLE t (a)"
        with pytest.raises(ParseError) as excinfo:
            parse_query(source)
        assert excinfo.value.position is not None
        assert 0 < excinfo.value.position <= len(source)

    def test_column_refs_carry_source_offsets(self):
        source = "SELECT a FROM t WHERE b = 1"
        query = parse_query(source)
        column = query.items[0].column
        assert source[column.position] == "a"

    def test_column_positions_do_not_affect_equality(self):
        first = parse_query("SELECT a FROM t").items[0].column
        second = parse_query("SELECT  a FROM t").items[0].column
        assert first.position != second.position
        assert first == second
