"""Unit tests for the DML front end: INSERT/DELETE → transactions."""

import pytest

from repro.algebra.bag import Bag
from repro.core.transactions import UserTransaction
from repro.errors import ParseError, SchemaError
from repro.sqlfront import parse_script, parse_statement, script_to_transaction
from repro.sqlfront.parser import DeleteStatement, InsertStatement
from repro.storage.database import Database
from repro.warehouse import ViewManager


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", ["a", "b"], rows=[(1, "x"), (2, "y")])
    database.create_table("u", ["a", "b"], rows=[(3, "z")])
    return database


def run_script(db, script):
    txn = UserTransaction(db)
    script_to_transaction(script, db, txn)
    txn.apply()


class TestParsing:
    def test_insert_values(self):
        statement = parse_statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, InsertStatement)
        assert statement.rows == ((1, "x"), (2, "y"))
        assert statement.columns is None
        assert statement.query is None

    def test_insert_with_columns(self):
        statement = parse_statement("INSERT INTO t (b, a) VALUES ('x', 1)")
        assert statement.columns == ("b", "a")

    def test_insert_select(self):
        statement = parse_statement("INSERT INTO t SELECT a, b FROM u")
        assert statement.rows is None
        assert statement.query is not None

    def test_insert_rejects_column_operands(self):
        with pytest.raises(ParseError):
            parse_statement("INSERT INTO t VALUES (a, b)")

    def test_delete_with_where(self):
        statement = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, DeleteStatement)
        assert statement.where is not None

    def test_delete_without_where(self):
        statement = parse_statement("DELETE FROM t")
        assert statement.where is None

    def test_trailing_semicolon_allowed(self):
        parse_statement("DELETE FROM t;")

    def test_script_splits_statements(self):
        statements = parse_script("INSERT INTO t VALUES (1, 'x'); DELETE FROM u; ")
        assert len(statements) == 2

    def test_null_and_negative_values(self):
        statement = parse_statement("INSERT INTO t VALUES (-5, NULL)")
        assert statement.rows == ((-5, None),)


class TestCompilation:
    def test_insert_values(self, db):
        run_script(db, "INSERT INTO t VALUES (9, 'q'), (9, 'q')")
        assert db["t"].multiplicity((9, "q")) == 2

    def test_insert_reordered_columns(self, db):
        run_script(db, "INSERT INTO t (b, a) VALUES ('q', 9)")
        assert (9, "q") in db["t"]

    def test_insert_partial_columns_rejected(self, db):
        with pytest.raises(SchemaError):
            run_script(db, "INSERT INTO t (a) VALUES (9)")

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            run_script(db, "INSERT INTO t VALUES (1, 'x', 'extra')")

    def test_insert_select(self, db):
        run_script(db, "INSERT INTO t SELECT a, b FROM u")
        assert (3, "z") in db["t"]

    def test_insert_select_with_columns(self, db):
        run_script(db, "INSERT INTO t (b, a) SELECT b, a FROM u")
        assert (3, "z") in db["t"]

    def test_insert_select_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            run_script(db, "INSERT INTO t SELECT a FROM u")

    def test_delete_where(self, db):
        run_script(db, "DELETE FROM t WHERE a = 1")
        assert db["t"] == Bag([(2, "y")])

    def test_delete_all(self, db):
        run_script(db, "DELETE FROM t")
        assert db["t"] == Bag.empty()

    def test_delete_with_string_predicate(self, db):
        run_script(db, "DELETE FROM t WHERE b = 'y' OR a < 0")
        assert db["t"] == Bag([(1, "x")])

    def test_script_is_one_simultaneous_transaction(self, db):
        # Copy u into t while clearing u: the insert must read pre-state u.
        run_script(db, "INSERT INTO t SELECT a, b FROM u; DELETE FROM u")
        assert (3, "z") in db["t"]
        assert db["u"] == Bag.empty()

    def test_select_in_script_rejected(self, db):
        with pytest.raises(ParseError):
            run_script(db, "SELECT a FROM t")

    def test_create_view_in_script_rejected(self, db):
        with pytest.raises(ParseError):
            run_script(db, "CREATE VIEW v AS SELECT a FROM t")


class TestViewManagerIntegration:
    def test_execute_sql_maintains_views(self):
        manager = ViewManager()
        manager.create_table("t", ["a", "b"], rows=[(1, "x")])
        manager.define_view("V", "SELECT a FROM t", scenario="combined")
        manager.execute_sql("INSERT INTO t VALUES (2, 'y'); DELETE FROM t WHERE a = 1")
        manager.check_invariants()
        assert manager.query_fresh("V") == Bag([(2,)])

    def test_execute_sql_immediate_view(self):
        manager = ViewManager()
        manager.create_table("t", ["a", "b"], rows=[(1, "x")])
        manager.define_view("V", "SELECT a FROM t", scenario="immediate")
        manager.execute_sql("INSERT INTO t VALUES (5, 'w')")
        assert (5,) in manager.query("V")
