"""Unit tests for SQL → bag-algebra compilation."""

import pytest

from repro.algebra.bag import Bag
from repro.algebra.schema import Schema
from repro.errors import ParseError, SchemaError
from repro.sqlfront.compiler import sql_to_expr, sql_to_view
from repro.storage.database import Database


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "customer",
        ["custId", "name", "address", "score"],
        rows=[(1, "ann", "a st", "High"), (2, "bob", "b st", "Low"), (3, "cat", "c st", "High")],
    )
    database.create_table(
        "sales",
        ["custId", "itemNo", "quantity", "salesPrice"],
        rows=[(1, 10, 2, 5.0), (1, 10, 2, 5.0), (2, 11, 1, 3.0), (3, 12, 0, 9.0)],
    )
    database.create_table("a", ["x"], rows=[(1,), (1,), (2,)])
    database.create_table("b", ["x"], rows=[(1,), (3,)])
    return database


class TestExample11:
    """The paper's motivating view compiles and evaluates correctly."""

    SQL = """
    CREATE VIEW V (custId, name, score, itemNo, quantity) AS
    SELECT c.custId, c.name, c.score, s.itemNo, s.quantity
    FROM customer c, sales s
    WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'
    """

    def test_view_name_and_schema(self, db):
        view = sql_to_view(self.SQL, db)
        assert view.name == "V"
        assert view.schema == Schema(["custId", "name", "score", "itemNo", "quantity"])

    def test_evaluation_keeps_duplicates(self, db):
        view = sql_to_view(self.SQL, db)
        result = db.evaluate(view.query)
        # ann's duplicate sale appears twice; zero-quantity and Low-score drop.
        assert result == Bag(
            [(1, "ann", "High", 10, 2), (1, "ann", "High", 10, 2)]
        )

    def test_base_tables(self, db):
        view = sql_to_view(self.SQL, db)
        assert view.base_tables() == frozenset({"customer", "sales"})


class TestNameResolution:
    def test_unqualified_unique_column(self, db):
        expr = sql_to_expr("SELECT name FROM customer", db)
        assert db.evaluate(expr) == Bag([("ann",), ("bob",), ("cat",)])

    def test_unqualified_ambiguous_column(self, db):
        with pytest.raises(SchemaError, match="ambiguous"):
            sql_to_expr("SELECT custId FROM customer, sales", db)

    def test_unknown_column(self, db):
        with pytest.raises(SchemaError, match="unknown column"):
            sql_to_expr("SELECT nope FROM customer", db)

    def test_unknown_qualifier(self, db):
        with pytest.raises(SchemaError, match="range variable"):
            sql_to_expr("SELECT z.name FROM customer c", db)

    def test_qualifier_without_that_column(self, db):
        with pytest.raises(SchemaError, match="no column"):
            sql_to_expr("SELECT c.itemNo FROM customer c", db)

    def test_duplicate_range_variable(self, db):
        with pytest.raises(SchemaError, match="duplicate range"):
            sql_to_expr("SELECT c.name FROM customer c, sales c", db)

    def test_self_join_with_aliases(self, db):
        expr = sql_to_expr(
            "SELECT c1.name, c2.name FROM customer c1, customer c2 WHERE c1.score = c2.score",
            db,
        )
        result = db.evaluate(expr)
        # High x High (2x2) + Low x Low (1) = 5 pairs
        assert len(result) == 5

    def test_where_on_unprojected_column(self, db):
        expr = sql_to_expr("SELECT name FROM customer WHERE score = 'High'", db)
        assert db.evaluate(expr) == Bag([("ann",), ("cat",)])


class TestSelectList:
    def test_star_select(self, db):
        expr = sql_to_expr("SELECT * FROM customer", db)
        assert expr.schema() == Schema(["custId", "name", "address", "score"])
        assert len(db.evaluate(expr)) == 3

    def test_star_select_over_join(self, db):
        expr = sql_to_expr("SELECT * FROM a, b", db)
        assert expr.schema() == Schema(["x", "x"])
        assert len(db.evaluate(expr)) == 6

    def test_output_alias(self, db):
        expr = sql_to_expr("SELECT name AS who FROM customer", db)
        assert expr.schema() == Schema(["who"])

    def test_distinct(self, db):
        expr = sql_to_expr("SELECT DISTINCT x FROM a", db)
        assert db.evaluate(expr) == Bag([(1,), (2,)])

    def test_projection_keeps_duplicates_without_distinct(self, db):
        expr = sql_to_expr("SELECT x FROM a", db)
        assert db.evaluate(expr) == Bag([(1,), (1,), (2,)])


class TestSetOps:
    def test_union_all(self, db):
        expr = sql_to_expr("SELECT x FROM a UNION ALL SELECT x FROM b", db)
        assert db.evaluate(expr) == Bag([(1,), (1,), (1,), (2,), (3,)])

    def test_except_all_is_monus(self, db):
        expr = sql_to_expr("SELECT x FROM a EXCEPT ALL SELECT x FROM b", db)
        assert db.evaluate(expr) == Bag([(1,), (2,)])

    def test_except_removes_all_copies(self, db):
        expr = sql_to_expr("SELECT x FROM a EXCEPT SELECT x FROM b", db)
        assert db.evaluate(expr) == Bag([(2,)])

    def test_intersect_all_is_min(self, db):
        expr = sql_to_expr("SELECT x FROM a INTERSECT ALL SELECT x FROM b", db)
        assert db.evaluate(expr) == Bag([(1,)])

    def test_intersect_dedups(self, db):
        expr = sql_to_expr("SELECT x FROM a INTERSECT SELECT x FROM a", db)
        assert db.evaluate(expr) == Bag([(1,), (2,)])

    def test_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            sql_to_expr("SELECT x FROM a UNION ALL SELECT name, score FROM customer", db)


class TestViews:
    def test_view_column_renames(self, db):
        view = sql_to_view("CREATE VIEW W (v1) AS SELECT x FROM a", db)
        assert view.schema == Schema(["v1"])

    def test_view_column_count_mismatch(self, db):
        with pytest.raises(SchemaError):
            sql_to_view("CREATE VIEW W (v1, v2) AS SELECT x FROM a", db)

    def test_bare_query_requires_name(self, db):
        with pytest.raises(ParseError):
            sql_to_view("SELECT x FROM a", db)

    def test_bare_query_with_name(self, db):
        view = sql_to_view("SELECT x FROM a", db, name="W")
        assert view.name == "W"

    def test_name_override(self, db):
        view = sql_to_view("CREATE VIEW W AS SELECT x FROM a", db, name="Z")
        assert view.name == "Z"

    def test_unknown_table(self, db):
        from repro.errors import UnknownTableError

        with pytest.raises(UnknownTableError):
            sql_to_expr("SELECT x FROM missing", db)
