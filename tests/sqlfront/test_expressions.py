"""Tests for arithmetic expressions, computed select items, and UPDATE."""

import pytest

from repro.algebra.bag import Bag
from repro.core.transactions import UserTransaction
from repro.errors import ParseError, SchemaError
from repro.sqlfront.compiler import script_to_transaction, sql_to_expr
from repro.sqlfront.parser import BinaryOp, UpdateStatement, parse_statement
from repro.storage.database import Database
from repro.warehouse import ViewManager


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", ["a", "qty"], rows=[(1, 5), (2, 7), (2, 7)])
    return database


def run(db, script):
    txn = UserTransaction(db)
    script_to_transaction(script, db, txn)
    txn.apply()


class TestExpressionParsing:
    def test_precedence_mul_over_add(self):
        statement = parse_statement("SELECT a + b * c AS x FROM t")
        expression = statement.items[0].column
        assert expression.op == "+"
        assert isinstance(expression.right, BinaryOp)
        assert expression.right.op == "*"

    def test_parentheses(self):
        statement = parse_statement("SELECT (a + b) * c AS x FROM t")
        expression = statement.items[0].column
        assert expression.op == "*"

    def test_unary_minus(self):
        statement = parse_statement("SELECT -a AS neg FROM t")
        expression = statement.items[0].column
        assert expression.op == "-"

    def test_computed_item_requires_alias(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a + 1 FROM t")

    def test_bare_column_needs_no_alias(self):
        parse_statement("SELECT a FROM t")

    def test_update_parses(self):
        statement = parse_statement("UPDATE t SET qty = qty + 1 WHERE a = 2")
        assert isinstance(statement, UpdateStatement)
        assert statement.assignments[0][0] == "qty"

    def test_spaced_and_unspaced_minus(self):
        for text in ("SELECT a - 1 AS x FROM t", "SELECT a -1 AS x FROM t"):
            statement = parse_statement(text)
            assert statement.items[0].column.op in ("-", "+")

    def test_parenthesized_term_in_where(self):
        parse_statement("SELECT a FROM t WHERE (a + 1) * 2 > 4")

    def test_nested_condition_parens_still_work(self):
        parse_statement("SELECT a FROM t WHERE (a = 1 OR a = 2) AND qty > 0")


class TestComputedSelect:
    def test_arithmetic_select(self, db):
        result = db.evaluate(sql_to_expr("SELECT a, qty * 2 AS dbl FROM t", db))
        assert result == Bag([(1, 10), (2, 14), (2, 14)])

    def test_constant_column(self, db):
        result = db.evaluate(sql_to_expr("SELECT a, 1 AS one FROM t", db))
        assert all(row[1] == 1 for row in result.support)

    def test_division_is_float(self, db):
        result = db.evaluate(sql_to_expr("SELECT qty / 2 AS half FROM t", db))
        assert (2.5,) in result

    def test_arithmetic_in_where(self, db):
        result = db.evaluate(sql_to_expr("SELECT a FROM t WHERE qty - 2 > 4", db))
        assert result == Bag([(2,), (2,)])

    def test_expression_over_join(self, db):
        db.create_table("u", ["a", "price"], rows=[(1, 10.0), (2, 20.0)])
        result = db.evaluate(
            sql_to_expr(
                "SELECT t.a, t.qty * u.price AS revenue FROM t, u WHERE t.a = u.a", db
            )
        )
        assert result == Bag([(1, 50.0), (2, 140.0), (2, 140.0)])

    def test_duplicates_collapse_and_sum(self, db):
        # Both (2,7) rows map to the same image: multiplicity 2.
        result = db.evaluate(sql_to_expr("SELECT qty + 0 AS q FROM t WHERE a = 2", db))
        assert result.multiplicity((7,)) == 2


class TestUpdate:
    def test_update_with_where(self, db):
        run(db, "UPDATE t SET qty = qty * 2 WHERE a = 2")
        assert db["t"] == Bag([(1, 5), (2, 14), (2, 14)])

    def test_update_all_rows(self, db):
        run(db, "UPDATE t SET qty = 0")
        assert all(row[1] == 0 for row in db["t"].support)

    def test_update_to_constant(self, db):
        run(db, "UPDATE t SET qty = 99 WHERE a = 1")
        assert (1, 99) in db["t"]

    def test_update_multiple_columns(self, db):
        run(db, "UPDATE t SET qty = qty + 1, a = a * 10 WHERE a = 1")
        assert (10, 6) in db["t"]

    def test_update_reads_pre_state(self, db):
        # Swap-style: both assignments read old values.
        db.create_table("p", ["x", "y"], rows=[(1, 2)])
        run(db, "UPDATE p SET x = y, y = x")
        assert db["p"] == Bag([(2, 1)])

    def test_update_unknown_column(self, db):
        with pytest.raises(SchemaError):
            run(db, "UPDATE t SET nope = 1")

    def test_update_duplicate_assignment(self, db):
        with pytest.raises(SchemaError):
            run(db, "UPDATE t SET qty = 1, qty = 2")

    def test_update_preserves_duplicates(self, db):
        run(db, "UPDATE t SET qty = qty + 1 WHERE a = 2")
        assert db["t"].multiplicity((2, 8)) == 2


class TestMaintenanceOfComputedViews:
    """The MapProject differentiation rule, end to end."""

    @pytest.mark.parametrize("scenario", ["immediate", "base_log", "diff_table", "combined"])
    def test_computed_view_maintained(self, scenario):
        manager = ViewManager()
        manager.create_table("t", ["a", "qty"], rows=[(1, 5), (2, 7)])
        manager.define_view(
            "V", "SELECT a, qty * 2 AS dbl FROM t WHERE qty > 0", scenario=scenario
        )
        manager.execute_sql("INSERT INTO t VALUES (3, 10); DELETE FROM t WHERE a = 1")
        manager.check_invariants()
        assert manager.query_fresh("V") == Bag([(2, 14), (3, 20)])

    def test_update_statement_maintains_views(self):
        manager = ViewManager()
        manager.create_table("t", ["a", "qty"], rows=[(1, 5), (2, 7)])
        manager.define_view("V", "SELECT a, qty FROM t WHERE qty > 6", scenario="combined")
        manager.execute_sql("UPDATE t SET qty = qty + 10 WHERE a = 1")
        manager.check_invariants()
        assert manager.query_fresh("V") == Bag([(1, 15), (2, 7)])

    def test_computed_view_with_churny_updates(self):
        manager = ViewManager()
        manager.create_table("t", ["a", "qty"], rows=[(1, 5), (1, 5), (2, 7)])
        manager.define_view("V", "SELECT qty / 2 AS half FROM t", scenario="combined")
        manager.execute_sql("UPDATE t SET qty = qty * 2")
        manager.check_invariants()
        expected = Bag([(5.0,), (5.0,), (7.0,)])
        assert manager.query_fresh("V") == expected
